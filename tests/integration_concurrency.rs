//! Multi-threaded smoke tests: many client threads reading and committing
//! concurrently against the lock-striped server stores.  These tests are
//! about absence of deadlock, lost updates and torn reads under real
//! parallelism, not about throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yesquel::{KvDatabase, ObjectId, Yesquel};

#[test]
fn concurrent_disjoint_writers_all_commit() {
    let db = Arc::new(KvDatabase::with_servers(4));
    let threads = 8u64;
    let per_thread = 200u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let client = db.client();
            for i in 0..per_thread {
                let txn = client.begin();
                txn.put(ObjectId::new(2, t * 100_000 + i), format!("t{t}i{i}"))
                    .unwrap();
                txn.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let client = db.client();
    let r = client.begin();
    for t in 0..threads {
        for i in (0..per_thread).step_by(37) {
            let v = r
                .get(ObjectId::new(2, t * 100_000 + i))
                .unwrap()
                .expect("committed");
            assert_eq!(&v[..], format!("t{t}i{i}").as_bytes());
        }
    }
    r.commit().unwrap();
}

#[test]
fn concurrent_counter_increments_never_lose_updates() {
    // Writers increment one contended object under first-committer-wins with
    // retry; the final value must equal the number of successful commits.
    let db = Arc::new(KvDatabase::with_servers(4));
    let obj = ObjectId::new(3, 1);
    {
        let c = db.client();
        let t = c.begin();
        t.put(obj, 0u64.to_be_bytes().to_vec()).unwrap();
        t.commit().unwrap();
    }
    let commits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let db = Arc::clone(&db);
        let commits = Arc::clone(&commits);
        handles.push(std::thread::spawn(move || {
            let client = db.client();
            for _ in 0..50 {
                client
                    .run_txn(|txn| {
                        let cur = txn.get(obj)?.expect("initialised");
                        let mut buf = [0u8; 8];
                        buf.copy_from_slice(&cur[..8]);
                        let next = u64::from_be_bytes(buf) + 1;
                        txn.put(obj, next.to_be_bytes().to_vec())?;
                        Ok(())
                    })
                    .unwrap();
                commits.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let client = db.client();
    let r = client.begin();
    let v = r.get(obj).unwrap().expect("present");
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&v[..8]);
    assert_eq!(u64::from_be_bytes(buf), commits.load(Ordering::SeqCst));
    r.commit().unwrap();
}

#[test]
fn concurrent_readers_and_writers_on_one_tree() {
    // Readers sweep the tree while writers append; every lookup must return
    // either nothing (not yet committed) or the exact committed value.
    let y = Arc::new(Yesquel::open(4));
    let dbt = y.create_tree(1).unwrap();
    let total = 400u64;

    let writer = {
        let y = Arc::clone(&y);
        let dbt = dbt.clone();
        std::thread::spawn(move || {
            let client = y.db().client();
            for i in 0..total {
                client
                    .run_txn(|txn| {
                        dbt.insert(txn, &i.to_be_bytes(), format!("value{i}").as_bytes())
                    })
                    .unwrap();
            }
        })
    };
    let mut readers = Vec::new();
    for _ in 0..4 {
        let y = Arc::clone(&y);
        let dbt = dbt.clone();
        readers.push(std::thread::spawn(move || {
            let client = y.db().client();
            for round in 0..40u64 {
                let txn = client.begin();
                for i in (0..total).step_by(13) {
                    if let Some(v) = dbt.lookup(&txn, &i.to_be_bytes()).unwrap() {
                        assert_eq!(&v[..], format!("value{i}").as_bytes(), "round {round}");
                    }
                }
                txn.commit().unwrap();
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    y.engine().wait_for_splits();
    let client = y.db().client();
    let txn = client.begin();
    assert_eq!(dbt.count(&txn).unwrap(), total);
    txn.commit().unwrap();
}
