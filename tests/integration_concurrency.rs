// Placeholder; implemented after the key-value layer.
