//! Integration tests of the fault-tolerance machinery: servers crashing
//! mid-two-phase-commit, coordinators dying after prepare, lost commit
//! messages, and duplicate deliveries — all driven either through the real
//! client (with a [`FaultyTransport`] between it and the servers) or by
//! speaking the wire protocol directly to stand in for a coordinator that
//! dies at a precise point.
//!
//! The invariants under test are the 2PC safety rules: a transaction whose
//! coordinator vanishes after prepare leaves *no* orphaned prepared locks
//! once leases expire and the reaper runs; a transaction committed at its
//! primary participant is eventually committed everywhere; and in every
//! scenario the outcome is all-or-nothing across shards.

use std::sync::Arc;
use std::time::Duration;

use yesquel::kv::protocol::{KvRequest, KvResponse, TxnStatusKind, WriteOp};
use yesquel::kv::store::TxnOutcome;
use yesquel::rpc::{FaultPlan, TransportKind};
use yesquel::{Error, KvConfig, KvDatabase, ObjectId, YesquelConfig};

/// First oid ≥ `from` in tree 1 homed at `server` in a `nservers` cluster.
fn oid_on(server: usize, nservers: usize, from: u64) -> ObjectId {
    (from..)
        .map(|o| ObjectId::new(1, o))
        .find(|obj| obj.home_server(nservers) == server)
        .unwrap()
}

fn impatient(nservers: usize) -> YesquelConfig {
    let mut cfg = YesquelConfig::with_servers(nservers);
    cfg.kv = KvConfig::impatient();
    cfg
}

fn write(obj: ObjectId, val: &[u8]) -> WriteOp {
    WriteOp {
        obj,
        value: Some(bytes::Bytes::copy_from_slice(val)),
    }
}

/// A coordinator that prepares on two shards and then goes silent forever.
/// The prepare leases expire, the primary presumes abort, the secondary
/// learns the abort from the primary, and every lock is released.
#[test]
fn silent_coordinator_is_presumed_aborted() {
    let db = KvDatabase::with_servers(2);
    let transport = db.cluster().transport();
    let txn = 0xDEAD;
    let start_ts = db.oracle().next_timestamp();
    let (o0, o1) = (oid_on(0, 2, 0), oid_on(1, 2, 0));

    for (server, obj) in [(0usize, o0), (1usize, o1)] {
        let resp = transport
            .call(
                server,
                KvRequest::Prepare {
                    txn,
                    start_ts,
                    writes: vec![write(obj, b"never")],
                    primary: 0,
                    lease_us: 2_000,
                },
            )
            .unwrap();
        assert!(matches!(resp, KvResponse::Prepared), "{resp:?}");
    }
    assert_eq!(db.prepared_total(), 2);

    // The locks are real: a conflicting prepare is refused while they hold.
    let other = transport
        .call(
            0,
            KvRequest::Prepare {
                txn: 0xBEEF,
                start_ts: db.oracle().next_timestamp(),
                writes: vec![write(o0, b"blocked")],
                primary: 0,
                lease_us: 2_000,
            },
        )
        .unwrap();
    assert!(matches!(other, KvResponse::Conflict { .. }), "{other:?}");

    // Coordinator never comes back.  Let the leases lapse and reap.
    std::thread::sleep(Duration::from_millis(5));
    db.reap_all();

    assert_eq!(db.prepared_total(), 0, "no orphaned prepared locks");
    for srv in db.cluster().servers() {
        assert_eq!(srv.store().outcome(txn), Some(TxnOutcome::Aborted));
    }

    // All-or-nothing: nothing of the aborted transaction is visible, and
    // the objects are writable again.
    let client = db.client();
    let t = client.begin();
    assert_eq!(t.get(o0).unwrap(), None);
    assert_eq!(t.get(o1).unwrap(), None);
    t.put(o0, &b"after"[..]).unwrap();
    t.put(o1, &b"after"[..]).unwrap();
    t.commit().unwrap();

    // The late coordinator's commit is refused: presumed abort won.
    let late = transport
        .call(
            0,
            KvRequest::Commit {
                txn,
                commit_ts: db.oracle().next_timestamp(),
            },
        )
        .unwrap();
    assert!(matches!(late, KvResponse::Aborted), "{late:?}");
}

/// The coordinator commits at the primary and then dies.  The secondary's
/// lease expires, it asks the primary for the verdict, and adopts the
/// commit — the transaction lands atomically on both shards.
#[test]
fn secondary_adopts_commit_from_primary() {
    let db = KvDatabase::with_servers(2);
    let transport = db.cluster().transport();
    let txn = 0xC0FFEE;
    let start_ts = db.oracle().next_timestamp();
    let (o0, o1) = (oid_on(0, 2, 0), oid_on(1, 2, 0));

    for (server, obj) in [(0usize, o0), (1usize, o1)] {
        transport
            .call(
                server,
                KvRequest::Prepare {
                    txn,
                    start_ts,
                    writes: vec![write(obj, b"both")],
                    primary: 0,
                    lease_us: 2_000,
                },
            )
            .unwrap();
    }

    // Commit reaches the primary only; the coordinator dies before telling
    // the secondary.
    let commit_ts = db.oracle().next_timestamp();
    let resp = transport
        .call(0, KvRequest::Commit { txn, commit_ts })
        .unwrap();
    assert!(matches!(resp, KvResponse::Committed { .. }), "{resp:?}");
    assert_eq!(db.prepared_total(), 1, "secondary still in doubt");

    std::thread::sleep(Duration::from_millis(5));
    db.reap_all();

    assert_eq!(db.prepared_total(), 0);
    let servers = db.cluster().servers();
    for srv in servers {
        assert_eq!(
            srv.store().outcome(txn),
            Some(TxnOutcome::Committed(commit_ts))
        );
    }
    let (adopted, presumed) = servers[1].reap_counts();
    assert_eq!((adopted, presumed), (1, 0), "secondary adopted the commit");

    // Both writes visible at the same timestamp: atomic across shards.
    assert_eq!(
        servers[0].store().dump_versions(o0),
        vec![(commit_ts, Some(bytes::Bytes::from_static(b"both")))]
    );
    assert_eq!(
        servers[1].store().dump_versions(o1),
        vec![(commit_ts, Some(bytes::Bytes::from_static(b"both")))]
    );

    let client = db.client();
    let t = client.begin();
    assert_eq!(t.get(o0).unwrap().as_deref(), Some(&b"both"[..]));
    assert_eq!(t.get(o1).unwrap().as_deref(), Some(&b"both"[..]));
    t.commit().unwrap();
}

/// A secondary participant crashes immediately after processing its prepare
/// (the response is lost), driven through the real client.  The coordinator
/// aborts, the crashed server restarts with the prepared transaction still
/// on its books, and the reaper resolves it to abort by asking the primary.
/// Nothing is ever visible on either shard.
#[test]
fn server_crash_between_prepare_and_commit_resolves_to_abort() {
    // Server 1 (the secondary: the primary is the lowest participant id)
    // crashes after delivering exactly one request — the prepare.
    let plans = vec![
        FaultPlan::healthy(),
        FaultPlan {
            crash_after_requests: Some(1),
            ..FaultPlan::healthy()
        },
    ];
    let db = KvDatabase::with_faults(impatient(2), TransportKind::Direct, plans);
    let faults = Arc::clone(db.faults().unwrap());
    let client = db.client();
    let (o0, o1) = (oid_on(0, 2, 0), oid_on(1, 2, 0));

    let t = client.begin();
    t.put(o0, &b"half"[..]).unwrap();
    t.put(o1, &b"half"[..]).unwrap();
    match t.commit() {
        Err(Error::Unavailable(_)) => {}
        other => panic!("expected Unavailable from prepare deadline, got {other:?}"),
    }
    assert!(db.stats().counter("kv.prepare_deadline_aborts").get() >= 1);
    assert!(faults.is_crashed(1));

    // The crashed server still holds the prepared transaction — the abort
    // fan-out could not reach it.
    assert_eq!(db.prepared_total(), 1, "orphan pending recovery");

    // Restart healthy (the scripted crash plan would otherwise re-fire on
    // the next delivery); the lease has long expired (impatient config).
    // The reaper asks the primary, which recorded the abort.
    faults.set_plan(1, FaultPlan::healthy());
    faults.restart(1);
    std::thread::sleep(Duration::from_millis(5));
    db.reap_all();
    assert_eq!(db.prepared_total(), 0, "no orphaned prepared locks");

    // All-or-nothing held: neither shard shows the write, and the objects
    // are usable again.
    let t = client.begin();
    assert_eq!(t.get(o0).unwrap(), None);
    assert_eq!(t.get(o1).unwrap(), None);
    t.put(o0, &b"retry"[..]).unwrap();
    t.put(o1, &b"retry"[..]).unwrap();
    t.commit().unwrap();
    let t = client.begin();
    assert_eq!(t.get(o0).unwrap().as_deref(), Some(&b"retry"[..]));
    assert_eq!(t.get(o1).unwrap().as_deref(), Some(&b"retry"[..]));
    t.commit().unwrap();
}

/// The commit message to a secondary is lost (the primary committed).  The
/// client still reports success; the secondary converges to the commit via
/// the reaper rather than losing the write.
#[test]
fn lost_secondary_commit_converges_to_committed() {
    let db = KvDatabase::with_faults(impatient(2), TransportKind::Direct, vec![]);
    let faults = Arc::clone(db.faults().unwrap());
    let client = db.client();
    let (o0, o1) = (oid_on(0, 2, 0), oid_on(1, 2, 0));

    // Drop every response from server 1 *after* the prepare phase: flip the
    // plan between prepare and commit is impossible from outside one
    // `commit()` call, so instead crash server 1 after it has delivered two
    // requests — the prepare (request 1) and the phase-two commit would be
    // request 2, whose response is lost.
    faults.set_plan(
        1,
        FaultPlan {
            crash_after_requests: Some(2),
            ..FaultPlan::healthy()
        },
    );

    let t = client.begin();
    t.put(o0, &b"kept"[..]).unwrap();
    t.put(o1, &b"kept"[..]).unwrap();
    // The commit succeeds: the primary confirmed it; the secondary's lost
    // ack only makes it a lagging participant.
    let commit_ts = t.commit().unwrap();
    assert!(db.stats().counter("kv.commit_lagging_participants").get() >= 1);

    // Did the secondary apply before crashing, or is it still prepared?
    // Either is legal; what matters is convergence after restart.
    faults.set_plan(1, FaultPlan::healthy());
    faults.restart(1);
    std::thread::sleep(Duration::from_millis(5));
    db.reap_all();

    assert_eq!(db.prepared_total(), 0);
    let servers = db.cluster().servers();
    assert_eq!(
        servers[1].store().dump_versions(o1),
        vec![(commit_ts, Some(bytes::Bytes::from_static(b"kept")))],
        "secondary converged to the commit, applied exactly once"
    );
    let t = client.begin();
    assert_eq!(t.get(o0).unwrap().as_deref(), Some(&b"kept"[..]));
    assert_eq!(t.get(o1).unwrap().as_deref(), Some(&b"kept"[..]));
    t.commit().unwrap();
}

/// Duplicate deliveries of prepare and commit (retransmissions racing the
/// original) must not double-apply: one version per object, and the second
/// commit reports the original timestamp.
#[test]
fn duplicate_prepare_and_commit_are_idempotent() {
    let db = KvDatabase::with_servers(1);
    let transport = db.cluster().transport();
    let txn = 0xD0D0;
    let start_ts = db.oracle().next_timestamp();
    let obj = oid_on(0, 1, 0);

    let prep = KvRequest::Prepare {
        txn,
        start_ts,
        writes: vec![write(obj, b"once")],
        primary: 0,
        lease_us: 1_000_000,
    };
    assert!(matches!(
        transport.call(0, prep.clone()).unwrap(),
        KvResponse::Prepared
    ));
    assert!(matches!(
        transport.call(0, prep).unwrap(),
        KvResponse::Prepared
    ));
    assert_eq!(db.prepared_total(), 1);

    let commit_ts = db.oracle().next_timestamp();
    for _ in 0..2 {
        match transport
            .call(0, KvRequest::Commit { txn, commit_ts })
            .unwrap()
        {
            KvResponse::Committed { commit_ts: ts } => assert_eq!(ts, commit_ts),
            other => panic!("expected Committed, got {other:?}"),
        }
    }
    let store = db.cluster().servers()[0].store();
    assert_eq!(store.dump_versions(obj).len(), 1, "applied exactly once");
    assert!(
        store.stats().dedup_hits >= 1,
        "duplicate commit answered from the outcome table"
    );

    // A duplicate prepare arriving after the commit reports Prepared (the
    // transaction succeeded; the retransmission is stale) and re-acquires
    // nothing.
    let stale_prep = KvRequest::Prepare {
        txn,
        start_ts,
        writes: vec![write(obj, b"once")],
        primary: 0,
        lease_us: 1_000_000,
    };
    assert!(matches!(
        transport.call(0, stale_prep).unwrap(),
        KvResponse::Prepared
    ));
    assert_eq!(db.prepared_total(), 0);
    assert_eq!(store.dump_versions(obj).len(), 1);
}

/// The wire-level `TxnStatus` query reports each fate correctly, through
/// the transport (not just the store API).
#[test]
fn txn_status_over_the_wire() {
    let db = KvDatabase::with_servers(1);
    let transport = db.cluster().transport();
    let obj = oid_on(0, 1, 0);

    let status = |txn| match transport.call(0, KvRequest::TxnStatus { txn }).unwrap() {
        KvResponse::TxnOutcome { status } => status,
        other => panic!("expected TxnOutcome, got {other:?}"),
    };

    assert_eq!(status(42), TxnStatusKind::Unknown);

    let start_ts = db.oracle().next_timestamp();
    transport
        .call(
            0,
            KvRequest::Prepare {
                txn: 42,
                start_ts,
                writes: vec![write(obj, b"x")],
                primary: 0,
                lease_us: 1_000_000,
            },
        )
        .unwrap();
    assert_eq!(status(42), TxnStatusKind::Pending);

    let commit_ts = db.oracle().next_timestamp();
    transport
        .call(0, KvRequest::Commit { txn: 42, commit_ts })
        .unwrap();
    assert_eq!(status(42), TxnStatusKind::Committed(commit_ts));

    transport.call(0, KvRequest::Abort { txn: 43 }).unwrap();
    assert_eq!(status(43), TxnStatusKind::Aborted);
}

/// A whole-cluster crash makes client operations fail with availability
/// errors (after bounded retries), never hangs and never panics; service
/// resumes after restart with all pre-crash data intact.
#[test]
fn full_outage_fails_cleanly_and_recovers() {
    let db = KvDatabase::with_faults(impatient(3), TransportKind::Direct, vec![]);
    let faults = Arc::clone(db.faults().unwrap());
    let client = db.client();

    let t = client.begin();
    for i in 0..9 {
        t.put(ObjectId::new(1, i), format!("v{i}")).unwrap();
    }
    t.commit().unwrap();

    for s in 0..3 {
        faults.crash(s);
    }
    let t = client.begin();
    match t.get(ObjectId::new(1, 0)) {
        Err(e) if e.is_availability() => {}
        other => panic!("expected an availability error, got {other:?}"),
    }
    t.abort();
    assert!(db.stats().counter("rpc.retries").get() > 0);
    assert!(db.stats().counter("rpc.faults_injected").get() > 0);

    faults.heal_all();
    let t = client.begin();
    for i in 0..9 {
        assert_eq!(
            t.get(ObjectId::new(1, i)).unwrap().as_deref(),
            Some(format!("v{i}").as_bytes()),
            "data survived the outage"
        );
    }
    t.commit().unwrap();
}
