//! Sanity tests of the single-node baseline store the benchmarks compare
//! against.

use yesquel::baselines::LocalKv;

#[test]
fn baseline_kv_round_trip() {
    let kv = LocalKv::new();
    for i in 0..100u64 {
        kv.put(&i.to_be_bytes(), format!("v{i}"));
    }
    assert_eq!(kv.len(), 100);
    assert_eq!(kv.get(&42u64.to_be_bytes()).as_deref(), Some(&b"v42"[..]));
    let scanned = kv.scan(&10u64.to_be_bytes(), &20u64.to_be_bytes(), 100);
    assert_eq!(scanned.len(), 10);
    assert!(kv.delete(&42u64.to_be_bytes()));
    assert_eq!(kv.get(&42u64.to_be_bytes()), None);
}
