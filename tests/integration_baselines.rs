// Placeholder; implemented after the baselines.
