// Placeholder; implemented after the SQL layer.
