//! End-to-end integration tests of the SQL layer: statements entered as
//! text, compiled by the planner onto DBT operations, executed inside
//! distributed transactions — DDL, DML with secondary-index maintenance,
//! point/range/filtered queries, explicit transactions and conflict
//! handling.

use yesquel::sql::{plan_statement, Value};
use yesquel::{Error, Yesquel};

fn rows_i64(y: &Yesquel, sql: &str) -> Vec<Vec<i64>> {
    y.execute(sql, &[])
        .unwrap()
        .rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    Value::Int(i) => i,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect()
        })
        .collect()
}

/// The planner's one-line description of how a query would run.
fn plan_of(y: &Yesquel, sql: &str) -> String {
    let stmt = yesquel::sql::parse(sql).unwrap();
    let txn = y.begin();
    let plan = plan_statement(y.session().catalog(), &txn, &stmt).unwrap();
    txn.commit().unwrap();
    plan.describe()
}

fn wiki_fixture() -> Yesquel {
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL, views INT, body TEXT);
         CREATE UNIQUE INDEX by_title ON pages (title);
         CREATE INDEX by_views ON pages (views);",
    )
    .unwrap();
    for i in 0..50i64 {
        y.execute(
            "INSERT INTO pages (title, views, body) VALUES (?, ?, ?)",
            &[
                Value::Text(format!("page-{i:02}")),
                Value::Int(i * 10),
                Value::Text(format!("body of {i}")),
            ],
        )
        .unwrap();
    }
    y
}

#[test]
fn ddl_then_dml_then_queries() {
    let y = Yesquel::open(3);
    y.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score FLOAT)",
        &[],
    )
    .unwrap();
    let rs = y
        .execute(
            "INSERT INTO users (name, score) VALUES ('alice', 3.5), ('bob', 1.0), ('carol', 9.5)",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 3);
    assert_eq!(rs.last_rowid, Some(3));

    // Point read by primary key.
    let rs = y
        .execute("SELECT name, score FROM users WHERE id = 2", &[])
        .unwrap();
    assert_eq!(rs.columns, vec!["name", "score"]);
    assert_eq!(
        rs.rows,
        vec![vec![Value::Text("bob".into()), Value::Real(1.0)]]
    );

    // Expression projection with alias.
    let rs = y
        .execute(
            "SELECT name, score * 2 AS double FROM users WHERE score >= 3.5 ORDER BY double DESC",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["name", "double"]);
    assert_eq!(rs.rows[0][0], Value::Text("carol".into()));
    assert_eq!(rs.rows[1][1], Value::Real(7.0));

    // Expression-only SELECT still works.
    let rs = y.execute("SELECT 1 + 1, 'x' || 'y'", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(2), Value::Text("xy".into())]]);
}

#[test]
fn planner_chooses_expected_access_paths() {
    let y = wiki_fixture();
    assert!(plan_of(&y, "SELECT * FROM pages WHERE id = 7").starts_with("POINT pages"));
    assert!(plan_of(&y, "SELECT * FROM pages WHERE title = 'page-01'").contains("USING by_title"));
    assert!(
        plan_of(&y, "SELECT * FROM pages WHERE views >= 10 AND views < 90")
            .contains("USING by_views")
    );
    assert!(plan_of(&y, "SELECT * FROM pages WHERE id > 10").starts_with("RANGE pages"));
    assert!(plan_of(&y, "SELECT * FROM pages WHERE body LIKE '%x%'").starts_with("SCAN pages"));
    assert!(plan_of(&y, "SELECT * FROM pages").starts_with("SCAN pages"));
}

#[test]
fn secondary_index_equality_and_range_scans() {
    let y = wiki_fixture();

    // Unique-index equality with fetch-back of non-indexed columns.
    let rs = y
        .execute(
            "SELECT id, body FROM pages WHERE title = ?",
            &[Value::Text("page-07".into())],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::Int(8), Value::Text("body of 7".into())]]
    );

    // Non-unique index range scan, bounded on both sides.
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE views > 100 AND views <= 150 ORDER BY views",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(110)],
            vec![Value::Int(120)],
            vec![Value::Int(130)],
            vec![Value::Int(140)],
            vec![Value::Int(150)],
        ]
    );

    // BETWEEN compiles onto the same bounded scan.
    let rs = y
        .execute(
            "SELECT COUNT_ROWS FROM pages WHERE views BETWEEN 0 AND 40",
            &[],
        )
        .unwrap_err();
    // (no such column: the typo surfaces as a schema error, not a panic)
    assert!(matches!(rs, Error::Schema(_)));
    let rs = y
        .execute("SELECT views FROM pages WHERE views BETWEEN 0 AND 40", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 5);

    // Residual filter on top of an index scan.
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= 100 AND title LIKE '%page-1%'",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10, "{:?}", rs.rows);
}

#[test]
fn order_by_limit_offset_distinct() {
    let y = wiki_fixture();
    let rs = y
        .execute(
            "SELECT title FROM pages ORDER BY views DESC LIMIT 3 OFFSET 1",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("page-48".into())],
            vec![Value::Text("page-47".into())],
            vec![Value::Text("page-46".into())],
        ]
    );
    // ORDER BY ordinal.
    let rs = y
        .execute("SELECT id, views FROM pages ORDER BY 2 LIMIT 2", &[])
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(0)]);

    // DISTINCT.
    y.execute("UPDATE pages SET views = 7", &[]).unwrap();
    let rs = y.execute("SELECT DISTINCT views FROM pages", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn update_maintains_secondary_indexes() {
    let y = wiki_fixture();
    let rs = y
        .execute(
            "UPDATE pages SET views = views + 1000, title = 'bumped-' || title WHERE views >= 480",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 2);

    // New values are findable through both indexes...
    let rs = y
        .execute("SELECT id FROM pages WHERE title = 'bumped-page-48'", &[])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(49)]]);
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE views > 1000 ORDER BY views",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::Int(1480)], vec![Value::Int(1490)]]
    );

    // ...and the old index entries are gone.
    assert!(y
        .execute("SELECT id FROM pages WHERE title = 'page-48'", &[])
        .unwrap()
        .rows
        .is_empty());
    assert!(y
        .execute("SELECT id FROM pages WHERE views = 480", &[])
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn delete_maintains_secondary_indexes() {
    let y = wiki_fixture();
    let rs = y
        .execute("DELETE FROM pages WHERE views < 100", &[])
        .unwrap();
    assert_eq!(rs.rows_affected, 10);
    assert_eq!(
        rows_i64(&y, "SELECT id FROM pages WHERE views = 0").len(),
        0
    );
    assert_eq!(
        rows_i64(&y, "SELECT id FROM pages WHERE views = 100"),
        vec![vec![11]]
    );
    // Full table count agrees.
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 40);
    // Deleted titles are gone from the unique index.
    assert!(y
        .execute("SELECT id FROM pages WHERE title = 'page-03'", &[])
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn constraints_are_enforced() {
    let y = wiki_fixture();
    // Duplicate primary key.
    let err = y
        .execute("INSERT INTO pages (id, title) VALUES (1, 'dup-pk')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // Unique index violation.
    let err = y
        .execute("INSERT INTO pages (title) VALUES ('page-01')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // NOT NULL violation.
    let err = y
        .execute("INSERT INTO pages (views) VALUES (1)", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // UPDATE into a unique conflict.
    let err = y
        .execute("UPDATE pages SET title = 'page-02' WHERE id = 1", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // Failed statements leave the data intact.
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);
}

#[test]
fn nulls_are_distinct_in_unique_indexes() {
    let y = Yesquel::open(2);
    y.execute_script(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
         CREATE UNIQUE INDEX by_tag ON t (tag);",
    )
    .unwrap();
    y.execute("INSERT INTO t (tag) VALUES (NULL), (NULL), ('x')", &[])
        .unwrap();
    let err = y
        .execute("INSERT INTO t (tag) VALUES ('x')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)));
    assert_eq!(rows_i64(&y, "SELECT id FROM t").len(), 3);
    // NULLs are invisible to equality but found by IS NULL.
    assert!(y
        .execute("SELECT id FROM t WHERE tag = NULL", &[])
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(rows_i64(&y, "SELECT id FROM t WHERE tag IS NULL").len(), 2);
}

#[test]
fn explicit_transactions_and_first_committer_wins() {
    let y = Yesquel::open(3);
    y.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INT)", &[])
        .unwrap();
    y.execute("INSERT INTO acct VALUES (1, 100)", &[]).unwrap();

    // Two sessions race an update to the same row under snapshot isolation.
    let a = y.new_session().unwrap();
    let b = y.new_session().unwrap();
    a.execute("BEGIN", &[]).unwrap();
    b.execute("BEGIN", &[]).unwrap();
    a.execute("UPDATE acct SET bal = bal + 10 WHERE id = 1", &[])
        .unwrap();
    b.execute("UPDATE acct SET bal = bal + 77 WHERE id = 1", &[])
        .unwrap();
    a.execute("COMMIT", &[]).unwrap();
    // The second committer must abort (first-committer-wins).
    let err = b.execute("COMMIT", &[]).unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert!(!b.in_transaction());

    // Only A's update survived.
    assert_eq!(rows_i64(&y, "SELECT bal FROM acct"), vec![vec![110]]);

    // ROLLBACK undoes buffered statements.
    a.execute("BEGIN", &[]).unwrap();
    a.execute("UPDATE acct SET bal = 0", &[]).unwrap();
    a.execute("ROLLBACK", &[]).unwrap();
    assert_eq!(rows_i64(&y, "SELECT bal FROM acct"), vec![vec![110]]);
}

#[test]
fn rolled_back_ddl_leaves_no_trace() {
    let y = Yesquel::open(2);
    let s = y.session();
    s.execute("BEGIN", &[]).unwrap();
    s.execute("CREATE TABLE ghost (a INT)", &[]).unwrap();
    s.execute("INSERT INTO ghost VALUES (1)", &[]).unwrap();
    s.execute("ROLLBACK", &[]).unwrap();
    // The table never existed: neither in storage nor in the schema cache.
    let err = y.execute("SELECT * FROM ghost", &[]).unwrap_err();
    assert!(matches!(err, Error::Schema(_)), "{err}");
    // And the name is free again.
    y.execute("CREATE TABLE ghost (b TEXT)", &[]).unwrap();
}

#[test]
fn unsupported_features_error_cleanly() {
    let y = wiki_fixture();
    for sql in [
        "SELECT COUNT(*) FROM pages",
        "SELECT views, SUM(views) FROM pages GROUP BY views",
        "SELECT p.title FROM pages p JOIN pages q ON p.id = q.id",
    ] {
        let err = y.execute(sql, &[]).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{sql}: {err}");
    }
}

#[test]
fn autocommit_statements_retry_conflicts_to_success() {
    use std::sync::Arc;
    let y = Arc::new(Yesquel::open(4));
    y.execute("CREATE TABLE c (id INTEGER PRIMARY KEY, n INT)", &[])
        .unwrap();
    y.execute("INSERT INTO c VALUES (1, 0)", &[]).unwrap();
    // Hammer one row from several threads; every increment must stick.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let y = Arc::clone(&y);
            std::thread::spawn(move || {
                let s = y.new_session().unwrap();
                for _ in 0..25 {
                    s.execute("UPDATE c SET n = n + 1 WHERE id = 1", &[])
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(rows_i64(&y, "SELECT n FROM c"), vec![vec![100]]);
}
