//! End-to-end integration tests of the SQL layer: statements entered as
//! text, compiled by the planner onto DBT operations, executed inside
//! distributed transactions — DDL, DML with secondary-index maintenance,
//! point/range/filtered queries, explicit transactions and conflict
//! handling.

use yesquel::sql::{plan_statement, Value};
use yesquel::{params, Error, Yesquel};

fn rows_i64(y: &Yesquel, sql: &str) -> Vec<Vec<i64>> {
    y.execute(sql, &[])
        .unwrap()
        .rows
        .into_iter()
        .map(|r| {
            r.into_iter()
                .map(|v| match v {
                    Value::Int(i) => i,
                    other => panic!("expected int, got {other:?}"),
                })
                .collect()
        })
        .collect()
}

/// The planner's one-line description of how a query would run.
fn plan_of(y: &Yesquel, sql: &str) -> String {
    let stmt = yesquel::sql::parse(sql).unwrap();
    let txn = y.begin();
    let plan = plan_statement(y.session().catalog(), &txn, &stmt).unwrap();
    txn.commit().unwrap();
    plan.describe()
}

fn wiki_fixture() -> Yesquel {
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL, views INT, body TEXT);
         CREATE UNIQUE INDEX by_title ON pages (title);
         CREATE INDEX by_views ON pages (views);",
    )
    .unwrap();
    for i in 0..50i64 {
        y.execute(
            "INSERT INTO pages (title, views, body) VALUES (?, ?, ?)",
            &[
                Value::Text(format!("page-{i:02}")),
                Value::Int(i * 10),
                Value::Text(format!("body of {i}")),
            ],
        )
        .unwrap();
    }
    y
}

#[test]
fn ddl_then_dml_then_queries() {
    let y = Yesquel::open(3);
    y.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score FLOAT)",
        &[],
    )
    .unwrap();
    let rs = y
        .execute(
            "INSERT INTO users (name, score) VALUES ('alice', 3.5), ('bob', 1.0), ('carol', 9.5)",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 3);
    assert_eq!(rs.last_rowid, Some(3));

    // Point read by primary key.
    let rs = y
        .execute("SELECT name, score FROM users WHERE id = 2", &[])
        .unwrap();
    assert_eq!(rs.columns, vec!["name", "score"]);
    assert_eq!(
        rs.rows,
        vec![vec![Value::Text("bob".into()), Value::Real(1.0)]]
    );

    // Expression projection with alias.
    let rs = y
        .execute(
            "SELECT name, score * 2 AS double FROM users WHERE score >= 3.5 ORDER BY double DESC",
            &[],
        )
        .unwrap();
    assert_eq!(rs.columns, vec!["name", "double"]);
    assert_eq!(rs.rows[0][0], Value::Text("carol".into()));
    assert_eq!(rs.rows[1][1], Value::Real(7.0));

    // Expression-only SELECT still works.
    let rs = y.execute("SELECT 1 + 1, 'x' || 'y'", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(2), Value::Text("xy".into())]]);
}

#[test]
fn planner_chooses_expected_access_paths() {
    let y = wiki_fixture();
    assert!(plan_of(&y, "SELECT * FROM pages WHERE id = 7").starts_with("POINT pages"));
    assert!(plan_of(&y, "SELECT * FROM pages WHERE title = 'page-01'").contains("USING by_title"));
    assert!(
        plan_of(&y, "SELECT * FROM pages WHERE views >= 10 AND views < 90")
            .contains("USING by_views")
    );
    assert!(plan_of(&y, "SELECT * FROM pages WHERE id > 10").starts_with("RANGE pages"));
    assert!(plan_of(&y, "SELECT * FROM pages WHERE body LIKE '%x%'").starts_with("SCAN pages"));
    assert!(plan_of(&y, "SELECT * FROM pages").starts_with("SCAN pages"));
}

#[test]
fn secondary_index_equality_and_range_scans() {
    let y = wiki_fixture();

    // Unique-index equality with fetch-back of non-indexed columns.
    let rs = y
        .execute(
            "SELECT id, body FROM pages WHERE title = ?",
            &[Value::Text("page-07".into())],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::Int(8), Value::Text("body of 7".into())]]
    );

    // Non-unique index range scan, bounded on both sides.
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE views > 100 AND views <= 150 ORDER BY views",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(110)],
            vec![Value::Int(120)],
            vec![Value::Int(130)],
            vec![Value::Int(140)],
            vec![Value::Int(150)],
        ]
    );

    // BETWEEN compiles onto the same bounded scan.
    let rs = y
        .execute(
            "SELECT COUNT_ROWS FROM pages WHERE views BETWEEN 0 AND 40",
            &[],
        )
        .unwrap_err();
    // (no such column: the typo surfaces as a schema error, not a panic)
    assert!(matches!(rs, Error::Schema(_)));
    let rs = y
        .execute("SELECT views FROM pages WHERE views BETWEEN 0 AND 40", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 5);

    // Residual filter on top of an index scan.
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= 100 AND title LIKE '%page-1%'",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10, "{:?}", rs.rows);
}

#[test]
fn order_by_limit_offset_distinct() {
    let y = wiki_fixture();
    let rs = y
        .execute(
            "SELECT title FROM pages ORDER BY views DESC LIMIT 3 OFFSET 1",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("page-48".into())],
            vec![Value::Text("page-47".into())],
            vec![Value::Text("page-46".into())],
        ]
    );
    // ORDER BY ordinal.
    let rs = y
        .execute("SELECT id, views FROM pages ORDER BY 2 LIMIT 2", &[])
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(0)]);

    // DISTINCT.
    y.execute("UPDATE pages SET views = 7", &[]).unwrap();
    let rs = y.execute("SELECT DISTINCT views FROM pages", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn update_maintains_secondary_indexes() {
    let y = wiki_fixture();
    let rs = y
        .execute(
            "UPDATE pages SET views = views + 1000, title = 'bumped-' || title WHERE views >= 480",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows_affected, 2);

    // New values are findable through both indexes...
    let rs = y
        .execute("SELECT id FROM pages WHERE title = 'bumped-page-48'", &[])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(49)]]);
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE views > 1000 ORDER BY views",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::Int(1480)], vec![Value::Int(1490)]]
    );

    // ...and the old index entries are gone.
    assert!(y
        .execute("SELECT id FROM pages WHERE title = 'page-48'", &[])
        .unwrap()
        .rows
        .is_empty());
    assert!(y
        .execute("SELECT id FROM pages WHERE views = 480", &[])
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn delete_maintains_secondary_indexes() {
    let y = wiki_fixture();
    let rs = y
        .execute("DELETE FROM pages WHERE views < 100", &[])
        .unwrap();
    assert_eq!(rs.rows_affected, 10);
    assert_eq!(
        rows_i64(&y, "SELECT id FROM pages WHERE views = 0").len(),
        0
    );
    assert_eq!(
        rows_i64(&y, "SELECT id FROM pages WHERE views = 100"),
        vec![vec![11]]
    );
    // Full table count agrees.
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 40);
    // Deleted titles are gone from the unique index.
    assert!(y
        .execute("SELECT id FROM pages WHERE title = 'page-03'", &[])
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn constraints_are_enforced() {
    let y = wiki_fixture();
    // Duplicate primary key.
    let err = y
        .execute("INSERT INTO pages (id, title) VALUES (1, 'dup-pk')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // Unique index violation.
    let err = y
        .execute("INSERT INTO pages (title) VALUES ('page-01')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // NOT NULL violation.
    let err = y
        .execute("INSERT INTO pages (views) VALUES (1)", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // UPDATE into a unique conflict.
    let err = y
        .execute("UPDATE pages SET title = 'page-02' WHERE id = 1", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)), "{err}");
    // Failed statements leave the data intact.
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);
}

#[test]
fn nulls_are_distinct_in_unique_indexes() {
    let y = Yesquel::open(2);
    y.execute_script(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
         CREATE UNIQUE INDEX by_tag ON t (tag);",
    )
    .unwrap();
    y.execute("INSERT INTO t (tag) VALUES (NULL), (NULL), ('x')", &[])
        .unwrap();
    let err = y
        .execute("INSERT INTO t (tag) VALUES ('x')", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Constraint(_)));
    assert_eq!(rows_i64(&y, "SELECT id FROM t").len(), 3);
    // NULLs are invisible to equality but found by IS NULL.
    assert!(y
        .execute("SELECT id FROM t WHERE tag = NULL", &[])
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(rows_i64(&y, "SELECT id FROM t WHERE tag IS NULL").len(), 2);
}

#[test]
fn explicit_transactions_and_first_committer_wins() {
    let y = Yesquel::open(3);
    y.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INT)", &[])
        .unwrap();
    y.execute("INSERT INTO acct VALUES (1, 100)", &[]).unwrap();

    // Two sessions race an update to the same row under snapshot isolation.
    let a = y.new_session().unwrap();
    let b = y.new_session().unwrap();
    a.execute("BEGIN", &[]).unwrap();
    b.execute("BEGIN", &[]).unwrap();
    a.execute("UPDATE acct SET bal = bal + 10 WHERE id = 1", &[])
        .unwrap();
    b.execute("UPDATE acct SET bal = bal + 77 WHERE id = 1", &[])
        .unwrap();
    a.execute("COMMIT", &[]).unwrap();
    // The second committer must abort (first-committer-wins).
    let err = b.execute("COMMIT", &[]).unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert!(!b.in_transaction());

    // Only A's update survived.
    assert_eq!(rows_i64(&y, "SELECT bal FROM acct"), vec![vec![110]]);

    // ROLLBACK undoes buffered statements.
    a.execute("BEGIN", &[]).unwrap();
    a.execute("UPDATE acct SET bal = 0", &[]).unwrap();
    a.execute("ROLLBACK", &[]).unwrap();
    assert_eq!(rows_i64(&y, "SELECT bal FROM acct"), vec![vec![110]]);
}

#[test]
fn rolled_back_ddl_leaves_no_trace() {
    let y = Yesquel::open(2);
    let s = y.session();
    s.execute("BEGIN", &[]).unwrap();
    s.execute("CREATE TABLE ghost (a INT)", &[]).unwrap();
    s.execute("INSERT INTO ghost VALUES (1)", &[]).unwrap();
    s.execute("ROLLBACK", &[]).unwrap();
    // The table never existed: neither in storage nor in the schema cache.
    let err = y.execute("SELECT * FROM ghost", &[]).unwrap_err();
    assert!(matches!(err, Error::Schema(_)), "{err}");
    // And the name is free again.
    y.execute("CREATE TABLE ghost (b TEXT)", &[]).unwrap();
}

#[test]
fn unsupported_features_error_cleanly() {
    let y = wiki_fixture();
    for sql in [
        "SELECT p.title FROM pages p JOIN pages q ON p.id = q.id",
        "SELECT MAX(MIN(views)) FROM pages",
        "SELECT LENGTH(*) FROM pages",
    ] {
        let err = y.execute(sql, &[]).unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "{sql}: {err}");
    }
    // A bare column in an aggregate query must be grouped or aggregated.
    let err = y
        .execute("SELECT title, COUNT(*) FROM pages", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Schema(_)), "{err}");
}

#[test]
fn aggregates_without_group_by() {
    let y = wiki_fixture();
    // views are 0, 10, ..., 490.
    let rs = y
        .execute(
            "SELECT COUNT(*), SUM(views), MIN(views), MAX(views), AVG(views) \
             FROM pages WHERE views < 50",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![
            Value::Int(5),
            Value::Int(100),
            Value::Int(0),
            Value::Int(40),
            Value::Real(20.0),
        ]]
    );
    // Aggregates over zero rows: COUNT is 0, the others NULL.
    let rs = y
        .execute(
            "SELECT COUNT(*), COUNT(views), SUM(views), AVG(views), MIN(views) \
             FROM pages WHERE views > 10000",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![
            Value::Int(0),
            Value::Int(0),
            Value::Null,
            Value::Null,
            Value::Null,
        ]]
    );
    // Aggregates compose inside expressions.
    let rs = y
        .execute("SELECT MAX(views) - MIN(views) + 1 FROM pages", &[])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(491)]]);
}

#[test]
fn group_by_streams_and_hashes() {
    let y = Yesquel::open(3);
    y.execute_script(
        "CREATE TABLE g (id INTEGER PRIMARY KEY, cat TEXT, v INT);
         CREATE INDEX g_by_cat ON g (cat);
         INSERT INTO g (cat, v) VALUES
            ('a', 1), ('a', 2), ('b', NULL), ('b', 3), (NULL, 4)",
    )
    .unwrap();

    // Indexed group keys: streamed, covering needs only cat + v?  v is not
    // indexed, so this one pays fetch-backs — correctness is the point.
    let rs = y
        .execute(
            "SELECT cat, COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) \
             FROM g GROUP BY cat ORDER BY cat",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![
                Value::Null,
                Value::Int(1),
                Value::Int(1),
                Value::Int(4),
                Value::Real(4.0),
                Value::Int(4),
                Value::Int(4),
            ],
            vec![
                Value::Text("a".into()),
                Value::Int(2),
                Value::Int(2),
                Value::Int(3),
                Value::Real(1.5),
                Value::Int(1),
                Value::Int(2),
            ],
            vec![
                Value::Text("b".into()),
                Value::Int(2),
                Value::Int(1),
                Value::Int(3),
                Value::Real(3.0),
                Value::Int(3),
                Value::Int(3),
            ],
        ]
    );

    // Un-indexed group keys: hash aggregation, same answers.
    let rs = y
        .execute(
            "SELECT v % 2, COUNT(*) FROM g WHERE v IS NOT NULL GROUP BY v % 2 ORDER BY 1",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(0), Value::Int(2)], // 2, 4
            vec![Value::Int(1), Value::Int(2)], // 1, 3
        ]
    );

    // ORDER BY an aggregate (via alias) with GROUP BY.
    let rs = y
        .execute(
            "SELECT cat, COUNT(*) AS n FROM g GROUP BY cat ORDER BY n DESC, cat",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("a".into()), Value::Int(2)],
            vec![Value::Text("b".into()), Value::Int(2)],
            vec![Value::Null, Value::Int(1)],
        ]
    );

    // Zero matching rows with GROUP BY: zero groups.
    let rs = y
        .execute("SELECT cat, COUNT(*) FROM g WHERE v > 99 GROUP BY cat", &[])
        .unwrap();
    assert!(rs.rows.is_empty());

    // Group-key matching resolves names like everything else: identifier
    // case and table qualifiers are insignificant.
    let rs = y
        .execute("SELECT CAT, COUNT(*) FROM g GROUP BY g.cat ORDER BY 1", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[1][0], Value::Text("a".into()));

    // An out-of-range ORDER BY ordinal errors in aggregate queries too.
    let err = y
        .execute("SELECT cat, COUNT(*) FROM g GROUP BY cat ORDER BY 5", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Schema(_)), "{err}");
}

#[test]
fn min_max_compile_to_bounded_reads() {
    let y = wiki_fixture();
    let stats = y.db().stats();

    // Warm the schema cache so the measured statements only touch data.
    y.execute("SELECT MIN(views) FROM pages", &[]).unwrap();

    let before = stats.counter("sql.rows_scanned").get();
    assert_eq!(
        y.execute("SELECT MIN(views) FROM pages", &[]).unwrap().rows,
        vec![vec![Value::Int(0)]]
    );
    assert_eq!(
        y.execute("SELECT MAX(views) FROM pages", &[]).unwrap().rows,
        vec![vec![Value::Int(490)]]
    );
    assert_eq!(
        y.execute("SELECT MAX(views) FROM pages WHERE views < 245", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Int(240)]]
    );
    assert_eq!(
        y.execute("SELECT MIN(views) FROM pages WHERE views > 245", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Int(250)]]
    );
    // Four MIN/MAX statements, one entry examined each.
    assert_eq!(stats.counter("sql.rows_scanned").get() - before, 4);

    // MIN/MAX of the rowid run against the primary tree's edges.
    assert_eq!(
        y.execute("SELECT MIN(id) FROM pages WHERE id > 10", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Int(11)]]
    );
    assert_eq!(
        y.execute("SELECT MAX(id) FROM pages", &[]).unwrap().rows,
        vec![vec![Value::Int(50)]]
    );

    // A residual the pushdown cannot absorb falls back to a scan — and
    // still answers correctly.
    assert_eq!(
        y.execute(
            "SELECT MAX(views) FROM pages WHERE title LIKE 'page-1%'",
            &[]
        )
        .unwrap()
        .rows,
        vec![vec![Value::Int(190)]]
    );
}

#[test]
fn explain_reports_physical_properties() {
    let y = wiki_fixture();
    let explain = |sql: &str| -> String {
        let rs = y.execute(&format!("EXPLAIN {sql}"), &[]).unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        match &rs.rows[0][0] {
            Value::Text(s) => s.clone(),
            other => panic!("EXPLAIN returned {other:?}"),
        }
    };
    assert_eq!(
        explain("SELECT * FROM pages WHERE id = 7"),
        "POINT pages (rowid=?)"
    );
    // Covering: the projection and predicate live entirely in the index.
    assert_eq!(
        explain("SELECT views FROM pages WHERE views > 10"),
        "INDEX pages USING by_views (eq=0, range lo..) covering"
    );
    // Order elision without coverage: fetch-backs, but no sort.
    assert_eq!(
        explain("SELECT title FROM pages WHERE views > 10 ORDER BY views LIMIT 3"),
        "INDEX pages USING by_views (eq=0, range lo..) ordered by index"
    );
    // An unconstrained ORDER BY switches to a covering index scan.
    assert_eq!(
        explain("SELECT views FROM pages ORDER BY views LIMIT 3"),
        "INDEX pages USING by_views (eq=0) covering ordered by index"
    );
    // DESC defeats elision (scans are forward-only).
    assert_eq!(
        explain("SELECT views FROM pages WHERE views > 10 ORDER BY views DESC"),
        "INDEX pages USING by_views (eq=0, range lo..) covering"
    );
    // Aggregates.
    assert_eq!(
        explain("SELECT COUNT(*) FROM pages"),
        "SCAN pages AGG stream(COUNT(*))"
    );
    assert_eq!(
        explain("SELECT MAX(views) FROM pages"),
        "INDEX pages USING by_views (eq=0) covering AGG minmax(MAX)"
    );
    assert_eq!(
        explain("SELECT views, COUNT(*) FROM pages GROUP BY views"),
        "INDEX pages USING by_views (eq=0) covering AGG stream(COUNT(*)) GROUP BY 1"
    );
    assert_eq!(
        explain("SELECT body, COUNT(*) FROM pages GROUP BY body"),
        "SCAN pages AGG hash(COUNT(*)) GROUP BY 1"
    );
    // EXPLAIN of DML describes without executing.
    assert_eq!(
        explain("DELETE FROM pages WHERE id = 1"),
        "DELETE POINT pages (rowid=?)"
    );
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);
}

#[test]
fn covering_scan_performs_zero_fetchbacks() {
    let y = wiki_fixture();
    let stats = y.db().stats();

    // Warm up (schema + node cache).
    y.execute(
        "SELECT views FROM pages WHERE views >= 100 AND views < 200",
        &[],
    )
    .unwrap();

    let fetchbacks = stats.counter("sql.fetchbacks").get();
    let lookups = stats.counter("dbt.lookups").get();
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE views >= 100 AND views < 200 ORDER BY views",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10);
    assert_eq!(
        stats.counter("sql.fetchbacks").get() - fetchbacks,
        0,
        "covering scan must not fetch back"
    );
    assert_eq!(
        stats.counter("dbt.lookups").get() - lookups,
        0,
        "covering scan must not touch the primary tree"
    );

    // The same query projecting an uncovered column pays one fetch-back
    // per matching entry.
    let fetchbacks = stats.counter("sql.fetchbacks").get();
    let rs = y
        .execute(
            "SELECT body FROM pages WHERE views >= 100 AND views < 200",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 10);
    assert_eq!(stats.counter("sql.fetchbacks").get() - fetchbacks, 10);
}

#[test]
fn ordered_limit_reads_only_limit_entries() {
    let y = wiki_fixture();
    let stats = y.db().stats();
    y.execute(
        "SELECT title FROM pages WHERE views >= 0 ORDER BY views LIMIT 3",
        &[],
    )
    .unwrap();

    // The scan order subsumes ORDER BY, so LIMIT k pulls exactly k index
    // entries — not the whole match set.
    let before = stats.counter("sql.rows_scanned").get();
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= 0 ORDER BY views LIMIT 3",
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Text("page-00".into())],
            vec![Value::Text("page-01".into())],
            vec![Value::Text("page-02".into())],
        ]
    );
    assert_eq!(stats.counter("sql.rows_scanned").get() - before, 3);

    // OFFSET counts against the bound too.
    let before = stats.counter("sql.rows_scanned").get();
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= 0 ORDER BY views LIMIT 2 OFFSET 2",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Text("page-02".into())]);
    assert_eq!(stats.counter("sql.rows_scanned").get() - before, 4);

    // A DESC order cannot come from the forward scan: the whole match set
    // is read and sorted (correctness baseline for the elision).
    let before = stats.counter("sql.rows_scanned").get();
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= 0 ORDER BY views DESC LIMIT 3",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows[0], vec![Value::Text("page-49".into())]);
    assert_eq!(stats.counter("sql.rows_scanned").get() - before, 50);
}

#[test]
fn order_elision_respects_nullable_unique_indexes() {
    // Unique indexes store NULL-containing entries non-unique style (rowid
    // suffix, duplicates allowed), so consuming all columns of a unique
    // index only totalises the order when the scanned columns are NOT NULL
    // — otherwise ORDER BY keys past the index columns must still sort.
    let y = Yesquel::open(2);
    y.execute_script(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INT, b INT, c INT);
         CREATE UNIQUE INDEX u ON t (a, b);
         INSERT INTO t (a, b, c) VALUES (5, NULL, 9), (5, NULL, 1)",
    )
    .unwrap();
    let rs = y
        .execute("SELECT c FROM t WHERE a = 5 ORDER BY b, c", &[])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(9)]]);
    // And the plan admits the sort is needed.
    let rs = y
        .execute("EXPLAIN SELECT c FROM t WHERE a = 5 ORDER BY b, c", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("INDEX t USING u (eq=1)".into()));

    // With NOT NULL columns the unique key is genuinely total and the
    // trailing ORDER BY keys elide.
    let y2 = Yesquel::open(2);
    y2.execute_script(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INT NOT NULL, b INT NOT NULL, c INT);
         CREATE UNIQUE INDEX u ON t (a, b)",
    )
    .unwrap();
    let rs = y2
        .execute("EXPLAIN SELECT c FROM t WHERE a = 5 ORDER BY b, c", &[])
        .unwrap();
    assert_eq!(
        rs.rows[0][0],
        Value::Text("INDEX t USING u (eq=1) ordered by index".into())
    );
}

#[test]
fn statement_cache_reuses_and_invalidates_plans() {
    let y = Yesquel::open(2);
    y.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INT, b TEXT)",
        &[],
    )
    .unwrap();
    for i in 0..20i64 {
        y.execute(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            &[Value::Int(i % 5), Value::Text(format!("b{i}"))],
        )
        .unwrap();
    }
    let stats = y.db().stats();

    let sql = "SELECT id FROM t WHERE a = ?";
    y.execute(sql, &[Value::Int(3)]).unwrap();
    let hits = stats.counter("sql.stmt_cache_hits").get();
    let rs = y.execute(sql, &[Value::Int(4)]).unwrap();
    assert_eq!(rs.rows.len(), 4);
    assert!(
        stats.counter("sql.stmt_cache_hits").get() > hits,
        "second execution of the same text must hit the statement cache"
    );

    // Before the index exists, the cached plan is a full scan...
    let explain_sql = "EXPLAIN SELECT id FROM t WHERE a = ?";
    let plan_before = y.execute(explain_sql, &[]).unwrap().rows[0][0].clone();
    assert_eq!(plan_before, Value::Text("SCAN t".into()));
    // ...and DDL bumps the catalog generation, so the same cached text
    // replans onto the new index.
    y.execute("CREATE INDEX t_by_a ON t (a)", &[]).unwrap();
    let plan_after = y.execute(explain_sql, &[]).unwrap().rows[0][0].clone();
    assert_eq!(
        plan_after,
        Value::Text("INDEX t USING t_by_a (eq=1) covering".into())
    );
    // And the cached data statement keeps answering correctly.
    assert_eq!(y.execute(sql, &[Value::Int(4)]).unwrap().rows.len(), 4);
}

#[test]
fn query_streams_rows_lazily() {
    let y = wiki_fixture();
    let stats = y.db().stats();
    y.execute("SELECT id FROM pages", &[]).unwrap();

    // Pull three rows of an unbounded ordered query, then drop the
    // iterator: only the pulled prefix is ever read from storage.  The
    // stream yields typed rows, so the prefix reads by column name.
    let before = stats.counter("sql.rows_scanned").get();
    let mut rows = y
        .query("SELECT id, title FROM pages ORDER BY id", &[])
        .unwrap();
    assert_eq!(rows.columns(), &["id".to_string(), "title".to_string()]);
    let got: Vec<(i64, String)> = rows
        .by_ref()
        .take(3)
        .map(|r| {
            let r = r.unwrap();
            (
                r.get::<i64>("id").unwrap(),
                r.get::<String>("title").unwrap(),
            )
        })
        .collect();
    assert_eq!(
        got,
        vec![
            (1, "page-00".to_string()),
            (2, "page-01".to_string()),
            (3, "page-02".to_string()),
        ]
    );
    drop(rows);
    let scanned = stats.counter("sql.rows_scanned").get() - before;
    assert!(
        scanned <= 4,
        "pulling 3 rows must not scan the table ({scanned} scanned)"
    );

    // Draining matches execute() and commits cleanly.
    let all: Result<Vec<_>, _> = y.query("SELECT id FROM pages", &[]).unwrap().collect();
    assert_eq!(all.unwrap().len(), 50);

    // query() rejects DML.
    assert!(y.query("DELETE FROM pages", &[]).is_err());
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);

    // Inside an explicit transaction the iterator still works (collected) —
    // and DML through query() is rejected there too, without executing.
    let s = y.new_session().unwrap();
    s.execute("BEGIN", &[]).unwrap();
    let n = s.query("SELECT id FROM pages", &[]).unwrap().count();
    assert_eq!(n, 50);
    assert!(s.query("DELETE FROM pages", &[]).is_err());
    assert!(s.in_transaction(), "a rejected query() must not abort");
    assert_eq!(s.query("SELECT id FROM pages", &[]).unwrap().count(), 50);
    s.execute("COMMIT", &[]).unwrap();
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);
}

#[test]
fn prepared_reexecution_does_zero_parse_and_zero_plan_work() {
    let y = wiki_fixture();
    let stats = y.db().stats();

    let by_title = y
        .prepare("SELECT id, views FROM pages WHERE title = ?")
        .unwrap();
    // One warm-up execution, then measure: N re-executions with fresh
    // parameters must not parse or plan anything.
    by_title.execute(params!["page-00"]).unwrap();
    let parses = stats.counter("sql.parses").get();
    let plans = stats.counter("sql.plans").get();
    for i in 0..20i64 {
        let rs = by_title.execute(params![format!("page-{i:02}")]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(i + 1), Value::Int(i * 10)]]);
    }
    assert_eq!(
        stats.counter("sql.parses").get(),
        parses,
        "prepared re-execution must not parse"
    );
    assert_eq!(
        stats.counter("sql.plans").get(),
        plans,
        "prepared re-execution must not plan"
    );

    // The streaming query path through the same handle is also plan-free.
    let n = by_title.query(params!["page-07"]).unwrap().count();
    assert_eq!(n, 1);
    assert_eq!(stats.counter("sql.parses").get(), parses);
    assert_eq!(stats.counter("sql.plans").get(), plans);
}

#[test]
fn prepared_handle_replans_after_ddl() {
    let y = Yesquel::open(2);
    y.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INT, b TEXT)",
        &[],
    )
    .unwrap();
    for i in 0..20i64 {
        y.execute(
            "INSERT INTO t (a, b) VALUES (?, ?)",
            params![i % 5, format!("b{i}")],
        )
        .unwrap();
    }

    let by_a = y.prepare("SELECT id FROM t WHERE a = ?").unwrap();
    assert_eq!(by_a.describe().unwrap(), "SCAN t");
    assert_eq!(by_a.execute(params![3]).unwrap().rows.len(), 4);

    // DDL bumps the catalog generation: the pinned plan is stale and the
    // handle replans (from the retained AST — no reparse) onto the index.
    y.execute("CREATE INDEX t_by_a ON t (a)", &[]).unwrap();
    let stats = y.db().stats();
    let parses = stats.counter("sql.parses").get();
    assert_eq!(
        by_a.describe().unwrap(),
        "INDEX t USING t_by_a (eq=1) covering"
    );
    assert_eq!(by_a.execute(params![3]).unwrap().rows.len(), 4);
    assert_eq!(
        stats.counter("sql.parses").get(),
        parses,
        "replanning must not reparse"
    );
    // EXPLAIN through the ad-hoc path agrees with the handle.
    let rs = y
        .execute("EXPLAIN SELECT id FROM t WHERE a = ?", &[])
        .unwrap();
    assert_eq!(
        rs.rows[0][0],
        Value::Text("INDEX t USING t_by_a (eq=1) covering".into())
    );
}

#[test]
fn named_and_numbered_placeholders_bind() {
    let y = wiki_fixture();

    // :name placeholders, bound by name in any order; :lo appears once in
    // the table even though the WHERE uses distinct names.
    let window = y
        .prepare("SELECT title, views FROM pages WHERE views >= :lo AND views < :hi ORDER BY views")
        .unwrap();
    assert_eq!(window.param_count(), 2);
    let rs = window
        .execute_named(&[(":hi", Value::Int(130)), (":lo", Value::Int(100))])
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][1], Value::Int(100));
    // Positional binding fills named slots in declaration order.
    let rs = window.execute(params![100, 130]).unwrap();
    assert_eq!(rs.rows.len(), 3);

    // A repeated :name binds one slot that feeds both uses.
    let eq = y
        .prepare("SELECT id FROM pages WHERE views >= :v AND views <= :v")
        .unwrap();
    assert_eq!(eq.param_count(), 1);
    let rs = eq.execute_named(&[("v", Value::Int(110))]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(12)]]);

    // ?NNN placeholders bind by number, here deliberately reversed.
    let rs = y
        .execute(
            "SELECT title FROM pages WHERE views >= ?2 AND views < ?1",
            params![120, 100],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);

    // Named placeholders work through the ad-hoc text path too (positional
    // values fill the slots).
    let rs = y
        .execute("SELECT id FROM pages WHERE title = :t", params!["page-04"])
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(5)]]);

    // EXPLAIN never evaluates parameters: unbound slots are fine through
    // both binding styles, but a misspelled name still errors.
    let p = y
        .prepare("EXPLAIN SELECT id FROM pages WHERE views = :v")
        .unwrap();
    assert!(p.execute(&[]).is_ok());
    assert!(p.execute_named(&[]).is_ok());
    assert!(p.execute_named(&[(":v", Value::Int(1))]).is_ok());
    assert!(matches!(
        p.execute_named(&[(":typo", Value::Null)]),
        Err(Error::Bind(_))
    ));
}

#[test]
fn bind_errors_surface_before_execution() {
    let y = wiki_fixture();

    // Arity mismatch on the ad-hoc path: too few and too many.
    for params in [&[][..], params![1, 2]] {
        let err = y
            .execute("SELECT id FROM pages WHERE id = ?", params)
            .unwrap_err();
        assert!(matches!(err, Error::Bind(_)), "{err}");
    }
    // Arity is also checked on the streaming path.
    let err = y
        .query("SELECT id FROM pages WHERE id = ?", &[])
        .unwrap_err();
    assert!(matches!(err, Error::Bind(_)), "{err}");

    // Unknown :name.
    let p = y.prepare("SELECT id FROM pages WHERE views = :v").unwrap();
    let err = p.execute_named(&[(":nope", Value::Int(1))]).unwrap_err();
    assert!(matches!(err, Error::Bind(_)), "{err}");
    // Unbound :name.
    let err = p.execute_named(&[]).unwrap_err();
    assert!(matches!(err, Error::Bind(_)), "{err}");

    // Mixing named and positional placeholders is rejected at parse.
    let err = y
        .execute(
            "SELECT id FROM pages WHERE views = :v AND id = ?",
            params![1, 2],
        )
        .unwrap_err();
    assert!(matches!(err, Error::Bind(_)), "{err}");
    // Out-of-range parameter number.
    let err = y.prepare("SELECT id FROM pages WHERE id = ?0").unwrap_err();
    assert!(matches!(err, Error::Bind(_)), "{err}");

    // A bind failure executes nothing (the table is intact and usable).
    assert_eq!(rows_i64(&y, "SELECT id FROM pages").len(), 50);
}

#[test]
fn typed_row_access() {
    let y = wiki_fixture();
    let rs = y
        .execute(
            "SELECT id, title, views, body FROM pages WHERE id = ?",
            params![8],
        )
        .unwrap();

    assert_eq!(rs.column_index("views"), Some(2));
    assert_eq!(rs.column_index("VIEWS"), Some(2));
    assert_eq!(rs.column_index("nope"), None);

    let row = rs.iter().next().unwrap();
    assert_eq!(row.get::<i64>("id").unwrap(), 8);
    assert_eq!(row.get::<&str>("title").unwrap(), "page-07");
    assert_eq!(row.get::<i64>("views").unwrap(), 70);
    assert_eq!(row.get_at::<&str>(1).unwrap(), "page-07");
    assert_eq!(row.get::<Option<i64>>("views").unwrap(), Some(70));
    // Type mismatches and unknown columns are bind errors, not panics.
    assert!(matches!(row.get::<i64>("title"), Err(Error::Bind(_))));
    assert!(matches!(row.get::<&str>("nope"), Err(Error::Bind(_))));

    // NULL reads as None through Option.
    y.execute("INSERT INTO pages (title) VALUES ('untitled')", &[])
        .unwrap();
    let rs = y
        .execute(
            "SELECT views FROM pages WHERE title = ?",
            params!["untitled"],
        )
        .unwrap();
    let row = rs.iter().next().unwrap();
    assert_eq!(row.get::<Option<i64>>("views").unwrap(), None);
    assert!(matches!(row.get::<i64>("views"), Err(Error::Bind(_))));

    // The consuming iterator hands out the same typed rows.
    let total: i64 = y
        .execute("SELECT id, views FROM pages WHERE views < 30", &[])
        .unwrap()
        .into_iter()
        .map(|r| r.get::<i64>("views").unwrap())
        .sum();
    assert_eq!(total, 30); // views 0 + 10 + 20
}

#[test]
fn stale_statement_cache_entries_are_swept() {
    let y = Yesquel::open(2);
    y.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, a INT)", &[])
        .unwrap();
    let stats = y.db().stats();

    // Populate the cache with several distinct statement texts.
    for i in 0..6i64 {
        y.execute(&format!("SELECT id FROM s WHERE a = {i}"), &[])
            .unwrap();
    }
    let resident = y.session().stmt_cache_len();
    assert!(
        resident >= 6,
        "expected ≥6 cached statements, got {resident}"
    );

    // DDL bumps the catalog generation: every resident entry is dead.  The
    // next probe (any text) sweeps them all instead of leaving them
    // resident until individually re-probed.
    y.execute("CREATE TABLE s2 (id INTEGER PRIMARY KEY)", &[])
        .unwrap();
    let evictions = stats.counter("sql.stmt_cache_evictions").get();
    y.execute("SELECT id FROM s WHERE a = 0", &[]).unwrap();
    let swept = stats.counter("sql.stmt_cache_evictions").get() - evictions;
    assert!(swept >= resident as u64, "swept only {swept} of {resident}");
    // The probed statement was re-planned and re-cached; the other stale
    // texts are gone.
    assert!(
        y.session().stmt_cache_len() <= 2,
        "stale entries still resident: {}",
        y.session().stmt_cache_len()
    );
}

#[test]
fn autocommit_statements_retry_conflicts_to_success() {
    use std::sync::Arc;
    let y = Arc::new(Yesquel::open(4));
    y.execute("CREATE TABLE c (id INTEGER PRIMARY KEY, n INT)", &[])
        .unwrap();
    y.execute("INSERT INTO c VALUES (1, 0)", &[]).unwrap();
    // Hammer one row from several threads; every increment must stick.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let y = Arc::clone(&y);
            std::thread::spawn(move || {
                let s = y.new_session().unwrap();
                for _ in 0..25 {
                    s.execute("UPDATE c SET n = n + 1 WHERE id = 1", &[])
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(rows_i64(&y, "SELECT n FROM c"), vec![vec![100]]);
}
