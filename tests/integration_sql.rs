//! Integration tests of the SQL front end: tokenizer + parser round trips
//! over representative statements.  (Query execution over the DBT arrives
//! with the executor; the catalog is unit-tested in `yesquel-sql`.)

use yesquel::sql::{parse, parse_script, Statement};

#[test]
fn parses_ddl_dml_and_queries() {
    assert!(matches!(
        parse("CREATE TABLE users (id INT PRIMARY KEY, name TEXT, score FLOAT)").unwrap(),
        Statement::CreateTable(_)
    ));
    assert!(matches!(
        parse("INSERT INTO users (id, name) VALUES (1, 'alice'), (2, 'bob')").unwrap(),
        Statement::Insert(_)
    ));
    assert!(matches!(
        parse("SELECT name, score FROM users WHERE id = 1").unwrap(),
        Statement::Select(_)
    ));
    assert!(matches!(
        parse("UPDATE users SET score = score + 1 WHERE name = 'alice'").unwrap(),
        Statement::Update(_)
    ));
    assert!(matches!(
        parse("DELETE FROM users WHERE id = 2").unwrap(),
        Statement::Delete(_)
    ));
}

#[test]
fn scripts_split_on_semicolons() {
    let stmts = parse_script(
        "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t WHERE a > 0;",
    )
    .unwrap();
    assert_eq!(stmts.len(), 3);
}

#[test]
fn malformed_statements_are_rejected() {
    for bad in [
        "SELECT FROM t",
        "SELEC 1",
        "INSERT INTO t VALUES",
        "CREATE TABLE",
    ] {
        assert!(parse(bad).is_err(), "{bad:?} should not parse");
    }
}
