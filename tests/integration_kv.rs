//! Integration tests of the transactional key-value store, exercised
//! through the public `yesquel` facade: snapshot isolation, the
//! first-committer-wins rule, one-phase vs two-phase commit, and the
//! no-communication read-only commit.

use yesquel::{Error, KvDatabase, ObjectId};

fn obj(oid: u64) -> ObjectId {
    ObjectId::new(1, oid)
}

#[test]
fn snapshot_isolation_holds_across_concurrent_commit() {
    let db = KvDatabase::with_servers(4);
    let client = db.client();

    let setup = client.begin();
    setup.put(obj(1), b"v1".to_vec()).unwrap();
    setup.commit().unwrap();

    let reader = client.begin();
    assert_eq!(reader.get(obj(1)).unwrap().as_deref(), Some(&b"v1"[..]));

    let writer = client.begin();
    writer.put(obj(1), b"v2".to_vec()).unwrap();
    writer.commit().unwrap();

    // The reader's snapshot must not observe the later commit.
    assert_eq!(reader.get(obj(1)).unwrap().as_deref(), Some(&b"v1"[..]));
    reader.commit().unwrap();

    let fresh = client.begin();
    assert_eq!(fresh.get(obj(1)).unwrap().as_deref(), Some(&b"v2"[..]));
    fresh.commit().unwrap();
}

#[test]
fn first_committer_wins_second_aborts() {
    let db = KvDatabase::with_servers(4);
    let client = db.client();

    let a = client.begin();
    let b = client.begin();
    a.put(obj(2), b"from-a".to_vec()).unwrap();
    b.put(obj(2), b"from-b".to_vec()).unwrap();
    a.commit().unwrap();
    match b.commit() {
        Err(Error::Conflict(_)) => {}
        other => panic!("second committer must conflict, got {other:?}"),
    }

    let check = client.begin();
    assert_eq!(check.get(obj(2)).unwrap().as_deref(), Some(&b"from-a"[..]));
    check.commit().unwrap();
}

#[test]
fn single_server_transactions_use_one_phase_commit() {
    let db = KvDatabase::with_servers(4);
    let client = db.client();
    let before_1pc = db.stats().counter("kv.commit_1pc").get();
    let before_2pc = db.stats().counter("kv.commit_2pc").get();

    // One object -> exactly one participant server.
    let t = client.begin();
    t.put(obj(3), b"single".to_vec()).unwrap();
    t.commit().unwrap();

    assert_eq!(db.stats().counter("kv.commit_1pc").get(), before_1pc + 1);
    assert_eq!(db.stats().counter("kv.commit_2pc").get(), before_2pc);
    // A one-phase commit is a single RPC: no prepare recorded server-side.
    let prepares: u64 = db
        .cluster()
        .servers()
        .iter()
        .map(|s| s.store().stats().prepares)
        .sum();
    assert_eq!(prepares, 0);
}

#[test]
fn multi_server_transactions_use_two_phase_commit_atomically() {
    let db = KvDatabase::with_servers(4);
    let client = db.client();

    // Find one object per server so every server participates.
    let mut per_server: Vec<Option<ObjectId>> = vec![None; db.num_servers()];
    let mut oid = 100;
    while per_server.iter().any(Option::is_none) {
        let o = obj(oid);
        let s = o.home_server(db.num_servers());
        per_server[s].get_or_insert(o);
        oid += 1;
    }

    let before_2pc = db.stats().counter("kv.commit_2pc").get();
    let t = client.begin();
    for o in per_server.iter().flatten() {
        t.put(*o, b"spread".to_vec()).unwrap();
    }
    t.commit().unwrap();
    assert_eq!(db.stats().counter("kv.commit_2pc").get(), before_2pc + 1);

    // Atomic: every write is visible, and every server prepared exactly once.
    let r = client.begin();
    for o in per_server.iter().flatten() {
        assert_eq!(r.get(*o).unwrap().as_deref(), Some(&b"spread"[..]));
    }
    r.commit().unwrap();
    for s in db.cluster().servers() {
        assert_eq!(s.store().stats().prepares, 1);
        assert_eq!(s.store().stats().commits, 1);
    }
}

#[test]
fn read_only_commit_needs_no_communication() {
    let db = KvDatabase::with_servers(4);
    let client = db.client();
    let setup = client.begin();
    setup.put(obj(5), b"x".to_vec()).unwrap();
    setup.commit().unwrap();

    let t = client.begin();
    let _ = t.get(obj(5)).unwrap();
    let rpcs_before = db.stats().counter("rpc.calls").get();
    t.commit().unwrap();
    assert_eq!(
        db.stats().counter("rpc.calls").get(),
        rpcs_before,
        "read-only commit must not issue RPCs"
    );
    assert_eq!(db.stats().counter("kv.readonly_commits").get(), 1);
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let db = KvDatabase::with_servers(2);
    let client = db.client();
    let t = client.begin();
    t.put(obj(6), b"ghost".to_vec()).unwrap();
    t.abort();
    let r = client.begin();
    assert_eq!(r.get(obj(6)).unwrap(), None);
    r.commit().unwrap();
    assert_eq!(db.total_objects(), 0);
}
