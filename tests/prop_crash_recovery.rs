//! Seeded kill-and-restart storm over durable storage servers: every server
//! logs to a per-server write-ahead log (group-commit fsync policy) and runs
//! under an **amnesia** fault plan — a crash drops all volatile state, and
//! the restart hook rebuilds the store by replaying the log's clean prefix,
//! exactly as a killed process would on a real machine.
//!
//! On top of the fault storm of `prop_chaos_commit` (drops, duplicates,
//! transient errors, a scripted crash-looper), the driver periodically
//! kill-restarts random servers mid-run and checkpoints others, then ends
//! with a full-cluster kill: every server loses its memory at once and comes
//! back from its log alone.  The invariant checked throughout is
//! **committed iff acknowledged**:
//!
//! * every commit acknowledged to the client survives every restart — the
//!   primary still reports `Committed` at the reported timestamp, all
//!   participants agree, and the version chains contain exactly the
//!   acknowledged writes (no loss, no double-apply, no phantoms);
//! * every transaction reported cleanly as not-applied committed nowhere;
//! * in-doubt transactions resolve to exactly one fate, decided by the
//!   primary, even when the deciding state was itself recovered from a log.
//!
//! All randomness flows from the per-case seed, so a failure reproduces.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::common::tempdir::TempDir;
use yesquel::common::WalFsyncPolicy;
use yesquel::kv::store::TxnOutcome;
use yesquel::rpc::{FaultPlan, TransportKind};
use yesquel::{Error, KvConfig, KvDatabase, ObjectId, YesquelConfig};

const SERVERS: usize = 4;
const KEYS: usize = 24;
const TXNS: usize = 220;
/// Every this many transactions the driver kills and restarts one random
/// server and checkpoints another.
const RESTART_EVERY: usize = 45;

type VersionHistory = Vec<(u64, Option<Vec<u8>>)>;

/// What the client was told about a transaction.
#[derive(Debug, Clone, PartialEq)]
enum Reported {
    Committed(u64),
    /// Conflict or clean unavailability: guaranteed not applied.
    NotApplied,
    /// Timeout / indeterminate: only the primary knows.
    Maybe,
}

#[derive(Debug)]
struct TxnRecord {
    id: u64,
    writes: Vec<(ObjectId, Option<Vec<u8>>)>,
    reported: Reported,
}

fn key_pool() -> Vec<ObjectId> {
    (0..KEYS as u64).map(|o| ObjectId::new(1, o)).collect()
}

fn keys_by_server(keys: &[ObjectId]) -> Vec<Vec<ObjectId>> {
    let mut by = vec![Vec::new(); SERVERS];
    for &k in keys {
        by[k.home_server(SERVERS)].push(k);
    }
    by
}

fn participants(writes: &[(ObjectId, Option<Vec<u8>>)]) -> Vec<usize> {
    let mut ps: Vec<usize> = writes.iter().map(|(o, _)| o.home_server(SERVERS)).collect();
    ps.sort_unstable();
    ps.dedup();
    ps
}

/// After a restart of `server`, every commit previously acknowledged whose
/// primary is that server must still be known-committed there: the commit
/// record was durable before the ack, so amnesia cannot erase it.
fn assert_acks_survived(db: &KvDatabase, records: &[TxnRecord], server: usize, seed: u64) {
    let servers = db.cluster().servers();
    for rec in records {
        if let Reported::Committed(ts) = rec.reported {
            let primary = participants(&rec.writes)[0];
            if primary != server {
                continue;
            }
            assert_eq!(
                servers[primary].store().outcome(rec.id),
                Some(TxnOutcome::Committed(ts)),
                "seed {seed}: restart of server {server} lost acknowledged txn {}",
                rec.id
            );
        }
    }
}

fn recovery_case(seed: u64) {
    let mut rng = seeded_rng(seed, 1);
    let tmp = TempDir::new("yesquel-crash-recovery").unwrap();
    let mut cfg = YesquelConfig::with_servers(SERVERS);
    cfg.kv = KvConfig::impatient();
    cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
    cfg.kv.wal_fsync = WalFsyncPolicy::Group { window_us: 50 };

    // Every server weathers the same storm under an amnesia plan; one
    // additionally crash-loops on a scripted schedule, losing its memory on
    // every scripted recovery.
    let mut plans: Vec<FaultPlan> = (0..SERVERS)
        .map(|_| FaultPlan {
            amnesia: true,
            ..FaultPlan::storm(seed)
        })
        .collect();
    let looper = rng.gen_range(0..SERVERS as u64) as usize;
    plans[looper].crash_after_requests = Some(rng.gen_range(40..80));
    plans[looper].restart_after_rejects = Some(rng.gen_range(4..12));

    let db = KvDatabase::with_faults(cfg, TransportKind::Direct, plans);
    let faults = Arc::clone(db.faults().unwrap());
    let client = db.client();
    let keys = key_pool();
    let by_server = keys_by_server(&keys);

    let mut records: Vec<TxnRecord> = Vec::new();
    let mut restarts = 0u64;
    let mut checkpoints = 0u64;

    for i in 0..TXNS {
        if i > 0 && i % RESTART_EVERY == 0 {
            // Kill-restart one random server: volatile state gone, store
            // rebuilt from its log.  Acknowledged commits must survive.
            let victim = rng.gen_range(0..SERVERS as u64) as usize;
            faults.crash(victim);
            faults.restart(victim);
            restarts += 1;
            assert_acks_survived(&db, &records, victim, seed);
            // And checkpoint another, so recovery sometimes starts from a
            // checkpoint segment instead of a full replay.
            let ckpt = rng.gen_range(0..SERVERS as u64) as usize;
            db.cluster().servers()[ckpt].checkpoint().unwrap();
            checkpoints += 1;
        }

        // Mixed workload: one-phase (single-server) or two-phase writes,
        // with occasional deletes, mirroring the chaos commit test.
        let kind = rng.gen_range(0..10u32);
        let writes: Vec<(ObjectId, Option<Vec<u8>>)> = if kind < 5 {
            let s = rng.gen_range(0..SERVERS as u64) as usize;
            let n = rng.gen_range(1..=3u64) as usize;
            (0..n)
                .map(|j| {
                    let k = by_server[s][rng.gen_range(0..by_server[s].len() as u64) as usize];
                    let del = rng.gen_bool(0.1);
                    (k, (!del).then(|| format!("s{seed}-t{i}-{j}").into_bytes()))
                })
                .collect()
        } else {
            let n = rng.gen_range(2..=4u64) as usize;
            (0..n)
                .map(|j| {
                    let k = keys[rng.gen_range(0..KEYS as u64) as usize];
                    let del = rng.gen_bool(0.1);
                    (k, (!del).then(|| format!("s{seed}-t{i}-{j}").into_bytes()))
                })
                .collect()
        };
        let mut dedup: HashMap<ObjectId, Option<Vec<u8>>> = HashMap::new();
        for (k, v) in writes {
            dedup.insert(k, v);
        }
        let writes: Vec<_> = dedup.into_iter().collect();

        let t = client.begin();
        let mut write_failed = false;
        for (k, v) in &writes {
            let r = match v {
                Some(bytes) => t.put(*k, bytes.clone()),
                None => t.delete(*k),
            };
            if r.is_err() {
                write_failed = true;
                break;
            }
        }
        if write_failed {
            t.abort();
            continue;
        }
        let id = t.id();
        let reported = match t.commit() {
            Ok(ts) => Reported::Committed(ts),
            Err(Error::Conflict(_)) | Err(Error::Unavailable(_)) => Reported::NotApplied,
            Err(Error::Indeterminate(_)) | Err(Error::Timeout(_)) => Reported::Maybe,
            Err(e) => panic!("seed {seed}: unexpected commit error: {e:?}"),
        };
        records.push(TxnRecord {
            id,
            writes,
            reported,
        });
    }

    assert!(
        faults.faults_injected() > 0,
        "seed {seed}: the storm never injected anything"
    );
    let wal = |n: &str| db.stats().counter(&format!("wal.{n}")).get();
    assert!(wal("appends") > 0, "seed {seed}: nothing was ever logged");
    assert!(wal("fsyncs") > 0, "seed {seed}: nothing was ever synced");

    // The full-cluster kill: every server loses its volatile memory at once
    // and comes back from its write-ahead log alone.
    for server in 0..SERVERS {
        faults.crash(server);
        faults.restart(server);
        assert_acks_survived(&db, &records, server, seed);
    }
    assert!(
        wal("recovered_txns") > 0,
        "seed {seed}: full-cluster restart recovered no transactions"
    );

    // Heal and let the reaper resolve whatever came back prepared (its
    // coordinator is long gone; recovered prepares carry a fresh lease).
    faults.heal_all();
    for _ in 0..50 {
        if db.prepared_total() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        db.reap_all();
    }
    assert_eq!(
        db.prepared_total(),
        0,
        "seed {seed}: prepared state survived recovery + heal + reap"
    );

    {
        let (na, mb, ok) = records
            .iter()
            .fold((0, 0, 0), |(a, m, o), r| match r.reported {
                Reported::NotApplied => (a + 1, m, o),
                Reported::Maybe => (a, m + 1, o),
                Reported::Committed(_) => (a, m, o + 1),
            });
        eprintln!(
            "seed {seed}: ok={ok} notapplied={na} maybe={mb} restarts={restarts} \
             checkpoints={checkpoints} appends={} fsyncs={} recovered={}",
            wal("appends"),
            wal("fsyncs"),
            wal("recovered_txns"),
        );
    }

    // Ground truth from the primary participant, with every participant in
    // agreement — all of it reconstructed from the logs.
    let servers = db.cluster().servers();
    let mut actually_committed: Vec<(&TxnRecord, u64)> = Vec::new();
    for rec in &records {
        let ps = participants(&rec.writes);
        let primary = ps[0];
        let primary_outcome = servers[primary].store().outcome(rec.id);
        let actual_ts = match (&rec.reported, primary_outcome) {
            (Reported::Committed(ts), Some(TxnOutcome::Committed(actual))) => {
                assert_eq!(
                    actual, *ts,
                    "seed {seed}: txn {} recovered at a different timestamp than acknowledged",
                    rec.id
                );
                Some(*ts)
            }
            (Reported::Committed(ts), other) => panic!(
                "seed {seed}: txn {} was acknowledged at {ts} but after recovery \
                 the primary says {other:?}",
                rec.id
            ),
            (Reported::NotApplied, Some(TxnOutcome::Committed(ts))) => panic!(
                "seed {seed}: txn {} was reported not-applied but committed at {ts}",
                rec.id
            ),
            (Reported::NotApplied, _) => None,
            (Reported::Maybe, Some(TxnOutcome::Committed(ts))) => Some(ts),
            (Reported::Maybe, _) => None,
        };
        match actual_ts {
            Some(ts) => {
                for &p in &ps {
                    assert_eq!(
                        servers[p].store().outcome(rec.id),
                        Some(TxnOutcome::Committed(ts)),
                        "seed {seed}: participant {p} of txn {} disagrees with its primary \
                         after recovery",
                        rec.id
                    );
                }
                actually_committed.push((rec, ts));
            }
            None => {
                for &p in &ps {
                    assert!(
                        !matches!(
                            servers[p].store().outcome(rec.id),
                            Some(TxnOutcome::Committed(_))
                        ),
                        "seed {seed}: txn {} aborted at its primary but committed at {p}",
                        rec.id
                    );
                }
            }
        }
    }

    // No loss, no double-apply, no phantoms: each object's recovered version
    // chain equals, as a multiset, the writes of the transactions that
    // actually committed to it.
    let mut expected: HashMap<ObjectId, VersionHistory> = HashMap::new();
    for (rec, ts) in &actually_committed {
        for (k, v) in &rec.writes {
            expected.entry(*k).or_default().push((*ts, v.clone()));
        }
    }
    for &k in &keys {
        let store = servers[k.home_server(SERVERS)].store();
        let mut got: VersionHistory = store
            .dump_versions(k)
            .into_iter()
            .map(|(ts, v)| (ts, v.map(|b| b.to_vec())))
            .collect();
        got.sort();
        let mut want = expected.remove(&k).unwrap_or_default();
        want.sort();
        assert_eq!(
            got, want,
            "seed {seed}: recovered version chain of {k} diverges from the committed history"
        );
    }

    // Epilogue: a fresh reader sees the newest actually-committed write.
    let t = client.begin();
    for &k in &keys {
        let winner = actually_committed
            .iter()
            .flat_map(|(rec, ts)| {
                rec.writes
                    .iter()
                    .filter(|(o, _)| *o == k)
                    .map(move |(_, v)| (*ts, v.clone()))
            })
            .max_by_key(|(ts, _)| *ts);
        let visible = t.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(
            visible,
            winner.and_then(|(_, v)| v),
            "seed {seed}: final read of {k} is not the newest committed write"
        );
    }
    t.commit().unwrap();
}

#[test]
fn crash_recovery_seed_matrix() {
    // The CI recovery job pins RECOVERY_SEED to fan the matrix out across
    // jobs; locally all seeds run in sequence.
    if let Ok(seed) = std::env::var("RECOVERY_SEED") {
        recovery_case(seed.parse().expect("RECOVERY_SEED must be a u64"));
        return;
    }
    for seed in [11, 23, 47, 101, 907] {
        recovery_case(seed);
    }
}
