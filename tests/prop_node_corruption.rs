//! Robustness of the node page codec against corrupt input.
//!
//! Node pages travel through the key-value store and (in a real deployment)
//! the network, so the decoder must treat every byte as hostile: truncated
//! buffers, out-of-range directory offsets, overlapping cells and garbage
//! tags must all surface as `Err(Corruption)` — never a panic or an
//! out-of-bounds read.  The randomized sections byte-flip and truncate
//! valid encodings and then exercise **every** accessor of the resulting
//! views; a flip that happens to leave the page well-formed is fine (the
//! data is simply different), a panic is a bug.

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use yesquel::common::{Error, Result};
use yesquel::ydbt::{Bound, InnerNode, LeafNode, Node, NodeView};

/// A spread of leaf shapes: empty, single-cell, empty keys/values, many
/// cells, finite and infinite fences, with and without a sibling.
fn sample_leaves() -> Vec<LeafNode> {
    let mut many = LeafNode {
        lower: Bound::key(b"k000"),
        upper: Bound::key(b"k999"),
        cells: Vec::new(),
        next: Some(4242),
        replicas: vec![11, 12],
    };
    for i in 0..64 {
        many.insert_cell(
            format!("k{:03}", i * 7).as_bytes(),
            Bytes::from(vec![i as u8; (i % 13) as usize]),
        );
    }
    vec![
        LeafNode::empty_root(),
        LeafNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            cells: vec![(Bytes::from_static(b""), Bytes::from_static(b""))],
            next: None,
            replicas: vec![],
        },
        LeafNode {
            lower: Bound::key(b"a"),
            upper: Bound::PosInf,
            cells: vec![
                (Bytes::from_static(b"a"), Bytes::from_static(b"1")),
                (Bytes::from_static(b"b"), Bytes::from_static(b"")),
                (Bytes::from_static(b"c"), Bytes::from_static(b"333")),
            ],
            next: Some(7),
            replicas: vec![],
        },
        many,
    ]
}

fn sample_inners() -> Vec<InnerNode> {
    vec![
        InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: Vec::new(),
            children: vec![9],
            height: 1,
            replicas: vec![],
        },
        InnerNode {
            lower: Bound::key(b"g"),
            upper: Bound::key(b"zz"),
            keys: vec![Bytes::from_static(b"m")],
            children: vec![1, 2],
            height: 3,
            replicas: vec![77],
        },
        InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: (1..64).map(|i| Bytes::from(format!("s{i:03}"))).collect(),
            children: (0..64u64).collect(),
            height: 1,
            replicas: vec![],
        },
    ]
}

/// Drives every accessor of a parsed view.  Errors are fine (and expected
/// for corrupt pages); panics and out-of-bounds reads are what this guards
/// against.
fn exercise(page: &[u8]) -> Result<()> {
    let view = NodeView::parse(Bytes::copy_from_slice(page))?;
    match view {
        NodeView::Leaf(l) => {
            l.fence_contains(b"");
            l.fence_contains(b"k050");
            l.next();
            for i in 0..l.len() {
                l.cell(i)?;
                l.cell_bytes(i)?;
            }
            l.find(b"k014")?;
            l.find(b"")?;
            l.lower_bound(b"k")?;
            l.to_leaf_node()?;
        }
        NodeView::Inner(i) => {
            i.fence_contains(b"m");
            i.height();
            if !i.is_empty() {
                i.first_child();
            }
            i.child_for(b"")?;
            i.child_for(b"s031")?;
            i.child_for(b"zzz")?;
            i.to_inner_node()?;
        }
    }
    // The materialising decoder must be exactly as robust.
    Node::decode(page)?;
    Ok(())
}

fn assert_corruption(r: Result<()>, what: &str) {
    match r {
        Err(Error::Corruption(_)) => {}
        Err(other) => panic!("{what}: expected Corruption, got {other:?}"),
        Ok(()) => panic!("{what}: corrupt page decoded successfully"),
    }
}

#[test]
fn valid_encodings_roundtrip() {
    for leaf in sample_leaves() {
        let node = Node::Leaf(leaf);
        let buf = node.encode();
        exercise(&buf).expect("valid leaf must decode");
        assert_eq!(Node::decode(&buf).unwrap(), node);
    }
    for inner in sample_inners() {
        let node = Node::Inner(inner);
        let buf = node.encode();
        exercise(&buf).expect("valid inner must decode");
        assert_eq!(Node::decode(&buf).unwrap(), node);
    }
}

#[test]
fn garbage_tags_rejected() {
    let mut buf = Node::Leaf(sample_leaves().pop().unwrap()).encode();
    for tag in [0x00u8, 0x01, 0x7f, 0xd1, 0xd2, 0xff] {
        buf[0] = tag;
        assert_corruption(exercise(&buf), &format!("tag 0x{tag:02x}"));
    }
}

#[test]
fn every_truncation_errors_or_decodes_cleanly() {
    // Chopping a valid page at any length must never panic; any successful
    // parse must also survive full accessor exercise.
    let pages: Vec<Vec<u8>> = sample_leaves()
        .into_iter()
        .map(|l| Node::Leaf(l).encode())
        .chain(sample_inners().into_iter().map(|i| Node::Inner(i).encode()))
        .collect();
    for page in pages {
        for cut in 0..page.len() {
            let _ = exercise(&page[..cut]);
        }
    }
}

#[test]
fn out_of_range_directory_offsets_rejected() {
    // Leaf directory entries start at byte 14 (tag 1 + flags 1 + next 8 +
    // ncells 4); each is a big-endian u32 absolute offset.
    const LEAF_DIR_START: usize = 14;
    let leaf = Node::Leaf(sample_leaves().pop().unwrap());
    let good = leaf.encode();
    for (i, bad_off) in [(0usize, u32::MAX), (1, 0), (5, u32::MAX - 7)] {
        let mut bad = good.clone();
        let at = LEAF_DIR_START + 4 * i;
        bad[at..at + 4].copy_from_slice(&bad_off.to_be_bytes());
        assert_corruption(exercise(&bad), &format!("dir[{i}] = {bad_off}"));
    }
    // Inner directory entries start after the header (7 bytes) and the
    // fixed-width child array.
    let inner = sample_inners().pop().unwrap();
    let nchildren = inner.children.len();
    let good = Node::Inner(inner).encode();
    let dir_start = 7 + 8 * nchildren;
    let mut bad = good.clone();
    bad[dir_start..dir_start + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert_corruption(exercise(&bad), "inner dir[0] out of range");
}

#[test]
fn overlapping_cells_rejected() {
    // Shift a later directory entry so that the preceding cell's slot can
    // no longer hold the cell it frames: decode must report corruption.
    const LEAF_DIR_START: usize = 14;
    let good = Node::Leaf(LeafNode {
        lower: Bound::NegInf,
        upper: Bound::PosInf,
        cells: vec![
            (Bytes::from_static(b"aaaa"), Bytes::from_static(b"11111111")),
            (Bytes::from_static(b"bbbb"), Bytes::from_static(b"22222222")),
        ],
        next: None,
        replicas: vec![],
    })
    .encode();
    let off0 = u32::from_be_bytes(good[LEAF_DIR_START..LEAF_DIR_START + 4].try_into().unwrap());
    let mut bad = good;
    bad[LEAF_DIR_START + 4..LEAF_DIR_START + 8].copy_from_slice(&(off0 + 2).to_be_bytes());
    assert_corruption(exercise(&bad), "overlapping cells");
}

#[test]
fn random_byte_flips_never_panic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_c0de);
    let pages: Vec<Vec<u8>> = sample_leaves()
        .into_iter()
        .map(|l| Node::Leaf(l).encode())
        .chain(sample_inners().into_iter().map(|i| Node::Inner(i).encode()))
        .collect();
    for page in &pages {
        for _round in 0..2000 {
            let mut mutated = page.clone();
            // 1–4 random byte flips anywhere in the page.
            let flips = rng.gen_range(1usize..=4);
            for _ in 0..flips {
                let at = rng.gen_range(0usize..mutated.len());
                mutated[at] ^= 1 << rng.gen_range(0u32..8);
            }
            // Occasionally also truncate.
            if rng.gen_range(0u32..4) == 0 {
                let cut = rng.gen_range(0usize..=mutated.len());
                mutated.truncate(cut);
            }
            // Corruption errors are expected; panics are bugs.  A flip may
            // also leave a structurally valid page with different data —
            // exercise() walking it without panicking is the whole point.
            let _ = exercise(&mutated);
        }
    }
}

#[test]
fn random_multi_flip_storms_never_panic() {
    // Heavier damage: flip up to 32 bytes at once so whole header fields
    // (counts, offsets, flags) are scrambled.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xdead_beef);
    let base = Node::Leaf(sample_leaves().pop().unwrap()).encode();
    for _round in 0..5000 {
        let mut mutated = base.clone();
        for _ in 0..rng.gen_range(1usize..=32) {
            let at = rng.gen_range(0usize..mutated.len());
            mutated[at] = (rng.gen_range(0u32..256)) as u8;
        }
        let _ = exercise(&mutated);
    }
}
