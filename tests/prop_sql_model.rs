//! Randomized property test of the SQL executor: a deterministic stream of
//! random DML and queries runs both through `Yesquel::execute` and against a
//! plain in-memory model; results must match at every step.
//!
//! Queries are drawn so that every access path gets exercised — rowid point
//! reads, rowid ranges, secondary-index equality and range scans (the table
//! has a composite index on `(cat, score)`), covering scans, and full scans
//! with residual filters — and compared as ordered rows when the query has
//! a total ORDER BY, as multisets otherwise.  Aggregate queries (global,
//! GROUP BY cat streamed off the index, and the one-row bounded MIN/MAX
//! plans) are checked value-exactly against the model: generated scores are
//! integers or halves, so even float sums have one exact answer.
//!
//! Executions mix the ad-hoc text path with prepared handles re-executed
//! under varying parameters (positional and named), and a `CREATE INDEX`
//! lands mid-stream so every pinned and cached plan goes stale and must
//! replan without results moving.

use std::cmp::Ordering;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::sql::Value;
use yesquel::{params, Yesquel};

/// One row of the model: rowid plus the non-rowid columns.
#[derive(Debug, Clone)]
struct ModelRow {
    id: i64,
    cat: Value,
    score: Value,
    note: Value,
}

/// SQL comparison truth: NULL operands never satisfy a comparison.
fn cmp_true(a: &Value, op: &str, b: &Value) -> bool {
    let Some(ord) = a.compare(b) else {
        return false;
    };
    match op {
        "=" => ord == Ordering::Equal,
        "<" => ord == Ordering::Less,
        "<=" => ord != Ordering::Greater,
        ">" => ord == Ordering::Greater,
        ">=" => ord != Ordering::Less,
        _ => unreachable!(),
    }
}

/// The WHERE clauses the generator draws, mirrored on the model.
#[derive(Debug, Clone)]
enum Pred {
    All,
    IdEq(i64),
    IdRange(i64, i64),
    CatEq(Value),
    CatEqScoreRange(Value, i64, i64),
    ScoreGe(i64),
    NoteLike,
}

impl Pred {
    fn sql(&self) -> (String, Vec<Value>) {
        match self {
            Pred::All => (String::new(), vec![]),
            Pred::IdEq(i) => (" WHERE id = ?".into(), vec![Value::Int(*i)]),
            Pred::IdRange(a, b) => (
                " WHERE id >= ? AND id < ?".into(),
                vec![Value::Int(*a), Value::Int(*b)],
            ),
            Pred::CatEq(c) => (" WHERE cat = ?".into(), vec![c.clone()]),
            Pred::CatEqScoreRange(c, a, b) => (
                " WHERE cat = ? AND score BETWEEN ? AND ?".into(),
                vec![c.clone(), Value::Int(*a), Value::Int(*b)],
            ),
            Pred::ScoreGe(a) => (" WHERE score >= ?".into(), vec![Value::Int(*a)]),
            Pred::NoteLike => (" WHERE note LIKE 'n1%'".into(), vec![]),
        }
    }

    fn eval(&self, r: &ModelRow) -> bool {
        match self {
            Pred::All => true,
            Pred::IdEq(i) => r.id == *i,
            Pred::IdRange(a, b) => r.id >= *a && r.id < *b,
            Pred::CatEq(c) => cmp_true(&r.cat, "=", c),
            Pred::CatEqScoreRange(c, a, b) => {
                cmp_true(&r.cat, "=", c)
                    && cmp_true(&r.score, ">=", &Value::Int(*a))
                    && cmp_true(&r.score, "<=", &Value::Int(*b))
            }
            Pred::ScoreGe(a) => cmp_true(&r.score, ">=", &Value::Int(*a)),
            Pred::NoteLike => match &r.note {
                Value::Text(s) => s.to_ascii_lowercase().starts_with("n1"),
                _ => false,
            },
        }
    }
}

fn random_cat(rng: &mut impl Rng) -> Value {
    match rng.gen_range(0u32..10) {
        0 => Value::Null,
        n => Value::Text(format!("cat-{}", n % 4)),
    }
}

fn random_score(rng: &mut impl Rng) -> Value {
    match rng.gen_range(0u32..12) {
        0 => Value::Null,
        1 => Value::Real(rng.gen_range(0i64..40) as f64 + 0.5),
        _ => Value::Int(rng.gen_range(0i64..40)),
    }
}

fn random_pred(rng: &mut impl Rng, max_id: i64) -> Pred {
    match rng.gen_range(0u32..8) {
        0 => Pred::All,
        1 => Pred::IdEq(rng.gen_range(1..max_id.max(2))),
        2 => {
            let a = rng.gen_range(0..max_id.max(2));
            Pred::IdRange(a, a + rng.gen_range(1i64..20))
        }
        3 => Pred::CatEq(random_cat(rng)),
        4 => {
            let a = rng.gen_range(0i64..30);
            Pred::CatEqScoreRange(random_cat(rng), a, a + rng.gen_range(0i64..15))
        }
        5 => Pred::ScoreGe(rng.gen_range(0i64..40)),
        _ => Pred::NoteLike,
    }
}

/// Canonical form of a result row for multiset comparison.
fn canon(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// Model aggregates over a stream of score values, mirroring the executor:
/// `(COUNT(*), COUNT(score), SUM(score), MIN(score), MAX(score),
/// AVG(score))`.  SUM stays an integer until a real appears; every score the
/// generator draws is an integer or a half (`k + 0.5`), so float sums are
/// exact in any accumulation order and model-vs-engine comparison is exact.
fn model_aggs(scores: &[&Value]) -> Vec<Value> {
    let count_star = scores.len() as i64;
    let non_null: Vec<&Value> = scores.iter().copied().filter(|v| !v.is_null()).collect();
    let count = non_null.len() as i64;
    let sum = if non_null.is_empty() {
        Value::Null
    } else if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
        Value::Int(
            non_null
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .sum(),
        )
    } else {
        Value::Real(
            non_null
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i as f64,
                    Value::Real(r) => *r,
                    _ => 0.0,
                })
                .sum(),
        )
    };
    let best = |want_less: bool| -> Value {
        let mut best: Option<&Value> = None;
        for v in &non_null {
            let better = match best {
                None => true,
                Some(b) => {
                    let ord = v.sort_cmp(b);
                    if want_less {
                        ord == Ordering::Less
                    } else {
                        ord == Ordering::Greater
                    }
                }
            };
            if better {
                best = Some(v);
            }
        }
        best.cloned().unwrap_or(Value::Null)
    };
    let avg = if non_null.is_empty() {
        Value::Null
    } else {
        let total: f64 = non_null
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i as f64,
                Value::Real(r) => *r,
                _ => 0.0,
            })
            .sum();
        Value::Real(total / count as f64)
    };
    vec![
        Value::Int(count_star),
        Value::Int(count),
        sum,
        best(true),
        best(false),
        avg,
    ]
}

const AGG_SELECT: &str = "COUNT(*), COUNT(score), SUM(score), MIN(score), MAX(score), AVG(score)";

#[test]
fn random_sql_matches_in_memory_model() {
    let y = Yesquel::open(3);
    y.execute_script(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, cat TEXT, score INT, note TEXT);
         CREATE INDEX by_cat_score ON items (cat, score);",
    )
    .unwrap();
    let mut model: Vec<ModelRow> = Vec::new();
    let mut next_id = 1i64;
    let mut rng = seeded_rng(0x5A1_51E2E, 7);

    // Prepared handles reused across the whole stream, interleaved with
    // ad-hoc text executions of the same statements: both paths must agree
    // with the model, and the handles must survive the mid-stream DDL below
    // (plan revalidation against the catalog generation).
    let prep_insert = y
        .prepare("INSERT INTO items (cat, score, note) VALUES (:cat, :score, :note)")
        .unwrap();
    let prep_point = y
        .prepare("SELECT id, cat, score, note FROM items WHERE id = ?")
        .unwrap();
    let prep_min = y
        .prepare("SELECT MIN(score) FROM items WHERE cat = ?")
        .unwrap();
    let prep_max = y
        .prepare("SELECT MAX(score) FROM items WHERE cat = ?")
        .unwrap();

    for step in 0..600u32 {
        // Mid-stream DDL: a new index stales every cached and pinned plan;
        // later ScoreGe queries replan onto it, and results must not move.
        if step == 300 {
            y.execute("CREATE INDEX by_score ON items (score)", &[])
                .unwrap();
        }
        match rng.gen_range(0u32..10) {
            // ~40% inserts, half through the prepared handle with named
            // parameters.
            0..=3 => {
                let cat = random_cat(&mut rng);
                let score = random_score(&mut rng);
                let note = Value::Text(format!("n{}", rng.gen_range(0u32..30)));
                let rs = if rng.gen_range(0u32..2) == 0 {
                    prep_insert
                        .execute_named(&[
                            (":cat", cat.clone()),
                            (":score", score.clone()),
                            (":note", note.clone()),
                        ])
                        .unwrap()
                } else {
                    y.execute(
                        "INSERT INTO items (cat, score, note) VALUES (?, ?, ?)",
                        &[cat.clone(), score.clone(), note.clone()],
                    )
                    .unwrap()
                };
                let id = rs.last_rowid.unwrap();
                assert_eq!(id, next_id, "step {step}: rowid allocation diverged");
                model.push(ModelRow {
                    id,
                    cat,
                    // Stored values are coerced to the declared column type.
                    score: score.coerce(yesquel::sql::ColumnType::Integer),
                    note,
                });
                next_id += 1;
            }
            // ~20% updates through a random access path.
            4..=5 => {
                let pred = random_pred(&mut rng, next_id);
                let bump = rng.gen_range(1i64..5);
                let (where_sql, mut params) = pred.sql();
                params.insert(0, Value::Int(bump));
                let rs = y
                    .execute(
                        &format!("UPDATE items SET score = score + ?{where_sql}"),
                        &params,
                    )
                    .unwrap();
                let mut affected = 0;
                for r in model.iter_mut().filter(|r| pred.eval(r)) {
                    r.score = match &r.score {
                        Value::Int(s) => Value::Int(s + bump),
                        Value::Real(s) => Value::Real(s + bump as f64),
                        Value::Null => Value::Null,
                        other => other.clone(),
                    };
                    affected += 1;
                }
                assert_eq!(rs.rows_affected, affected, "step {step}: UPDATE count");
            }
            // ~10% deletes.
            6 => {
                let pred = random_pred(&mut rng, next_id);
                let (where_sql, params) = pred.sql();
                let rs = y
                    .execute(&format!("DELETE FROM items{where_sql}"), &params)
                    .unwrap();
                let before = model.len();
                model.retain(|r| !pred.eval(r));
                assert_eq!(
                    rs.rows_affected,
                    (before - model.len()) as u64,
                    "step {step}: DELETE count"
                );
            }
            // ~10% aggregate queries (global, grouped, and the one-row
            // MIN/MAX plans), checked value-exactly against the model.
            7 => {
                let pred = random_pred(&mut rng, next_id);
                let (where_sql, params) = pred.sql();
                let matching: Vec<&ModelRow> = model.iter().filter(|r| pred.eval(r)).collect();
                match rng.gen_range(0u32..3) {
                    // Global aggregates.
                    0 => {
                        let got = y
                            .execute(
                                &format!("SELECT {AGG_SELECT} FROM items{where_sql}"),
                                &params,
                            )
                            .unwrap();
                        let scores: Vec<&Value> = matching.iter().map(|r| &r.score).collect();
                        assert_eq!(
                            got.rows,
                            vec![model_aggs(&scores)],
                            "step {step}: aggregate {pred:?}"
                        );
                    }
                    // GROUP BY cat (streamed off the (cat, score) index when
                    // the access path allows, hashed otherwise).
                    1 => {
                        let got = y
                            .execute(
                                &format!(
                                    "SELECT cat, {AGG_SELECT} FROM items{where_sql} GROUP BY cat"
                                ),
                                &params,
                            )
                            .unwrap();
                        let mut groups: Vec<(&Value, Vec<&Value>)> = Vec::new();
                        for r in &matching {
                            match groups
                                .iter_mut()
                                .find(|(k, _)| k.sort_cmp(&r.cat) == Ordering::Equal)
                            {
                                Some((_, scores)) => scores.push(&r.score),
                                None => groups.push((&r.cat, vec![&r.score])),
                            }
                        }
                        let expected: Vec<Vec<Value>> = groups
                            .into_iter()
                            .map(|(k, scores)| {
                                let mut row = vec![k.clone()];
                                row.extend(model_aggs(&scores));
                                row
                            })
                            .collect();
                        assert_eq!(
                            canon(&got.rows),
                            canon(&expected),
                            "step {step}: group {pred:?}"
                        );
                    }
                    // Lone MIN/MAX — the equality-prefix form compiles to a
                    // one-row bounded read (first entry / reverse seek),
                    // alternating between the prepared handles and the text
                    // path.
                    _ => {
                        let cat = random_cat(&mut rng);
                        let func = if rng.gen_range(0u32..2) == 0 {
                            "MIN"
                        } else {
                            "MAX"
                        };
                        let got = if rng.gen_range(0u32..2) == 0 {
                            let prep = if func == "MIN" { &prep_min } else { &prep_max };
                            prep.execute(std::slice::from_ref(&cat)).unwrap()
                        } else {
                            y.execute(
                                &format!("SELECT {func}(score) FROM items WHERE cat = ?"),
                                std::slice::from_ref(&cat),
                            )
                            .unwrap()
                        };
                        let scores: Vec<&Value> = model
                            .iter()
                            .filter(|r| cmp_true(&r.cat, "=", &cat))
                            .map(|r| &r.score)
                            .collect();
                        let aggs = model_aggs(&scores);
                        let expected = if func == "MIN" { &aggs[3] } else { &aggs[4] };
                        assert_eq!(
                            got.rows,
                            vec![vec![expected.clone()]],
                            "step {step}: {func}(score) cat={cat:?}"
                        );
                    }
                }
            }
            // ~20% queries.
            _ => {
                let pred = random_pred(&mut rng, next_id);
                let (where_sql, params) = pred.sql();
                let mut expected: Vec<Vec<Value>> = model
                    .iter()
                    .filter(|r| pred.eval(r))
                    .map(|r| {
                        vec![
                            Value::Int(r.id),
                            r.cat.clone(),
                            r.score.clone(),
                            r.note.clone(),
                        ]
                    })
                    .collect();
                if rng.gen_range(0u32..2) == 0 {
                    // Totally ordered query: compare rows in order, with
                    // LIMIT/OFFSET applied to both sides.
                    let limit = rng.gen_range(1u64..15);
                    let offset = rng.gen_range(0u64..5);
                    let got = y
                        .execute(
                            &format!(
                                "SELECT id, cat, score, note FROM items{where_sql} \
                                 ORDER BY score DESC, id LIMIT {limit} OFFSET {offset}"
                            ),
                            &params,
                        )
                        .unwrap();
                    expected
                        .sort_by(|a, b| b[2].sort_cmp(&a[2]).then_with(|| a[0].sort_cmp(&b[0])));
                    let expected: Vec<Vec<Value>> = expected
                        .into_iter()
                        .skip(offset as usize)
                        .take(limit as usize)
                        .collect();
                    assert_eq!(got.rows, expected, "step {step}: ordered {pred:?}");
                } else {
                    // Point predicates alternate between the prepared
                    // handle (re-executed with a fresh id) and the text
                    // path; everything else goes through the text path.
                    let got = match &pred {
                        Pred::IdEq(id) if rng.gen_range(0u32..2) == 0 => {
                            prep_point.execute(params![*id]).unwrap()
                        }
                        _ => y
                            .execute(
                                &format!("SELECT id, cat, score, note FROM items{where_sql}"),
                                &params,
                            )
                            .unwrap(),
                    };
                    assert_eq!(
                        canon(&got.rows),
                        canon(&expected),
                        "step {step}: unordered {pred:?}"
                    );
                }
            }
        }
    }

    // Final invariant: the secondary index agrees with the base table for
    // every category value it can hold — and because `id` is the rowid and
    // `cat` is indexed, these queries are covering: across the whole loop
    // the executor must never fetch back into the primary tree.
    let stats = y.db().stats();
    let fetchbacks_before = stats.counter("sql.fetchbacks").get();
    for cat in [
        Value::Text("cat-0".into()),
        Value::Text("cat-1".into()),
        Value::Text("cat-2".into()),
        Value::Text("cat-3".into()),
    ] {
        let via_index = y
            .execute(
                "SELECT id FROM items WHERE cat = ?",
                std::slice::from_ref(&cat),
            )
            .unwrap();
        let expected: Vec<Vec<Value>> = model
            .iter()
            .filter(|r| cmp_true(&r.cat, "=", &cat))
            .map(|r| vec![Value::Int(r.id)])
            .collect();
        assert_eq!(canon(&via_index.rows), canon(&expected));
    }
    assert_eq!(
        stats.counter("sql.fetchbacks").get(),
        fetchbacks_before,
        "covering index scans must not fetch back"
    );
}
