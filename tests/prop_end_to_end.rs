//! Randomized end-to-end check: a deterministic stream of random operations
//! is applied both to a Yesquel tree (each op in its own committed
//! transaction) and to an in-memory model; the two must agree at every
//! step and at the end.  This is the property-test style harness that will
//! grow with the system.

use std::collections::BTreeMap;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::Yesquel;

#[test]
fn random_ops_match_btreemap_model() {
    let y = Yesquel::open(3);
    let dbt = y.create_tree(1).unwrap();
    let client = y.db().client();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = seeded_rng(0xE2E, 0);

    for step in 0..2000u64 {
        let k = rng.gen_range(0u64..256);
        match rng.gen_range(0u64..10) {
            // 60% inserts/updates, 20% deletes, 20% lookups.
            0..=5 => {
                let v = step;
                client
                    .run_txn(|txn| dbt.insert(txn, &k.to_be_bytes(), &v.to_be_bytes()))
                    .unwrap();
                model.insert(k, v);
            }
            6 | 7 => {
                let deleted = client
                    .run_txn(|txn| dbt.delete(txn, &k.to_be_bytes()))
                    .unwrap();
                assert_eq!(
                    deleted,
                    model.remove(&k).is_some(),
                    "step {step} delete {k}"
                );
            }
            _ => {
                let got = client
                    .run_txn(|txn| dbt.lookup(txn, &k.to_be_bytes()))
                    .unwrap()
                    .map(|v| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(&v[..8]);
                        u64::from_be_bytes(b)
                    });
                assert_eq!(got, model.get(&k).copied(), "step {step} lookup {k}");
            }
        }
    }

    // Final state: full scan equals the model.
    y.engine().wait_for_splits();
    let txn = y.begin();
    let scanned: Vec<(u64, u64)> = dbt
        .scan(&txn, None, None)
        .unwrap()
        .map(|r| {
            let (k, v) = r.unwrap();
            let mut kb = [0u8; 8];
            kb.copy_from_slice(&k[..8]);
            let mut vb = [0u8; 8];
            vb.copy_from_slice(&v[..8]);
            (u64::from_be_bytes(kb), u64::from_be_bytes(vb))
        })
        .collect();
    let expected: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(scanned, expected);
    txn.commit().unwrap();
}
