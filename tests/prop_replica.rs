//! Seeded fault storms over a *replicated* distributed balanced tree.
//!
//! The tree warms up healthy: a read-hammered leaf is promoted to a
//! replica set (read-any/write-all) and a write-hammered leaf load-splits.
//! Then a deterministic storm (dropped requests and responses, duplicates,
//! transient errors, delays, one crash-looping server) batters the
//! transport while a single-threaded, model-checked mix of lookups and
//! updates keeps running through `run_txn`.
//!
//! The safety bar:
//!
//! * a replica read never observes an unpublished page: every mid-storm
//!   lookup of a tracked key returns a value some transaction actually
//!   wrote there (committed, or in-doubt at the time the client gave up),
//!   and never `None`, never a corruption error — the read-any path falls
//!   back to the primary rather than serving garbage;
//! * after healing and reaping, no prepared state survives, every replica
//!   listed by a page is byte-identical to its primary at one snapshot
//!   (no divergence), and a full scan agrees with the client-side model;
//! * the machinery actually engaged under fire: faults were injected, and
//!   the replica-read, promotion, and load-split counters all moved.
//!
//! All randomness flows from the per-case seed, so a failure reproduces.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rand::Rng;
use yesquel::common::encoding::order_encode_i64;
use yesquel::common::ids::ROOT_OID;
use yesquel::common::rand_util::seeded_rng;
use yesquel::common::{config::SplitMode, DbtConfig};
use yesquel::rpc::{FaultPlan, TransportKind};
use yesquel::ydbt::NodeView;
use yesquel::{KvConfig, KvDatabase, ObjectId, Yesquel, YesquelConfig};

const SERVERS: usize = 4;
const TREE: u64 = 1;
/// Keys loaded during the healthy warm-up; all storm writes update these.
const KEYS: u64 = 48;
/// The read-hammered range (one leaf): promoted to a replica set.
const HOT_READ: std::ops::Range<u64> = 0..4;
/// The write-hammered range (another leaf): load-split, never promoted.
const HOT_WRITE: std::ops::Range<u64> = 40..44;
const STORM_OPS: usize = 200;

fn key(i: u64) -> [u8; 8] {
    order_encode_i64(i as i64)
}

fn tree_cfg() -> DbtConfig {
    DbtConfig {
        leaf_max_cells: 8,
        split_mode: SplitMode::Delegated,
        load_splits: true,
        // High enough that warm-up inserts on the read-hot leaf (~8
        // writes) do not tip its first hot window into the write-heavy
        // (split) classification: 8 * 4 < 60.
        load_split_threshold: 60,
        replica_factor: 2,
        ..DbtConfig::default()
    }
}

fn storm_case(seed: u64) {
    let mut rng = seeded_rng(seed, 0);
    let mut cfg = YesquelConfig::with_servers(SERVERS);
    cfg.kv = KvConfig::impatient();
    cfg.dbt = tree_cfg();

    // Start healthy (the warm-up must establish the replica set
    // deterministically); the storm is switched on afterwards.
    let db = KvDatabase::with_faults(
        cfg,
        TransportKind::Direct,
        vec![FaultPlan::healthy(); SERVERS],
    );
    let y = Yesquel::open_db(db).expect("healthy bootstrap");
    let faults = Arc::clone(y.db().faults().unwrap());
    let client = y.db().client();
    let dbt = y.create_tree(TREE).unwrap();
    let stats = y.db().stats().clone();

    // Healthy warm-up: load the key space (size splits fan the tree out
    // over several leaves), then read-hammer one leaf until the load
    // tracker promotes it to a replica set.
    let mut admissible: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
    let txn = y.begin();
    for i in 0..KEYS {
        let v = format!("init-{i}").into_bytes();
        dbt.insert(&txn, &key(i), &v).unwrap();
        admissible.insert(i, vec![v]);
    }
    txn.commit().unwrap();
    y.engine().wait_for_splits();

    for round in 0..60 {
        let txn = y.begin();
        for i in HOT_READ {
            assert!(dbt.lookup(&txn, &key(i)).unwrap().is_some());
        }
        txn.commit().unwrap();
        if round % 10 == 9 {
            y.engine().wait_for_splits();
            if stats.counter("dbt.replica_promotions").get() >= 1 {
                break;
            }
        }
    }
    y.engine().wait_for_splits();
    assert!(
        stats.counter("dbt.replica_promotions").get() >= 1,
        "seed {seed}: warm-up never promoted the read-hot leaf: {}",
        stats.render_counters()
    );

    // Storm on: every server weathers the same template (independent
    // schedules via seed mixing); one additionally crash-loops.
    let mut plans = vec![FaultPlan::storm(seed); SERVERS];
    let looper = rng.gen_range(0..SERVERS as u64) as usize;
    plans[looper].crash_after_requests = Some(rng.gen_range(40..80));
    plans[looper].restart_after_rejects = Some(rng.gen_range(4..12));
    for (s, plan) in plans.into_iter().enumerate() {
        faults.set_plan(s, plan);
    }

    // Single-threaded model-checked mix: reads of the replicated range
    // (the read-any path under fire), updates of the write-hot range
    // (write-all fan-out + load splits under fire), and random point
    // reads.  `run_txn` absorbs retryable failures; when it still gives
    // up on a write, the value may or may not have landed, so it joins
    // the key's admissible set instead of replacing it.
    for i in 0..STORM_OPS {
        match rng.gen_range(0..10u32) {
            0..=3 => {
                // Read the replicated range: must see exactly the
                // admissible values, never None, never corruption.
                let k = HOT_READ.start + rng.gen_range(0..HOT_READ.end - HOT_READ.start);
                if let Ok(got) = client.run_txn(|txn| dbt.lookup(txn, &key(k))) {
                    let got = got.unwrap_or_else(|| panic!("seed {seed}: storm read lost key {k}"));
                    assert!(
                        admissible[&k].contains(&got.to_vec()),
                        "seed {seed}: read of key {k} returned a value no \
                         transaction could have written: {got:?}"
                    );
                }
            }
            4..=7 => {
                // Update a key (write-hot range or anywhere): the value is
                // deterministic per op, so a retried-after-indeterminate
                // attempt rewrites the same bytes.
                let k = if rng.gen_range(0..2u32) == 0 {
                    HOT_WRITE.start + rng.gen_range(0..HOT_WRITE.end - HOT_WRITE.start)
                } else {
                    rng.gen_range(0..KEYS)
                };
                let v = format!("s{seed}-op{i}").into_bytes();
                match client.run_txn(|txn| dbt.insert(txn, &key(k), &v)) {
                    Ok(_) => {
                        admissible.insert(k, vec![v]);
                    }
                    Err(_) => {
                        // In doubt: either the old or the new value stands.
                        admissible.get_mut(&k).unwrap().push(v);
                    }
                }
            }
            _ => {
                let k = rng.gen_range(0..KEYS);
                if let Ok(Some(got)) = client.run_txn(|txn| dbt.lookup(txn, &key(k))) {
                    assert!(
                        admissible[&k].contains(&got.to_vec()),
                        "seed {seed}: read of key {k} returned a value no \
                         transaction could have written: {got:?}"
                    );
                }
            }
        }
    }

    assert!(
        faults.faults_injected() > 0,
        "seed {seed}: the storm never injected anything"
    );

    // Heal, then let the prepare reaper and the maintenance worker
    // converge: no orphaned prepared locks may survive.
    faults.heal_all();
    y.engine().wait_for_splits();
    for _ in 0..100 {
        if y.db().prepared_total() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        y.db().reap_all();
    }
    assert_eq!(
        y.db().prepared_total(),
        0,
        "seed {seed}: orphaned prepared locks survived heal + reap"
    );

    // Post-heal traffic until the load-split counter has moved (a split
    // abandoned under the storm is simply re-requested by fresh heat).
    for _ in 0..50 {
        if stats.counter("dbt.load_splits").get() >= 1 {
            break;
        }
        for _ in 0..20 {
            for k in HOT_WRITE {
                client
                    .run_txn(|txn| dbt.insert(txn, &key(k), b"post-heal"))
                    .unwrap();
                admissible.insert(k, vec![b"post-heal".to_vec()]);
            }
        }
        y.engine().wait_for_splits();
    }

    // The machinery under test must actually have engaged.
    let promotions = stats.counter("dbt.replica_promotions").get();
    let replica_reads = stats.counter("dbt.replica_reads").get();
    let load_splits = stats.counter("dbt.load_splits").get();
    eprintln!(
        "seed {seed}: faults={} promotions={promotions} replica_reads={replica_reads} \
         load_splits={load_splits} fanout_writes={}",
        faults.faults_injected(),
        stats.counter("dbt.replica_fanout_writes").get(),
    );
    assert!(
        promotions >= 1,
        "seed {seed}: no hot node was ever promoted"
    );
    assert!(
        replica_reads >= 1,
        "seed {seed}: read-any never served a read from a replica"
    );
    assert!(
        load_splits >= 1,
        "seed {seed}: the write-hot leaf never load-split"
    );

    // No divergence after heal + reap: walk the tree at one snapshot and
    // check every replica a page lists is byte-identical to its primary.
    let txn = y.begin();
    let mut queue = vec![ROOT_OID];
    let mut seen = std::collections::HashSet::new();
    let mut replicated_nodes = 0usize;
    while let Some(oid) = queue.pop() {
        if !seen.insert(oid) {
            continue;
        }
        let page = txn
            .get(ObjectId::new(TREE, oid))
            .unwrap()
            .unwrap_or_else(|| panic!("seed {seed}: node {oid} vanished"));
        let view = NodeView::parse(Bytes::from(page.to_vec())).unwrap();
        for roid in view.replicas() {
            replicated_nodes += 1;
            let copy = txn.get(ObjectId::new(TREE, roid)).unwrap();
            assert_eq!(
                copy.as_deref(),
                Some(&page[..]),
                "seed {seed}: replica {roid} of node {oid} diverged from its primary"
            );
        }
        if let NodeView::Inner(inner) = &view {
            for i in 0..inner.len() {
                queue.push(inner.child(i));
            }
        }
    }
    assert!(
        replicated_nodes >= 1,
        "seed {seed}: no page listed a replica after the run"
    );

    // The surviving data agrees with the model: every key scans back as
    // one of its admissible values.
    let mut scanned: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for row in dbt.scan(&txn, None, None).unwrap() {
        let (k, v) = row.unwrap();
        scanned.insert(k.to_vec(), v.to_vec());
    }
    assert_eq!(
        scanned.len(),
        KEYS as usize,
        "seed {seed}: scan lost or invented keys"
    );
    for (k, vals) in &admissible {
        let got = scanned
            .get(key(*k).as_slice())
            .unwrap_or_else(|| panic!("seed {seed}: key {k} missing from final scan"));
        assert!(
            vals.contains(got),
            "seed {seed}: final value of key {k} ({got:?}) matches no admissible write"
        );
    }
    txn.commit().unwrap();
}

#[test]
fn replica_storm_seed_matrix() {
    // CI pins CHAOS_SEED to fan seeds out across jobs; locally all run.
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        storm_case(seed.parse().expect("CHAOS_SEED must be a u64"));
        return;
    }
    for seed in [17, 31, 59, 107, 919] {
        storm_case(seed);
    }
}
