//! Seeded chaos test of the **parallel** 2PC prepare fan-out with request
//! batching enabled: four client threads run concurrent multi-server write
//! transactions while a deterministic fault storm (dropped requests and
//! responses, duplicates, transient errors, delays, one crash-looping
//! server) batters the transport.  The commit path is forced onto
//! `CommitFanout::Parallel`, so every multi-participant prepare round and
//! secondary-commit round is issued from the fan-out pool, and the
//! batching decorator coalesces whatever collides in its window.
//!
//! The safety bar is the same as `prop_chaos_commit`, now under real
//! concurrency:
//!
//! * committed-iff-acknowledged — a commit reported to any client thread
//!   is `Committed` at every participant; a reported abort is applied
//!   nowhere; an in-doubt result resolves to whatever the primary decided,
//!   and all participants agree;
//! * no write is double-applied: each object's version chain equals, as a
//!   multiset, the writes of the transactions that actually committed it;
//! * after healing, the reaper clears every orphaned prepare.
//!
//! The test also asserts the new machinery actually engaged: the parallel
//! fan-out counter and the batched-request counter both moved.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::common::{CommitFanout, RpcBatchConfig};
use yesquel::kv::store::TxnOutcome;
use yesquel::rpc::{FaultPlan, TransportKind};
use yesquel::{Error, KvConfig, KvDatabase, ObjectId, YesquelConfig};

const SERVERS: usize = 4;
const KEYS: usize = 24;
const THREADS: usize = 4;
const TXNS_PER_THREAD: usize = 60;

/// What one client thread was told about one of its transactions.
#[derive(Debug, Clone, PartialEq)]
enum Reported {
    Committed(u64),
    /// Conflict or clean unavailability: guaranteed not applied.
    NotApplied,
    /// Timeout / indeterminate: only the primary knows.
    Maybe,
}

#[derive(Debug)]
struct TxnRecord {
    id: u64,
    writes: Vec<(ObjectId, Vec<u8>)>,
    reported: Reported,
}

fn key_pool() -> Vec<ObjectId> {
    (0..KEYS as u64).map(|o| ObjectId::new(1, o)).collect()
}

fn participants(writes: &[(ObjectId, Vec<u8>)]) -> Vec<usize> {
    let mut ps: Vec<usize> = writes.iter().map(|(o, _)| o.home_server(SERVERS)).collect();
    ps.sort_unstable();
    ps.dedup();
    ps
}

fn storm_case(seed: u64) {
    let mut rng = seeded_rng(seed, 0);
    let mut cfg = YesquelConfig::with_servers(SERVERS);
    cfg.kv = KvConfig::impatient();
    cfg.kv.commit_fanout = CommitFanout::Parallel;
    cfg.rpc_batch = Some(RpcBatchConfig {
        window_us: 100,
        max_batch: 8,
        linger_us: 0,
    });

    let mut plans = vec![FaultPlan::storm(seed); SERVERS];
    let looper = rng.gen_range(0..SERVERS as u64) as usize;
    plans[looper].crash_after_requests = Some(rng.gen_range(40..80));
    plans[looper].restart_after_rejects = Some(rng.gen_range(4..12));

    let db = KvDatabase::with_faults(cfg, TransportKind::Direct, plans);
    let faults = Arc::clone(db.faults().unwrap());
    let keys = key_pool();

    // Four threads, each running its own seeded stream of mostly
    // multi-server write transactions through its own client clone.
    let records: Vec<TxnRecord> = std::thread::scope(|scope| {
        let keys = &keys;
        let db = &db;
        (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let client = db.client();
                    let mut rng = seeded_rng(seed, 1 + t as u64);
                    let mut recs = Vec::new();
                    for i in 0..TXNS_PER_THREAD {
                        // 2-4 keys drawn across the whole pool: with 4
                        // servers nearly every transaction spans several
                        // participants, forcing the parallel prepare.
                        let n = rng.gen_range(2..=4u64) as usize;
                        let mut dedup: HashMap<ObjectId, Vec<u8>> = HashMap::new();
                        for j in 0..n {
                            let k = keys[rng.gen_range(0..KEYS as u64) as usize];
                            dedup.insert(k, format!("s{seed}-th{t}-i{i}-{j}").into_bytes());
                        }
                        let writes: Vec<_> = dedup.into_iter().collect();

                        let txn = client.begin();
                        let mut write_failed = false;
                        for (k, v) in &writes {
                            if txn.put(*k, v.clone()).is_err() {
                                write_failed = true;
                                break;
                            }
                        }
                        if write_failed {
                            txn.abort();
                            continue;
                        }
                        let id = txn.id();
                        let reported = match txn.commit() {
                            Ok(ts) => Reported::Committed(ts),
                            Err(Error::Conflict(_)) | Err(Error::Unavailable(_)) => {
                                Reported::NotApplied
                            }
                            Err(Error::Indeterminate(_)) | Err(Error::Timeout(_)) => {
                                Reported::Maybe
                            }
                            Err(e) => panic!("seed {seed}: unexpected commit error: {e:?}"),
                        };
                        recs.push(TxnRecord {
                            id,
                            writes,
                            reported,
                        });
                    }
                    recs
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().expect("storm thread panicked"))
            .collect()
    });

    assert!(
        faults.faults_injected() > 0,
        "seed {seed}: the storm never injected anything"
    );
    // The machinery under test must actually have engaged.
    let fanouts = db.stats().counter("kv.prepare_parallel_fanouts").get();
    let batched = db.stats().counter("rpc.batched_requests").get();
    assert!(
        fanouts > 0,
        "seed {seed}: no prepare round used the parallel fan-out"
    );
    assert!(
        batched > 0,
        "seed {seed}: no requests were ever coalesced into a batch frame"
    );
    {
        let (na, mb, ok) = records
            .iter()
            .fold((0, 0, 0), |(a, m, o), r| match r.reported {
                Reported::NotApplied => (a + 1, m, o),
                Reported::Maybe => (a, m + 1, o),
                Reported::Committed(_) => (a, m, o + 1),
            });
        eprintln!(
            "seed {seed}: ok={ok} notapplied={na} maybe={mb} faults={} fanouts={fanouts} batched={batched}",
            faults.faults_injected(),
        );
    }

    // Heal and let the reaper converge every in-doubt prepare.
    faults.heal_all();
    for _ in 0..10 {
        if db.prepared_total() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        db.reap_all();
    }
    assert_eq!(
        db.prepared_total(),
        0,
        "seed {seed}: orphaned prepared locks survived heal + reap"
    );

    // Ground truth per transaction from the primary's outcome table.
    let servers = db.cluster().servers();
    let mut actually_committed: Vec<(&TxnRecord, u64)> = Vec::new();
    for rec in &records {
        let ps = participants(&rec.writes);
        let primary = ps[0];
        let primary_outcome = servers[primary].store().outcome(rec.id);
        let actual_ts = match (&rec.reported, primary_outcome) {
            (Reported::Committed(ts), Some(TxnOutcome::Committed(actual))) => {
                assert_eq!(
                    actual, *ts,
                    "seed {seed}: txn {} committed at a different timestamp than reported",
                    rec.id
                );
                Some(*ts)
            }
            (Reported::Committed(ts), other) => panic!(
                "seed {seed}: txn {} reported committed at {ts} but primary says {other:?}",
                rec.id
            ),
            (Reported::NotApplied, Some(TxnOutcome::Committed(ts))) => panic!(
                "seed {seed}: txn {} reported aborted but committed at {ts}",
                rec.id
            ),
            (Reported::NotApplied, _) => None,
            (Reported::Maybe, Some(TxnOutcome::Committed(ts))) => Some(ts),
            (Reported::Maybe, _) => None,
        };
        match actual_ts {
            Some(ts) => {
                for &p in &ps {
                    assert_eq!(
                        servers[p].store().outcome(rec.id),
                        Some(TxnOutcome::Committed(ts)),
                        "seed {seed}: participant {p} of txn {} disagrees with its primary",
                        rec.id
                    );
                }
                actually_committed.push((rec, ts));
            }
            None => {
                for &p in &ps {
                    assert!(
                        !matches!(
                            servers[p].store().outcome(rec.id),
                            Some(TxnOutcome::Committed(_))
                        ),
                        "seed {seed}: txn {} aborted at its primary but committed at {p}",
                        rec.id
                    );
                }
            }
        }
    }

    // No double-apply, nothing lost: each object's version chain equals,
    // as a multiset, the writes of the transactions that committed it.
    let mut expected: HashMap<ObjectId, Vec<(u64, Vec<u8>)>> = HashMap::new();
    for (rec, ts) in &actually_committed {
        for (k, v) in &rec.writes {
            expected.entry(*k).or_default().push((*ts, v.clone()));
        }
    }
    for &k in &keys {
        let store = servers[k.home_server(SERVERS)].store();
        let mut got: Vec<(u64, Vec<u8>)> = store
            .dump_versions(k)
            .into_iter()
            .map(|(ts, v)| (ts, v.expect("storm writes no tombstones").to_vec()))
            .collect();
        got.sort();
        let mut want = expected.remove(&k).unwrap_or_default();
        want.sort();
        assert_eq!(
            got, want,
            "seed {seed}: version chain of {k} diverges from the committed history"
        );
    }

    // Epilogue: a fresh reader sees the newest actually-committed write.
    let client = db.client();
    let txn = client.begin();
    for &k in &keys {
        let winner = actually_committed
            .iter()
            .flat_map(|(rec, ts)| {
                rec.writes
                    .iter()
                    .filter(|(o, _)| *o == k)
                    .map(move |(_, v)| (*ts, v.clone()))
            })
            .max_by_key(|(ts, _)| *ts);
        let visible = txn.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(
            visible,
            winner.map(|(_, v)| v),
            "seed {seed}: final read of {k} is not the newest committed write"
        );
    }
    txn.commit().unwrap();
}

#[test]
fn parallel_commit_seed_matrix() {
    // CI pins CHAOS_SEED to fan seeds out across jobs; locally all run.
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        storm_case(seed.parse().expect("CHAOS_SEED must be a u64"));
        return;
    }
    for seed in [13, 29, 53, 103, 911] {
        storm_case(seed);
    }
}
