//! Integration tests of the observability subsystem end to end: EXPLAIN
//! ANALYZE per-operator reports cross-checked against the global stats
//! counters, the pay-as-you-go guarantee (zero clock reads and zero
//! observability allocations on the untraced fast path), sampled tracing
//! into the slow-op ring, and the unified reset + windowed snapshot flow
//! the load harness relies on between cells.

use yesquel::common::config::{ObsConfig, YesquelConfig};
use yesquel::common::obs::clock;
use yesquel::sql::Value;
use yesquel::{params, Yesquel};

/// 50 rows, 5 per `views` value, with a secondary index on `views`.
fn fixture() -> Yesquel {
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL, views INT);
         CREATE INDEX by_views ON pages (views);",
    )
    .unwrap();
    for i in 0..50i64 {
        y.execute(
            "INSERT INTO pages (title, views) VALUES (?, ?)",
            &[Value::Text(format!("page-{i:02}")), Value::Int(i % 10)],
        )
        .unwrap();
    }
    y
}

fn int_at(row: &[Value], idx: usize) -> i64 {
    match &row[idx] {
        Value::Int(i) => *i,
        other => panic!("expected int at column {idx}, got {other:?}"),
    }
}

/// The first report row whose operator column starts with `prefix`.
fn op_row<'a>(rows: &'a [Vec<Value>], prefix: &str) -> &'a Vec<Value> {
    rows.iter()
        .find(|r| matches!(&r[0], Value::Text(t) if t.starts_with(prefix)))
        .unwrap_or_else(|| panic!("no operator row starting with {prefix:?} in {rows:?}"))
}

// Report columns: operator, rows_in, rows_out, kv_fetches, fetchbacks,
// elapsed_us.
const ROWS_IN: usize = 1;
const ROWS_OUT: usize = 2;
const KV_FETCHES: usize = 3;
const FETCHBACKS: usize = 4;

#[test]
fn explain_analyze_warm_point_select_fetches_exactly_one_leaf() {
    let y = fixture();
    let stats = y.db().stats();
    let ea = y
        .prepare("EXPLAIN ANALYZE SELECT title FROM pages WHERE id = ?")
        .unwrap();
    // First run warms the descent (root and inner nodes cached); the
    // second is the measured one.
    ea.execute(params![7]).unwrap();
    let before = stats.counter("dbt.node_fetches").get();
    let rs = ea.execute(params![7]).unwrap();
    let fetched = (stats.counter("dbt.node_fetches").get() - before) as i64;

    let leaf = op_row(&rs.rows, "point pages");
    assert_eq!(
        int_at(leaf, KV_FETCHES),
        1,
        "warm point select = 1 leaf fetch"
    );
    assert_eq!(int_at(leaf, FETCHBACKS), 0);
    assert_eq!(int_at(leaf, ROWS_OUT), 1);

    let total = op_row(&rs.rows, "total");
    assert_eq!(int_at(total, KV_FETCHES), 1);
    assert_eq!(
        int_at(total, KV_FETCHES),
        fetched,
        "reported kv_fetches must equal the dbt.node_fetches counter delta"
    );
    assert_eq!(int_at(total, ROWS_OUT), 1);
}

#[test]
fn explain_analyze_fetch_counts_match_stats_counter_deltas() {
    let y = fixture();
    let stats = y.db().stats();
    // Non-covering index scan: the by_views index yields rowids, every
    // row's title is fetched back from the base table.
    let ea = y
        .prepare("EXPLAIN ANALYZE SELECT title FROM pages WHERE views = ?")
        .unwrap();
    ea.execute(params![3]).unwrap();
    let before = stats.snapshot();
    let rs = ea.execute(params![3]).unwrap();
    let deltas = stats.snapshot().counter_delta(&before);

    let node_fetches = deltas.get("dbt.node_fetches").copied().unwrap_or(0)
        + deltas.get("dbt.scan_leaf_fetches").copied().unwrap_or(0);
    let fetchbacks = deltas.get("sql.fetchbacks").copied().unwrap_or(0);

    let total = op_row(&rs.rows, "total");
    assert_eq!(int_at(total, KV_FETCHES) as u64, node_fetches);
    assert_eq!(int_at(total, FETCHBACKS) as u64, fetchbacks);
    assert_eq!(int_at(total, ROWS_OUT), 5, "5 rows carry views = 3");
    assert!(fetchbacks >= 5, "one fetch-back per matching row");

    // The fetch-backs happen inside the index leaf's row production, so
    // they are charged to the leaf operator.
    let leaf = op_row(&rs.rows, "index pages.by_views");
    assert_eq!(int_at(leaf, FETCHBACKS) as u64, fetchbacks);
}

#[test]
fn covering_index_scan_reports_zero_fetchbacks() {
    let y = fixture();
    let stats = y.db().stats();
    let ea = y
        .prepare("EXPLAIN ANALYZE SELECT views FROM pages WHERE views = ?")
        .unwrap();
    ea.execute(params![4]).unwrap();
    let before = stats.counter("sql.covering_scans").get();
    let rs = ea.execute(params![4]).unwrap();
    assert!(
        stats.counter("sql.covering_scans").get() > before,
        "selecting only the indexed column is served from the index"
    );
    let leaf = op_row(&rs.rows, "index pages.by_views");
    assert!(
        matches!(&leaf[0], Value::Text(t) if t.contains("covering")),
        "leaf label advertises the covering read: {:?}",
        leaf[0]
    );
    assert_eq!(int_at(leaf, FETCHBACKS), 0);
    let total = op_row(&rs.rows, "total");
    assert_eq!(int_at(total, FETCHBACKS), 0);
    assert_eq!(int_at(total, ROWS_OUT), 5);
}

#[test]
fn order_by_limit_reports_exactly_limit_plus_offset_rows_examined() {
    let y = fixture();
    let ea = y
        .prepare("EXPLAIN ANALYZE SELECT id, title FROM pages ORDER BY id LIMIT 5 OFFSET 2")
        .unwrap();
    ea.execute(&[]).unwrap();
    let rs = ea.execute(&[]).unwrap();
    // ORDER BY the primary key streams in key order: the limit stops the
    // scan after limit + offset entries, which the leaf's rows_in exposes.
    let leaf = op_row(&rs.rows, "scan pages");
    assert_eq!(
        int_at(leaf, ROWS_IN),
        7,
        "scan examined limit + offset rows"
    );
    assert_eq!(int_at(leaf, ROWS_OUT), 7);
    let limit = op_row(&rs.rows, "limit");
    assert_eq!(int_at(limit, ROWS_OUT), 5);
    let total = op_row(&rs.rows, "total");
    assert_eq!(int_at(total, ROWS_OUT), 5);
}

#[test]
fn untraced_fast_path_reads_no_clocks_and_allocates_nothing() {
    // Default configuration: timing off, sampling off.  All observability
    // clock reads and allocations self-report through thread-local
    // tallies, and the direct transport executes server work on the
    // calling thread, so a zero delta here covers every layer.
    let y = Yesquel::open(2);
    y.execute_script("CREATE TABLE kvt (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    let ins = y.prepare("INSERT INTO kvt (id, v) VALUES (?, ?)").unwrap();
    for i in 0..20i64 {
        ins.execute(params![i, i]).unwrap();
    }
    let sel = y.prepare("SELECT v FROM kvt WHERE id = ?").unwrap();
    sel.execute(params![5]).unwrap();

    let clocks = clock::clock_reads();
    let allocs = clock::tracked_allocs();
    for i in 0..100i64 {
        sel.execute(params![i % 20]).unwrap();
        ins.execute(params![100 + i, i]).unwrap();
    }
    assert_eq!(
        clock::clock_reads(),
        clocks,
        "untraced ops must not read the clock"
    );
    assert_eq!(
        clock::tracked_allocs(),
        allocs,
        "untraced ops must not allocate for observability"
    );
}

#[test]
fn sampled_tracing_populates_the_slow_op_ring() {
    let mut config = YesquelConfig::with_servers(2);
    config.obs = ObsConfig {
        timing: true,
        trace_sample_every: 1, // trace everything
        slow_threshold_us: 0,  // and keep everything
    };
    let y = Yesquel::open_with(config);
    y.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..10i64 {
        y.execute("INSERT INTO t (v) VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    y.execute("SELECT COUNT(*) FROM t", &[]).unwrap();

    let ring = y.db().stats().obs().slow_ring();
    assert!(!ring.is_empty(), "every traced op clears a 0us threshold");
    let dump = ring.dump_json();
    assert!(dump.contains("\"label\": \"sql.execute\""), "dump: {dump}");
    assert!(dump.contains("\"spans\""));
    // Balanced JSON, consumable as-is.
    assert_eq!(dump.matches('{').count(), dump.matches('}').count());
    assert_eq!(dump.matches('[').count(), dump.matches(']').count());
}

#[test]
fn unified_reset_clears_counters_histograms_and_ring() {
    let mut config = YesquelConfig::with_servers(2);
    config.obs = ObsConfig {
        timing: true,
        trace_sample_every: 1,
        slow_threshold_us: 0,
    };
    let y = Yesquel::open_with(config);
    y.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    y.execute("INSERT INTO t (v) VALUES (1)", &[]).unwrap();
    y.execute("SELECT v FROM t WHERE id = 1", &[]).unwrap();

    let stats = y.db().stats();
    assert!(stats.counter("sql.parses").get() > 0);
    let hist = &stats.histogram_snapshot()["sql.stmt_us.select"];
    assert!(hist.count > 0, "timing on records statement latency");
    assert!(!stats.obs().slow_ring().is_empty());

    stats.reset();
    assert_eq!(stats.counter("sql.parses").get(), 0);
    assert_eq!(stats.histogram_snapshot()["sql.stmt_us.select"].count, 0);
    assert!(stats.obs().slow_ring().is_empty());

    // The windowed flow the load harness uses between cells: snapshot,
    // work, delta — the window sees exactly its own operations.
    let before = stats.snapshot();
    // Fresh statement text: a repeat of the pre-reset select would hit
    // the plan cache (which a stats reset rightly leaves alone) and
    // never reach the parser.
    y.execute("SELECT v FROM t WHERE id = 1 + 0", &[]).unwrap();
    let delta = stats.snapshot().counter_delta(&before);
    assert_eq!(delta.get("sql.parses").copied().unwrap_or(0), 1);
    assert_eq!(
        stats.histogram_snapshot()["sql.stmt_us.select"].count,
        1,
        "one select since the reset"
    );
}
