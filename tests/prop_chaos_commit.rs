//! Randomized chaos test of commit safety under fault injection: a
//! deterministic, seeded fault storm (dropped requests, dropped responses,
//! duplicate deliveries, transient errors, delays, and a server on a
//! scripted crash/restart cycle) runs under a mixed workload of one-phase,
//! two-phase, delete-heavy and read-only transactions.
//!
//! Every transaction's reported fate is checked against the cluster's
//! ground truth after the storm ends and the prepare-lease reaper has
//! converged:
//!
//! * a commit reported to the client is durable — every participant's
//!   outcome table says `Committed` at the reported timestamp;
//! * a reported abort (conflict / unavailable) was applied nowhere;
//! * an indeterminate commit resolved to exactly one of the two, decided by
//!   the primary participant, and all participants agree;
//! * no write is ever double-applied: each object's version chain equals,
//!   as a multiset, the writes of the transactions that actually committed
//!   to it — one version per (txn, object), no more, no less;
//! * after healing, no prepared state survives (no orphaned locks) and the
//!   final visible value of every object is the actually-committed write
//!   with the highest commit timestamp.
//!
//! All randomness flows from the per-case seed, so a failure reproduces.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::kv::store::TxnOutcome;
use yesquel::rpc::{FaultPlan, TransportKind};
use yesquel::{Error, KvConfig, KvDatabase, ObjectId, YesquelConfig};

const SERVERS: usize = 4;
const KEYS: usize = 24;
const TXNS: usize = 300;

/// A version chain: (commit timestamp, value or delete-tombstone) pairs.
type VersionHistory = Vec<(u64, Option<Vec<u8>>)>;

/// What the client was told about a transaction.
#[derive(Debug, Clone, PartialEq)]
enum Reported {
    Committed(u64),
    /// Conflict or clean unavailability: guaranteed not applied.
    NotApplied,
    /// Timeout / indeterminate: only the primary knows.
    Maybe,
}

/// One write-transaction record kept by the test harness.
#[derive(Debug)]
struct TxnRecord {
    id: u64,
    writes: Vec<(ObjectId, Option<Vec<u8>>)>,
    reported: Reported,
}

fn key_pool() -> Vec<ObjectId> {
    (0..KEYS as u64).map(|o| ObjectId::new(1, o)).collect()
}

fn keys_by_server(keys: &[ObjectId]) -> Vec<Vec<ObjectId>> {
    let mut by = vec![Vec::new(); SERVERS];
    for &k in keys {
        by[k.home_server(SERVERS)].push(k);
    }
    by
}

fn participants(writes: &[(ObjectId, Option<Vec<u8>>)]) -> Vec<usize> {
    let mut ps: Vec<usize> = writes.iter().map(|(o, _)| o.home_server(SERVERS)).collect();
    ps.sort_unstable();
    ps.dedup();
    ps
}

fn storm_case(seed: u64) {
    let mut rng = seeded_rng(seed, 0);
    let mut cfg = YesquelConfig::with_servers(SERVERS);
    cfg.kv = KvConfig::impatient();

    // Every server weathers the same storm template (independent per-server
    // schedules via seed mixing); one server additionally crash-loops.
    let mut plans = vec![FaultPlan::storm(seed); SERVERS];
    let looper = rng.gen_range(0..SERVERS as u64) as usize;
    plans[looper].crash_after_requests = Some(rng.gen_range(30..60));
    plans[looper].restart_after_rejects = Some(rng.gen_range(4..12));

    let db = KvDatabase::with_faults(cfg, TransportKind::Direct, plans);
    let faults = Arc::clone(db.faults().unwrap());
    let client = db.client();
    let keys = key_pool();
    let by_server = keys_by_server(&keys);

    let mut records: Vec<TxnRecord> = Vec::new();
    // Values that could ever land, per key — used for the loose mid-storm
    // read check (a read may legally see any committed-or-in-doubt write).
    let mut admissible: HashMap<ObjectId, Vec<Option<Vec<u8>>>> = HashMap::new();

    for i in 0..TXNS {
        let kind = rng.gen_range(0..10u32);
        if kind < 3 {
            // Read-only transaction: reads never corrupt anything; any
            // value seen must be admissible.  Availability errors are fine.
            let t = client.begin();
            let mut ok = true;
            for _ in 0..3 {
                let k = keys[rng.gen_range(0..KEYS as u64) as usize];
                match t.get(k) {
                    Ok(v) => {
                        let v = v.map(|b| b.to_vec());
                        if v.is_some() {
                            let known = admissible.get(&k).map(|vs| vs.contains(&v));
                            assert_eq!(
                                known,
                                Some(true),
                                "seed {seed}: read of {k} returned a value no \
                                 transaction could have committed: {v:?}"
                            );
                        }
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                t.commit().unwrap();
            } else {
                // Txn consumed by the failed read path? No: get borrows.
                t.abort();
            }
            continue;
        }

        // A write transaction: one-phase (single server) or two-phase.
        let writes: Vec<(ObjectId, Option<Vec<u8>>)> = if kind < 6 {
            let s = rng.gen_range(0..SERVERS as u64) as usize;
            let n = rng.gen_range(1..=3u64) as usize;
            (0..n)
                .map(|j| {
                    let k = by_server[s][rng.gen_range(0..by_server[s].len() as u64) as usize];
                    let del = rng.gen_bool(0.1);
                    (k, (!del).then(|| format!("s{seed}-t{i}-{j}").into_bytes()))
                })
                .collect()
        } else {
            let n = rng.gen_range(2..=4u64) as usize;
            (0..n)
                .map(|j| {
                    let k = keys[rng.gen_range(0..KEYS as u64) as usize];
                    let del = rng.gen_bool(0.1);
                    (k, (!del).then(|| format!("s{seed}-t{i}-{j}").into_bytes()))
                })
                .collect()
        };
        // Dedup by key (later write wins), matching the client's buffer.
        let mut dedup: HashMap<ObjectId, Option<Vec<u8>>> = HashMap::new();
        for (k, v) in writes {
            dedup.insert(k, v);
        }
        let writes: Vec<_> = dedup.into_iter().collect();

        let t = client.begin();
        let mut write_failed = false;
        for (k, v) in &writes {
            let r = match v {
                Some(bytes) => t.put(*k, bytes.clone()),
                None => t.delete(*k),
            };
            if r.is_err() {
                write_failed = true;
                break;
            }
        }
        if write_failed {
            t.abort();
            continue;
        }
        let id = t.id();
        let reported = match t.commit() {
            Ok(ts) => Reported::Committed(ts),
            Err(Error::Conflict(_)) | Err(Error::Unavailable(_)) => Reported::NotApplied,
            Err(Error::Indeterminate(_)) | Err(Error::Timeout(_)) => Reported::Maybe,
            Err(e) => panic!("seed {seed}: unexpected commit error: {e:?}"),
        };
        if !matches!(reported, Reported::NotApplied) {
            for (k, v) in &writes {
                admissible.entry(*k).or_default().push(v.clone());
            }
        }
        records.push(TxnRecord {
            id,
            writes,
            reported,
        });
    }

    assert!(
        faults.faults_injected() > 0,
        "seed {seed}: the storm never injected anything"
    );
    {
        let c = |n: &str| db.stats().counter(n).get();
        let (na, mb, ok) = records
            .iter()
            .fold((0, 0, 0), |(a, m, o), r| match r.reported {
                Reported::NotApplied => (a + 1, m, o),
                Reported::Maybe => (a, m + 1, o),
                Reported::Committed(_) => (a, m, o + 1),
            });
        eprintln!(
            "seed {seed}: ok={ok} notapplied={na} maybe={mb} faults={} retries={} timeouts={} dedup={} reaps={:?}",
            faults.faults_injected(), c("rpc.retries"), c("rpc.timeouts"),
            db.cluster().servers().iter().map(|s| s.store().stats().dedup_hits).sum::<u64>(),
            db.cluster().servers().iter().map(|s| s.reap_counts()).collect::<Vec<_>>(),
        );
    }

    // End of storm: heal everything and let the reaper converge all
    // remaining in-doubt state.  Leases are microseconds under the
    // impatient config, so a couple of passes suffice.
    faults.heal_all();
    for _ in 0..10 {
        if db.prepared_total() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        db.reap_all();
    }
    assert_eq!(
        db.prepared_total(),
        0,
        "seed {seed}: orphaned prepared locks survived heal + reap"
    );

    // Resolve ground truth per transaction from the primary participant's
    // outcome table, and cross-check every participant agrees.
    let servers = db.cluster().servers();
    let mut actually_committed: Vec<(&TxnRecord, u64)> = Vec::new();
    for rec in &records {
        let ps = participants(&rec.writes);
        let primary = ps[0];
        let primary_outcome = servers[primary].store().outcome(rec.id);
        let actual_ts = match (&rec.reported, primary_outcome) {
            (Reported::Committed(ts), Some(TxnOutcome::Committed(actual))) => {
                assert_eq!(
                    actual, *ts,
                    "seed {seed}: txn {} committed at a different timestamp than reported",
                    rec.id
                );
                Some(*ts)
            }
            (Reported::Committed(ts), other) => panic!(
                "seed {seed}: txn {} reported committed at {ts} but primary says {other:?}",
                rec.id
            ),
            (Reported::NotApplied, Some(TxnOutcome::Committed(ts))) => panic!(
                "seed {seed}: txn {} reported aborted but committed at {ts}",
                rec.id
            ),
            (Reported::NotApplied, _) => None,
            (Reported::Maybe, Some(TxnOutcome::Committed(ts))) => Some(ts),
            (Reported::Maybe, _) => None,
        };
        match actual_ts {
            Some(ts) => {
                // Atomicity: every participant converged to the same commit.
                for &p in &ps {
                    assert_eq!(
                        servers[p].store().outcome(rec.id),
                        Some(TxnOutcome::Committed(ts)),
                        "seed {seed}: participant {p} of txn {} disagrees with its primary",
                        rec.id
                    );
                }
                actually_committed.push((rec, ts));
            }
            None => {
                for &p in &ps {
                    assert!(
                        !matches!(
                            servers[p].store().outcome(rec.id),
                            Some(TxnOutcome::Committed(_))
                        ),
                        "seed {seed}: txn {} aborted at its primary but committed at {p}",
                        rec.id
                    );
                }
            }
        }
    }

    // No double-apply, nothing lost: each object's version chain equals, as
    // a multiset, the writes of the transactions that actually committed it.
    let mut expected: HashMap<ObjectId, VersionHistory> = HashMap::new();
    for (rec, ts) in &actually_committed {
        for (k, v) in &rec.writes {
            expected.entry(*k).or_default().push((*ts, v.clone()));
        }
    }
    for &k in &keys {
        let store = servers[k.home_server(SERVERS)].store();
        let mut got: VersionHistory = store
            .dump_versions(k)
            .into_iter()
            .map(|(ts, v)| (ts, v.map(|b| b.to_vec())))
            .collect();
        got.sort();
        let mut want = expected.remove(&k).unwrap_or_default();
        want.sort();
        assert_eq!(
            got, want,
            "seed {seed}: version chain of {k} diverges from the committed history"
        );
    }

    // Snapshot-isolation epilogue: a fresh reader sees, for every key, the
    // actually-committed write with the highest commit timestamp.
    let t = client.begin();
    for &k in &keys {
        let winner = actually_committed
            .iter()
            .flat_map(|(rec, ts)| {
                rec.writes
                    .iter()
                    .filter(|(o, _)| *o == k)
                    .map(move |(_, v)| (*ts, v.clone()))
            })
            .max_by_key(|(ts, _)| *ts);
        let visible = t.get(k).unwrap().map(|b| b.to_vec());
        assert_eq!(
            visible,
            winner.and_then(|(_, v)| v),
            "seed {seed}: final read of {k} is not the newest committed write"
        );
    }
    t.commit().unwrap();
}

#[test]
fn chaos_commit_seed_matrix() {
    // The CI chaos job pins CHAOS_SEED to fan the matrix out across jobs;
    // locally all seeds run in sequence.
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        storm_case(seed.parse().expect("CHAOS_SEED must be a u64"));
        return;
    }
    for seed in [11, 23, 47, 101, 907] {
        storm_case(seed);
    }
}
