// Placeholder; implemented after the YDBT layer.
