//! Integration tests of the distributed balanced tree through the facade:
//! growth under splits, scans, cache behaviour (single-fetch warm reads,
//! shared cache entries), and stale-cache recovery.

use yesquel::common::config::SplitMode;
use yesquel::common::encoding::order_encode_i64;
use yesquel::{DbtConfig, Yesquel, YesquelConfig};

fn key(i: u64) -> [u8; 8] {
    order_encode_i64(i as i64)
}

fn small_tree_cfg() -> DbtConfig {
    DbtConfig {
        leaf_max_cells: 4,
        inner_max_children: 4,
        split_mode: SplitMode::Synchronous,
        load_splits: false,
        ..DbtConfig::default()
    }
}

#[test]
fn grows_scans_and_survives_cache_invalidation() {
    let mut cfg = YesquelConfig::with_servers(3);
    cfg.dbt = small_tree_cfg();
    let y = Yesquel::open_with(cfg);
    let dbt = y.create_tree(1).unwrap();
    let n = 300u64;

    let txn = y.begin();
    for i in 0..n {
        dbt.insert(&txn, &key(i), format!("v{i}").as_bytes())
            .unwrap();
    }
    txn.commit().unwrap();

    let txn = y.begin();
    assert!(
        dbt.height(&txn).unwrap() >= 2,
        "tree should have split into layers"
    );
    assert_eq!(dbt.count(&txn).unwrap(), n);

    // Scans return sorted keys (as zero-copy slices of the leaf pages).
    let keys: Vec<bytes::Bytes> = dbt
        .scan(&txn, None, None)
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    let mut expected: Vec<Vec<u8>> = (0..n).map(|i| key(i).to_vec()).collect();
    expected.sort();
    assert_eq!(keys, expected);

    // Dropping the cache must not affect correctness, only fetch counts.
    y.engine().invalidate_cache(dbt.tree_id());
    assert_eq!(y.engine().cached_nodes(), 0);
    for i in (0..n).step_by(17) {
        assert!(dbt.lookup(&txn, &key(i)).unwrap().is_some());
    }
    txn.commit().unwrap();
}

#[test]
fn warm_point_reads_fetch_one_node() {
    let mut cfg = YesquelConfig::with_servers(4);
    cfg.dbt = DbtConfig {
        leaf_max_cells: 8,
        ..small_tree_cfg()
    };
    let y = Yesquel::open_with(cfg);
    let dbt = y.create_tree(1).unwrap();
    let n = 400u64;
    let txn = y.begin();
    for i in 0..n {
        dbt.insert(&txn, &key(i), b"v").unwrap();
    }
    txn.commit().unwrap();

    // Warm the cache.
    let txn = y.begin();
    for i in 0..n {
        dbt.lookup(&txn, &key(i)).unwrap();
    }
    txn.commit().unwrap();

    let stats = y.db().stats();
    let before = stats.counter("dbt.node_fetches").get();
    let lookups = 200u64;
    let txn = y.begin();
    for i in 0..lookups {
        assert!(dbt.lookup(&txn, &key(i * 2)).unwrap().is_some());
    }
    txn.commit().unwrap();
    let per_lookup = (stats.counter("dbt.node_fetches").get() - before) as f64 / lookups as f64;
    assert!(
        per_lookup < 1.6,
        "warm lookups should fetch ~1 node, got {per_lookup:.2}"
    );
}

#[test]
fn delete_and_reinsert_round_trips() {
    let y = Yesquel::open(2);
    let dbt = y.create_tree(9).unwrap();
    let txn = y.begin();
    for i in 0..50u64 {
        dbt.insert(&txn, &key(i), b"first").unwrap();
    }
    for i in (0..50u64).step_by(2) {
        assert!(dbt.delete(&txn, &key(i)).unwrap());
    }
    for i in (0..50u64).step_by(4) {
        dbt.insert(&txn, &key(i), b"second").unwrap();
    }
    txn.commit().unwrap();

    let txn = y.begin();
    for i in 0..50u64 {
        let got = dbt.lookup(&txn, &key(i)).unwrap();
        match (i % 4, i % 2) {
            (0, _) => assert_eq!(got.as_deref(), Some(&b"second"[..])),
            (_, 0) => assert_eq!(got, None),
            _ => assert_eq!(got.as_deref(), Some(&b"first"[..])),
        }
    }
    txn.commit().unwrap();
}
