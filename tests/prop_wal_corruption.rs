//! Adversarial corruption of write-ahead-log files: truncations at every
//! byte boundary, seeded byte-flip storms, and garbage tails.  Whatever the
//! damage, recovery must either come back with a **clean prefix** of the
//! original history or fail with a **typed** error ([`Error::WalCorrupt`] /
//! [`Error::Io`]) — never panic, and never invent a transaction that was
//! not acknowledged (no phantoms).
//!
//! The reference history is produced by a real single-server deployment
//! (fsync policy `Always`, so the file content *is* the durable state);
//! each case then mutilates a copy of the log and rebuilds a server from it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::Rng;
use yesquel::common::rand_util::seeded_rng;
use yesquel::common::stats::StatsRegistry;
use yesquel::common::tempdir::TempDir;
use yesquel::common::WalFsyncPolicy;
use yesquel::kv::store::TxnOutcome;
use yesquel::kv::{KvServer, TimestampOracle};
use yesquel::wal::Wal;
use yesquel::{Error, KvConfig, KvDatabase, ObjectId, YesquelConfig};

/// One acknowledged commit of the reference history, in commit order.
#[derive(Debug, Clone)]
struct Acked {
    txn: u64,
    commit_ts: u64,
    obj: ObjectId,
    value: Vec<u8>,
}

/// Runs `n` acknowledged single-key commits against a one-server durable
/// deployment (checkpointing after `checkpoint_after` commits when `Some`),
/// and returns the history plus the bytes of every surviving segment file,
/// ordered by sequence number.
fn build_reference(
    n: usize,
    checkpoint_after: Option<usize>,
) -> (Vec<Acked>, Vec<(String, Vec<u8>)>) {
    let tmp = TempDir::new("yesquel-wal-corruption-src").unwrap();
    let mut cfg = YesquelConfig::with_servers(1);
    cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
    cfg.kv.wal_fsync = WalFsyncPolicy::Always;
    let mut acked = Vec::new();
    {
        let db = KvDatabase::new(cfg);
        let client = db.client();
        for i in 0..n {
            if checkpoint_after == Some(i) {
                db.checkpoint_all().unwrap();
            }
            let obj = ObjectId::new(5, (i % 6) as u64);
            let value = format!("value-{i}").into_bytes();
            let t = client.begin();
            t.put(obj, value.clone()).unwrap();
            let txn = t.id();
            let commit_ts = t.commit().unwrap();
            acked.push(Acked {
                txn,
                commit_ts,
                obj,
                value,
            });
        }
    }
    let server_dir = tmp.path().join("server-0");
    let mut segments: Vec<(String, Vec<u8>)> = std::fs::read_dir(&server_dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    segments.sort();
    (acked, segments)
}

/// Writes the given segment files into a fresh directory and rebuilds a
/// server from them: `Ok` carries the recovered server, `Err` the typed
/// open/recovery error.  A panic anywhere in here is a test failure.
fn rebuild(segments: &[(String, Vec<u8>)]) -> (TempDir, yesquel::Result<Arc<KvServer>>) {
    let tmp = TempDir::new("yesquel-wal-corruption-case").unwrap();
    let dir: PathBuf = tmp.path().join("server-0");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in segments {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
    let result = open_server(&dir);
    (tmp, result)
}

fn open_server(dir: &Path) -> yesquel::Result<Arc<KvServer>> {
    let stats = StatsRegistry::new();
    let wal = Wal::open(dir.to_path_buf(), WalFsyncPolicy::Always, &stats)?;
    let server = KvServer::with_wal(
        0,
        TimestampOracle::new(),
        &KvConfig::default(),
        Some(Arc::new(wal)),
    )?;
    Ok(Arc::new(server))
}

/// The core acceptance check: the recovered server knows a *prefix* of the
/// acknowledged history — some first `k` commits recovered exactly (same
/// timestamp), everything after unknown, and nothing else invented.
/// Returns `k` for reporting.
fn assert_clean_prefix(server: &KvServer, acked: &[Acked], context: &str) -> usize {
    let store = server.store();
    let mut prefix = acked.len();
    for (i, a) in acked.iter().enumerate() {
        match store.outcome(a.txn) {
            Some(TxnOutcome::Committed(ts)) => {
                assert_eq!(
                    ts, a.commit_ts,
                    "{context}: txn {} recovered at wrong timestamp",
                    a.txn
                );
                assert!(
                    i < prefix || prefix == acked.len(),
                    "{context}: txn {} recovered after a gap — not a prefix",
                    a.txn
                );
            }
            _ => {
                if prefix == acked.len() {
                    prefix = i;
                } // else: already inside the lost suffix, fine.
            }
        }
    }
    // Re-scan: nothing after the cut may have survived.
    for a in &acked[prefix..] {
        assert!(
            !matches!(store.outcome(a.txn), Some(TxnOutcome::Committed(_))),
            "{context}: txn {} survived beyond the clean prefix",
            a.txn
        );
    }
    // No phantom versions: every recovered version belongs to a recovered
    // acknowledged commit.
    for a in acked {
        for (ts, v) in store.dump_versions(a.obj) {
            let known = acked
                .iter()
                .any(|b| b.commit_ts == ts && b.obj == a.obj && Some(&b.value[..]) == v.as_deref());
            assert!(
                known,
                "{context}: phantom version (ts {ts}, {:?}) on {}",
                v, a.obj
            );
        }
    }
    prefix
}

/// Accepts the two legal outcomes of recovering a damaged log; anything
/// else — a panic got here first, or an untyped error — fails the test.
fn assert_recovers_or_typed_error(
    result: yesquel::Result<Arc<KvServer>>,
    acked: &[Acked],
    context: &str,
) -> Option<usize> {
    match result {
        Ok(server) => Some(assert_clean_prefix(&server, acked, context)),
        Err(Error::WalCorrupt(_)) | Err(Error::Io(_)) => None,
        Err(e) => panic!("{context}: untyped recovery error {e:?}"),
    }
}

#[test]
fn truncation_at_every_byte_boundary() {
    let (acked, segments) = build_reference(8, None);
    assert_eq!(
        segments.len(),
        1,
        "single segment expected before any checkpoint"
    );
    let (name, bytes) = &segments[0];
    let mut recovered_counts = Vec::new();
    for len in 0..=bytes.len() {
        let cut = vec![(name.clone(), bytes[..len].to_vec())];
        let (_tmp, result) = rebuild(&cut);
        let ctx = format!("truncate to {len}/{} bytes", bytes.len());
        if let Some(k) = assert_recovers_or_typed_error(result, &acked, &ctx) {
            recovered_counts.push(k);
        }
    }
    // Sanity on the sweep itself: the prefix grows monotonically with the
    // cut, reaches the full history at full length, and starts empty.
    assert!(recovered_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*recovered_counts.last().unwrap(), acked.len());
    assert_eq!(recovered_counts[0], 0);
}

#[test]
fn byte_flip_storms_recover_prefix_or_fail_typed() {
    let (acked, segments) = build_reference(12, None);
    let (name, bytes) = &segments[0];
    for seed in [11u64, 23, 47, 101, 907] {
        let mut rng = seeded_rng(seed, 2);
        for round in 0..40 {
            let mut corrupt = bytes.clone();
            let flips = rng.gen_range(1..=4u64);
            for _ in 0..flips {
                let pos = rng.gen_range(0..corrupt.len() as u64) as usize;
                let mask = rng.gen_range(1..=255u64) as u8;
                corrupt[pos] ^= mask;
            }
            let case = vec![(name.clone(), corrupt)];
            let (_tmp, result) = rebuild(&case);
            let ctx = format!("seed {seed} round {round} ({flips} flips)");
            assert_recovers_or_typed_error(result, &acked, &ctx);
        }
    }
}

#[test]
fn garbage_tail_is_dropped_without_losing_history() {
    let (acked, segments) = build_reference(10, None);
    let (name, bytes) = &segments[0];
    for seed in [11u64, 23, 47] {
        let mut rng = seeded_rng(seed, 3);
        for _ in 0..20 {
            let mut padded = bytes.clone();
            let tail = rng.gen_range(1..=64u64) as usize;
            for _ in 0..tail {
                padded.push(rng.gen_range(0..=255u64) as u8);
            }
            let case = vec![(name.clone(), padded)];
            let (_tmp, result) = rebuild(&case);
            let server = result.expect("a garbage tail is a torn write, not corruption");
            let k = assert_clean_prefix(&server, &acked, "garbage tail");
            assert_eq!(
                k,
                acked.len(),
                "a garbage tail must not cost any acknowledged commit"
            );
        }
    }
}

#[test]
fn corrupted_checkpoint_is_a_typed_error_not_a_panic() {
    // Checkpointing truncates the old segments, so the only segment starts
    // with a checkpoint record; corrupting that record leaves nothing to
    // fall back to.
    let (acked, segments) = build_reference(10, Some(5));
    assert_eq!(
        segments.len(),
        1,
        "checkpoint must have truncated old segments"
    );
    let (name, bytes) = &segments[0];

    // Flip one byte inside the checkpoint frame (just past the segment
    // header): the segment is unusable and recovery must say so, typed.
    let mut corrupt = bytes.clone();
    corrupt[24] ^= 0xff;
    let case = vec![(name.clone(), corrupt)];
    let (_tmp, result) = rebuild(&case);
    match result {
        Err(Error::WalCorrupt(_)) => {}
        Err(e) => panic!("expected WalCorrupt, got {e:?}"),
        Ok(_) => panic!("a segment with a corrupt leading checkpoint cannot be usable"),
    }

    // Truncating *after* the checkpoint instead keeps at least the
    // checkpointed prefix: sweep a few cuts through the tail half.
    for len in (bytes.len() / 2..=bytes.len()).step_by(7) {
        let cut = vec![(name.clone(), bytes[..len].to_vec())];
        let (_tmp, result) = rebuild(&cut);
        let ctx = format!("post-checkpoint truncate to {len}");
        assert_recovers_or_typed_error(result, &acked, &ctx);
    }

    // And the intact file recovers everything.
    let (_tmp, result) = rebuild(&segments);
    let server = result.unwrap();
    assert_eq!(
        assert_clean_prefix(&server, &acked, "intact checkpointed log"),
        acked.len()
    );
}
