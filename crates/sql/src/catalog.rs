//! The catalog: table and index schemas, stored in their own DBT.
//!
//! Tree 0 is the catalog tree; its cells map table names to serialized
//! [`TableSchema`]s.  Because the catalog lives in the same transactional
//! storage as the data, DDL is transactional like everything else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_common::encoding::{Reader, Writer};
use yesquel_common::stats::{Counter, Histogram};
use yesquel_common::{Error, ObjectId, Result, TreeId};
use yesquel_kv::Txn;
use yesquel_ydbt::{Dbt, DbtEngine};

use crate::ast::{ColumnDef, CreateIndex, CreateTable};
use crate::row::{encode_index_key, encode_row, encode_rowid_key};
use crate::types::{ColumnType, Value};

/// The catalog lives in tree 0.
pub const CATALOG_TREE: TreeId = 0;
/// Counter object (within the catalog tree) from which new tree ids are
/// allocated.
const TREE_ID_ALLOC_OID: u64 = 2;
/// Counter object (within each table's tree) from which rowids are
/// allocated.
const ROWID_ALLOC_OID: u64 = 3;
/// First tree id handed out to user tables and indexes.
const FIRST_USER_TREE: TreeId = 16;

/// A column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnInfo {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ctype: ColumnType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// Declared PRIMARY KEY.
    pub primary_key: bool,
}

/// A secondary index of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// Index name.
    pub name: String,
    /// Tree storing the index entries.
    pub tree: TreeId,
    /// Indexed columns (positions into the table's column list).
    pub columns: Vec<usize>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Tree storing the rows.
    pub tree: TreeId,
    /// Columns in declaration order.
    pub columns: Vec<ColumnInfo>,
    /// Column that aliases the rowid (`INTEGER PRIMARY KEY`), if any.
    pub rowid_col: Option<usize>,
    /// Secondary indexes.
    pub indexes: Vec<IndexInfo>,
}

impl TableSchema {
    /// Index of the column called `name` (case-insensitive).
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The index named `name`, if any.
    pub fn index_named(&self, name: &str) -> Option<&IndexInfo> {
        self.indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
    }

    /// Serializes the schema for storage in the catalog tree.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(128);
        w.bytes(self.name.as_bytes());
        w.u64(self.tree);
        w.uvarint(self.columns.len() as u64);
        for c in &self.columns {
            w.bytes(c.name.as_bytes());
            w.u8(match c.ctype {
                ColumnType::Integer => 0,
                ColumnType::Real => 1,
                ColumnType::Text => 2,
                ColumnType::Blob => 3,
            });
            w.u8(u8::from(c.not_null));
            w.u8(u8::from(c.primary_key));
        }
        match self.rowid_col {
            Some(i) => {
                w.u8(1);
                w.uvarint(i as u64);
            }
            None => {
                w.u8(0);
            }
        }
        w.uvarint(self.indexes.len() as u64);
        for ix in &self.indexes {
            w.bytes(ix.name.as_bytes());
            w.u64(ix.tree);
            w.u8(u8::from(ix.unique));
            w.uvarint(ix.columns.len() as u64);
            for c in &ix.columns {
                w.uvarint(*c as u64);
            }
        }
        w.finish()
    }

    /// Deserializes a schema stored by [`TableSchema::encode`].
    pub fn decode(buf: &[u8]) -> Result<TableSchema> {
        let mut r = Reader::new(buf);
        let name = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|_| Error::Corruption("bad table name".into()))?;
        let tree = r.u64()?;
        let ncols = r.uvarint()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| Error::Corruption("bad column name".into()))?;
            let ctype = match r.u8()? {
                0 => ColumnType::Integer,
                1 => ColumnType::Real,
                2 => ColumnType::Text,
                3 => ColumnType::Blob,
                t => return Err(Error::Corruption(format!("bad column type tag {t}"))),
            };
            let not_null = r.u8()? != 0;
            let primary_key = r.u8()? != 0;
            columns.push(ColumnInfo {
                name: cname,
                ctype,
                not_null,
                primary_key,
            });
        }
        let rowid_col = if r.u8()? == 1 {
            Some(r.uvarint()? as usize)
        } else {
            None
        };
        let nidx = r.uvarint()? as usize;
        let mut indexes = Vec::with_capacity(nidx);
        for _ in 0..nidx {
            let iname = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| Error::Corruption("bad index name".into()))?;
            let itree = r.u64()?;
            let unique = r.u8()? != 0;
            let nic = r.uvarint()? as usize;
            let mut cols = Vec::with_capacity(nic);
            for _ in 0..nic {
                cols.push(r.uvarint()? as usize);
            }
            indexes.push(IndexInfo {
                name: iname,
                tree: itree,
                columns: cols,
                unique,
            });
        }
        Ok(TableSchema {
            name,
            tree,
            columns,
            rowid_col,
            indexes,
        })
    }
}

/// Counters bumped on the SQL executor's hot paths, resolved from the
/// registry once at catalog construction (the same pattern as the DBT
/// engine's `HotCounters` — a registry lookup per row would be measurable).
pub struct SqlCounters {
    /// Base rows (index entries or primary rows) examined by scans.  With
    /// streaming LIMIT early-exit, a bounded plan bumps this at most
    /// `limit + offset` times.
    pub rows_scanned: Arc<Counter>,
    /// Primary-tree fetch-back lookups performed by non-covering index
    /// scans; a covering scan performs exactly zero.
    pub fetchbacks: Arc<Counter>,
    /// Index scans that ran in covering mode (rows reconstructed from the
    /// index entries alone).
    pub covering_scans: Arc<Counter>,
    /// Statement-cache hits (plan reused without parsing or planning).
    pub stmt_cache_hits: Arc<Counter>,
    /// Statement-cache misses (fresh parse + plan).
    pub stmt_cache_misses: Arc<Counter>,
    /// Statement-cache entries evicted: generation-stale entries swept on
    /// lookup plus capacity evictions.
    pub stmt_cache_evictions: Arc<Counter>,
    /// SQL texts parsed by the session layer.  Re-executing a prepared
    /// handle performs zero parses; tests assert on the delta.
    pub parses: Arc<Counter>,
    /// Statements planned ([`crate::plan_statement`] calls).  A statement-
    /// cache hit or a prepared re-execution performs zero.
    pub plans: Arc<Counter>,
    /// Statement latency by kind (`sql.stmt_us.select` …), recorded by
    /// [`crate::execute_plan`] only while `Obs::timing_on`.
    pub stmt_us: StmtHistograms,
}

/// Per-kind statement-latency histograms (`sql.stmt_us.<kind>`).
pub struct StmtHistograms {
    /// SELECT (including const selects and EXPLAIN variants).
    pub select: Arc<Histogram>,
    /// INSERT.
    pub insert: Arc<Histogram>,
    /// UPDATE.
    pub update: Arc<Histogram>,
    /// DELETE.
    pub delete: Arc<Histogram>,
    /// CREATE TABLE / CREATE INDEX / DROP TABLE.
    pub ddl: Arc<Histogram>,
}

impl SqlCounters {
    fn new(stats: &yesquel_common::stats::StatsRegistry) -> SqlCounters {
        SqlCounters {
            rows_scanned: stats.counter("sql.rows_scanned"),
            fetchbacks: stats.counter("sql.fetchbacks"),
            covering_scans: stats.counter("sql.covering_scans"),
            stmt_cache_hits: stats.counter("sql.stmt_cache_hits"),
            stmt_cache_misses: stats.counter("sql.stmt_cache_misses"),
            stmt_cache_evictions: stats.counter("sql.stmt_cache_evictions"),
            parses: stats.counter("sql.parses"),
            plans: stats.counter("sql.plans"),
            stmt_us: StmtHistograms {
                select: stats.histogram("sql.stmt_us.select"),
                insert: stats.histogram("sql.stmt_us.insert"),
                update: stats.histogram("sql.stmt_us.update"),
                delete: stats.histogram("sql.stmt_us.delete"),
                ddl: stats.histogram("sql.stmt_us.ddl"),
            },
        }
    }
}

/// Per-connection catalog handle: resolves names to schemas and performs
/// DDL.
pub struct Catalog {
    engine: Arc<DbtEngine>,
    tree: Dbt,
    cache: Mutex<HashMap<String, Arc<TableSchema>>>,
    /// Bumped whenever this connection's view of any schema may have
    /// changed (local DDL or cache invalidation).  Statement caches keyed
    /// by SQL text store the generation their plan was built under and
    /// replan when it moves.
    generation: AtomicU64,
    counters: SqlCounters,
}

impl Catalog {
    /// Opens (and bootstraps if needed) the catalog for one connection.
    pub fn open(engine: Arc<DbtEngine>) -> Result<Catalog> {
        // Bootstrap the catalog tree; racing connections may both try, and
        // exactly one create succeeds.
        match engine.create_tree(CATALOG_TREE) {
            Ok(()) => {}
            Err(Error::InvalidArgument(_)) | Err(Error::Conflict(_)) => {}
            Err(e) if e.is_retryable() => {}
            Err(e) => return Err(e),
        }
        let tree = engine.tree(CATALOG_TREE);
        let counters = SqlCounters::new(engine.stats());
        Ok(Catalog {
            engine,
            tree,
            cache: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            counters,
        })
    }

    /// The engine this catalog issues storage operations through.
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// Pre-resolved SQL-layer counters.
    pub fn counters(&self) -> &SqlCounters {
        &self.counters
    }

    /// Current schema generation of this connection (see the field docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    fn catalog_key(name: &str) -> Vec<u8> {
        name.to_ascii_lowercase().into_bytes()
    }

    /// Looks up a table's schema.
    pub fn get_table(&self, txn: &Txn, name: &str) -> Result<Option<Arc<TableSchema>>> {
        let key = name.to_ascii_lowercase();
        if let Some(s) = self.cache.lock().get(&key) {
            return Ok(Some(Arc::clone(s)));
        }
        match self.tree.lookup(txn, &Self::catalog_key(name))? {
            Some(bytes) => {
                let schema = Arc::new(TableSchema::decode(&bytes)?);
                self.cache.lock().insert(key, Arc::clone(&schema));
                Ok(Some(schema))
            }
            None => Ok(None),
        }
    }

    /// Looks up a table's schema, erroring if it does not exist.
    pub fn require_table(&self, txn: &Txn, name: &str) -> Result<Arc<TableSchema>> {
        self.get_table(txn, name)?
            .ok_or_else(|| Error::Schema(format!("no such table: {name}")))
    }

    /// Drops a cached schema (after local DDL, or when a statement fails in
    /// a way that suggests staleness).
    pub fn invalidate(&self, name: &str) {
        self.cache.lock().remove(&name.to_ascii_lowercase());
        self.bump_generation();
    }

    /// Clears the whole schema cache.
    pub fn invalidate_all(&self) {
        self.cache.lock().clear();
        self.bump_generation();
    }

    fn allocate_tree_id(&self) -> Result<TreeId> {
        let raw = self
            .engine
            .kv()
            .allocate(ObjectId::new(CATALOG_TREE, TREE_ID_ALLOC_OID), 1)?;
        Ok(FIRST_USER_TREE + raw)
    }

    /// Allocates `count` consecutive rowids for a table.
    pub fn allocate_rowids(&self, schema: &TableSchema, count: u64) -> Result<i64> {
        let raw = self
            .engine
            .kv()
            .allocate(ObjectId::new(schema.tree, ROWID_ALLOC_OID), count)?;
        Ok(raw as i64 + 1)
    }

    /// Creates a table (and the implicit unique index for a non-integer
    /// primary key).  Returns the new schema.
    pub fn create_table(&self, txn: &Txn, stmt: &CreateTable) -> Result<Arc<TableSchema>> {
        if self.get_table(txn, &stmt.name)?.is_some() {
            if stmt.if_not_exists {
                return self.require_table(txn, &stmt.name);
            }
            return Err(Error::Schema(format!("table {} already exists", stmt.name)));
        }
        if self.name_in_use(txn, &stmt.name)? {
            // get_table found no table of this name, so the collision is
            // with an index.
            return Err(Error::Schema(format!(
                "there is already an index named {}",
                stmt.name
            )));
        }
        if stmt.columns.is_empty() {
            return Err(Error::Schema("a table needs at least one column".into()));
        }
        let mut seen = HashMap::new();
        for (i, c) in stmt.columns.iter().enumerate() {
            if seen.insert(c.name.to_ascii_lowercase(), i).is_some() {
                return Err(Error::Schema(format!("duplicate column name {}", c.name)));
            }
        }

        let tree = self.allocate_tree_id()?;
        let columns: Vec<ColumnInfo> = stmt
            .columns
            .iter()
            .map(|c: &ColumnDef| ColumnInfo {
                name: c.name.clone(),
                ctype: c.ctype,
                not_null: c.not_null,
                primary_key: c.primary_key,
            })
            .collect();
        // INTEGER PRIMARY KEY aliases the rowid.
        let rowid_col = stmt
            .columns
            .iter()
            .position(|c| c.primary_key && c.ctype == ColumnType::Integer);

        let mut indexes = Vec::new();
        // Non-integer primary keys and UNIQUE columns get implicit unique
        // indexes.
        for (i, c) in stmt.columns.iter().enumerate() {
            let needs_unique_index =
                (c.primary_key && rowid_col != Some(i)) || (c.unique && rowid_col != Some(i));
            if needs_unique_index {
                indexes.push(IndexInfo {
                    name: format!("sqlite_autoindex_{}_{}", stmt.name, indexes.len() + 1),
                    tree: self.allocate_tree_id()?,
                    columns: vec![i],
                    unique: true,
                });
            }
        }

        let schema = TableSchema {
            name: stmt.name.clone(),
            tree,
            columns,
            rowid_col,
            indexes,
        };

        // Create the trees and record the schema, all in the caller's
        // transaction.
        self.create_tree_in_txn(txn, tree)?;
        for ix in &schema.indexes {
            self.create_tree_in_txn(txn, ix.tree)?;
        }
        self.tree
            .insert(txn, &Self::catalog_key(&stmt.name), &schema.encode())?;
        let schema = Arc::new(schema);
        self.cache
            .lock()
            .insert(stmt.name.to_ascii_lowercase(), Arc::clone(&schema));
        self.bump_generation();
        Ok(schema)
    }

    /// Writes an empty root for a new tree inside the caller's transaction.
    fn create_tree_in_txn(&self, txn: &Txn, tree: TreeId) -> Result<()> {
        use yesquel_ydbt::{LeafNode, Node};
        if txn.get(ObjectId::root(tree))?.is_some() {
            return Err(Error::Internal(format!("tree {tree} already exists")));
        }
        txn.put(
            ObjectId::root(tree),
            Node::Leaf(LeafNode::empty_root()).encode(),
        )?;
        Ok(())
    }

    /// True if any table or index in the catalog already uses `name`
    /// (tables and indexes share one namespace, as in SQLite).  Walks every
    /// schema in the catalog tree; DDL is rare, so the full scan is fine.
    fn name_in_use(&self, txn: &Txn, name: &str) -> Result<bool> {
        for entry in self.tree.scan(txn, None, None)? {
            let (_, value) = entry?;
            let schema = TableSchema::decode(&value)?;
            if schema.name.eq_ignore_ascii_case(name)
                || schema
                    .indexes
                    .iter()
                    .any(|ix| ix.name.eq_ignore_ascii_case(name))
            {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Creates a secondary index and backfills it from the table's existing
    /// rows.
    pub fn create_index(&self, txn: &Txn, stmt: &CreateIndex) -> Result<Arc<TableSchema>> {
        let schema = self.require_table(txn, &stmt.table)?;
        if schema.index_named(&stmt.name).is_some() {
            if stmt.if_not_exists {
                return Ok(schema);
            }
            return Err(Error::Schema(format!("index {} already exists", stmt.name)));
        }
        if self.name_in_use(txn, &stmt.name)? {
            if stmt.if_not_exists {
                return Ok(schema);
            }
            return Err(Error::Schema(format!(
                "there is already a table or index named {}",
                stmt.name
            )));
        }
        if stmt.columns.is_empty() {
            return Err(Error::Schema("an index needs at least one column".into()));
        }
        let mut col_positions = Vec::with_capacity(stmt.columns.len());
        for c in &stmt.columns {
            let pos = schema
                .col_index(c)
                .ok_or_else(|| Error::Schema(format!("no such column: {c}")))?;
            if col_positions.contains(&pos) {
                return Err(Error::Schema(format!(
                    "duplicate column {c} in index {}",
                    stmt.name
                )));
            }
            col_positions.push(pos);
        }
        let index = IndexInfo {
            name: stmt.name.clone(),
            tree: self.allocate_tree_id()?,
            columns: col_positions.clone(),
            unique: stmt.unique,
        };
        self.create_tree_in_txn(txn, index.tree)?;

        // Backfill from existing rows.
        let table_tree = self.engine.tree(schema.tree);
        let index_tree = self.engine.tree(index.tree);
        // Materialise first: the scan borrows the transaction immutably and
        // inserts need it too, which is fine, but collecting keeps the code
        // simple and tables being indexed are typically freshly created.
        let rows: Vec<(bytes::Bytes, bytes::Bytes)> = table_tree
            .scan(txn, None, None)?
            .collect::<Result<Vec<_>>>()?;
        for (key, value) in rows {
            let rowid = crate::row::decode_rowid_key(&key)?;
            let row = crate::row::decode_row(&value)?;
            let vals: Vec<Value> = index.columns.iter().map(|i| row[*i].clone()).collect();
            // Entry shape must match the executor's index maintenance:
            // unique entries keyed by the values alone (rowid in the value),
            // except that entries containing NULL never conflict and are
            // stored non-unique style, with the rowid as a key suffix.
            if index.unique && !vals.iter().any(Value::is_null) {
                let ikey = encode_index_key(&vals, None);
                if index_tree.lookup(txn, &ikey)?.is_some() {
                    return Err(Error::Constraint(format!(
                        "UNIQUE constraint failed while building index {}",
                        index.name
                    )));
                }
                index_tree.insert(txn, &ikey, &encode_row(&[Value::Int(rowid)]))?;
            } else {
                let ikey = encode_index_key(&vals, Some(rowid));
                index_tree.insert(txn, &ikey, &[])?;
            }
        }

        let mut new_schema = (*schema).clone();
        new_schema.indexes.push(index);
        self.tree
            .insert(txn, &Self::catalog_key(&stmt.table), &new_schema.encode())?;
        let new_schema = Arc::new(new_schema);
        self.cache
            .lock()
            .insert(stmt.table.to_ascii_lowercase(), Arc::clone(&new_schema));
        self.bump_generation();
        Ok(new_schema)
    }

    /// Drops a table: removes its schema entry and all of its trees.
    pub fn drop_table(&self, txn: &Txn, name: &str, if_exists: bool) -> Result<bool> {
        let Some(schema) = self.get_table(txn, name)? else {
            if if_exists {
                return Ok(false);
            }
            return Err(Error::Schema(format!("no such table: {name}")));
        };
        self.tree.delete(txn, &Self::catalog_key(name))?;
        self.engine.drop_tree_in_txn(txn, schema.tree)?;
        for ix in &schema.indexes {
            self.engine.drop_tree_in_txn(txn, ix.tree)?;
        }
        self.invalidate(name);
        Ok(true)
    }

    /// Internal helper for the primary-tree rowid key of a row.
    pub fn rowid_key(rowid: i64) -> Vec<u8> {
        encode_rowid_key(rowid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yesquel_common::DbtConfig;
    use yesquel_kv::KvDatabase;

    fn setup() -> (KvDatabase, Catalog) {
        let db = KvDatabase::with_servers(2);
        let engine = DbtEngine::new(db.client(), DbtConfig::default());
        let catalog = Catalog::open(engine).unwrap();
        (db, catalog)
    }

    fn create(catalog: &Catalog, txn: &Txn, sql: &str) -> Result<Arc<TableSchema>> {
        match crate::parse(sql).unwrap() {
            crate::ast::Statement::CreateTable(ct) => catalog.create_table(txn, &ct),
            crate::ast::Statement::CreateIndex(ci) => catalog.create_index(txn, &ci),
            other => panic!("not DDL: {other:?}"),
        }
    }

    #[test]
    fn duplicate_table_name_rejected() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        create(&catalog, &txn, "CREATE TABLE t (a INT)").unwrap();
        match create(&catalog, &txn, "CREATE TABLE t (b INT)") {
            Err(Error::Schema(m)) => assert!(m.contains("already exists"), "{m}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        // IF NOT EXISTS downgrades the error to a no-op.
        let s = create(&catalog, &txn, "CREATE TABLE IF NOT EXISTS t (b INT)").unwrap();
        assert_eq!(s.columns[0].name, "a");
        txn.commit().unwrap();
    }

    #[test]
    fn duplicate_column_name_rejected() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        match create(&catalog, &txn, "CREATE TABLE t (a INT, A TEXT)") {
            Err(Error::Schema(m)) => assert!(m.contains("duplicate column"), "{m}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        txn.abort();
    }

    #[test]
    fn index_on_unknown_column_rejected() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        create(&catalog, &txn, "CREATE TABLE t (a INT)").unwrap();
        match create(&catalog, &txn, "CREATE INDEX i ON t (nope)") {
            Err(Error::Schema(m)) => assert!(m.contains("no such column"), "{m}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        match create(&catalog, &txn, "CREATE INDEX i ON missing (a)") {
            Err(Error::Schema(m)) => assert!(m.contains("no such table"), "{m}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        txn.abort();
    }

    #[test]
    fn duplicate_index_names_rejected_across_tables() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        create(&catalog, &txn, "CREATE TABLE t (a INT)").unwrap();
        create(&catalog, &txn, "CREATE TABLE u (b INT)").unwrap();
        create(&catalog, &txn, "CREATE INDEX i ON t (a)").unwrap();
        // Same table.
        assert!(matches!(
            create(&catalog, &txn, "CREATE INDEX i ON t (a)"),
            Err(Error::Schema(_))
        ));
        // Other table: indexes share one namespace.
        assert!(matches!(
            create(&catalog, &txn, "CREATE INDEX i ON u (b)"),
            Err(Error::Schema(_))
        ));
        // An index may not shadow a table name, nor a table an index name.
        assert!(matches!(
            create(&catalog, &txn, "CREATE INDEX u ON t (a)"),
            Err(Error::Schema(_))
        ));
        assert!(matches!(
            create(&catalog, &txn, "CREATE TABLE i (x INT)"),
            Err(Error::Schema(_))
        ));
        txn.commit().unwrap();
    }

    #[test]
    fn duplicate_column_in_index_rejected() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        create(&catalog, &txn, "CREATE TABLE t (a INT, b INT)").unwrap();
        match create(&catalog, &txn, "CREATE INDEX i ON t (a, b, A)") {
            Err(Error::Schema(m)) => assert!(m.contains("duplicate column"), "{m}"),
            other => panic!("expected Schema error, got {other:?}"),
        }
        txn.abort();
    }

    #[test]
    fn schema_roundtrips_through_catalog_tree() {
        let (db, catalog) = setup();
        let txn = db.client().begin();
        create(
            &catalog,
            &txn,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, tag TEXT UNIQUE)",
        )
        .unwrap();
        create(&catalog, &txn, "CREATE INDEX by_name ON t (name)").unwrap();
        txn.commit().unwrap();

        // A second catalog over the same storage sees the same schema.
        let engine2 = DbtEngine::new(db.client(), yesquel_common::DbtConfig::default());
        let catalog2 = Catalog::open(engine2).unwrap();
        let txn = db.client().begin();
        let s = catalog2.require_table(&txn, "T").unwrap();
        assert_eq!(s.rowid_col, Some(0));
        assert_eq!(s.columns.len(), 3);
        assert!(s.columns[1].not_null);
        // The UNIQUE column got an implicit unique index plus the named one.
        assert_eq!(s.indexes.len(), 2);
        assert!(s.index_named("by_name").is_some());
        txn.commit().unwrap();
    }
}
