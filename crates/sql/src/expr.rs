//! Expression evaluation.

use std::cmp::Ordering;
use std::sync::Arc;

use yesquel_common::{Error, Result};

use crate::ast::{BinOp, Expr};
use crate::types::Value;

/// The columns visible to an expression: `(table alias or name, column
/// name)` for each slot of the current row.
///
/// The slot list is behind an `Arc`: layouts are built once at plan time
/// and cloned into every operator of every execution, so a clone must be a
/// reference-count bump, not a re-allocation of all the name strings.
#[derive(Debug, Clone, Default)]
pub struct ColumnLayout {
    cols: Arc<Vec<(Option<String>, String)>>,
}

impl ColumnLayout {
    /// Creates an empty layout (expression-only SELECTs).
    pub fn empty() -> Self {
        ColumnLayout {
            cols: Arc::new(Vec::new()),
        }
    }

    /// Creates a layout from `(qualifier, name)` pairs.
    pub fn new(cols: Vec<(Option<String>, String)>) -> Self {
        ColumnLayout {
            cols: Arc::new(cols),
        }
    }

    /// Appends another layout (used when joining tables).
    pub fn extend(&mut self, other: &ColumnLayout) {
        Arc::make_mut(&mut self.cols).extend(other.cols.iter().cloned());
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Column names, unqualified (for result headers).
    pub fn names(&self) -> Vec<String> {
        self.cols.iter().map(|(_, n)| n.clone()).collect()
    }

    /// Resolves a (possibly qualified) column reference to a slot.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut matches = self.cols.iter().enumerate().filter(|(_, (q, n))| {
            n.eq_ignore_ascii_case(name)
                && match (table, q) {
                    (None, _) => true,
                    (Some(t), Some(q)) => q.eq_ignore_ascii_case(t),
                    (Some(_), None) => false,
                }
        });
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(Error::Schema(format!("ambiguous column name: {name}"))),
            (None, _) => Err(Error::Schema(format!(
                "no such column: {}{name}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))),
        }
    }
}

/// Evaluation context: the column layout, the current row, and statement
/// parameters.
pub struct EvalCtx<'a> {
    /// Column layout of `row`.
    pub layout: &'a ColumnLayout,
    /// Current row values.
    pub row: &'a [Value],
    /// Positional parameters bound to the statement.
    pub params: &'a [Value],
}

impl EvalCtx<'_> {
    /// Evaluates `expr` against this context.
    pub fn eval(&self, expr: &Expr) -> Result<Value> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => self
                .params
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::InvalidArgument(format!("missing parameter ?{}", i + 1))),
            Expr::Column { table, name } => {
                let idx = self.layout.resolve(table.as_deref(), name)?;
                Ok(self.row.get(idx).cloned().unwrap_or(Value::Null))
            }
            Expr::Slot(i) => Ok(self.row.get(*i).cloned().unwrap_or(Value::Null)),
            Expr::Neg(e) => {
                let v = self.eval(e)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    other => Ok(Value::Real(-other.as_real()?)),
                }
            }
            Expr::Not(e) => {
                let v = self.eval(e)?;
                if v.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(i64::from(!v.is_truthy())))
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Int(i64::from(v.is_null() != *negated)))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let iv = self.eval(item)?;
                    if v.compare(&iv) == Some(Ordering::Equal) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Int(i64::from(found != *negated)))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr)?;
                let lo = self.eval(low)?;
                let hi = self.eval(high)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v.compare(&lo) != Some(Ordering::Less)
                    && v.compare(&hi) != Some(Ordering::Greater);
                Ok(Value::Int(i64::from(inside != *negated)))
            }
            Expr::Binary { op, left, right } => self.eval_binary(*op, left, right),
            Expr::Function { name, args, star } => self.eval_function(name, args, *star),
        }
    }

    fn eval_binary(&self, op: BinOp, left: &Expr, right: &Expr) -> Result<Value> {
        // Logical operators get SQL three-valued logic with short-circuiting.
        if op == BinOp::And {
            let l = self.eval(left)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Int(0));
            }
            let r = self.eval(right)?;
            if !r.is_null() && !r.is_truthy() {
                return Ok(Value::Int(0));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            return Ok(Value::Int(1));
        }
        if op == BinOp::Or {
            let l = self.eval(left)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Int(1));
            }
            let r = self.eval(right)?;
            if !r.is_null() && r.is_truthy() {
                return Ok(Value::Int(1));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            return Ok(Value::Int(0));
        }

        let l = self.eval(left)?;
        let r = self.eval(right)?;
        match op {
            BinOp::Add => l.add(&r),
            BinOp::Sub => l.sub(&r),
            BinOp::Mul => l.mul(&r),
            BinOp::Div => l.div(&r),
            BinOp::Rem => l.rem(&r),
            BinOp::Concat => l.concat(&r),
            BinOp::Like => l.like(&r),
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                match l.compare(&r) {
                    None => Ok(Value::Null),
                    Some(ord) => {
                        let b = match op {
                            BinOp::Eq => ord == Ordering::Equal,
                            BinOp::Ne => ord != Ordering::Equal,
                            BinOp::Lt => ord == Ordering::Less,
                            BinOp::Le => ord != Ordering::Greater,
                            BinOp::Gt => ord == Ordering::Greater,
                            BinOp::Ge => ord != Ordering::Less,
                            _ => unreachable!(),
                        };
                        Ok(Value::Int(i64::from(b)))
                    }
                }
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_function(&self, name: &str, args: &[Expr], star: bool) -> Result<Value> {
        if star {
            return Err(Error::Unsupported(format!(
                "{name}(*) is only valid as an aggregate in SELECT"
            )));
        }
        let argv: Vec<Value> = args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
        match name {
            "LENGTH" => match argv.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(v) => Ok(Value::Int(v.as_text()?.chars().count() as i64)),
            },
            "UPPER" => match argv.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(v) => Ok(Value::Text(v.as_text()?.to_uppercase())),
            },
            "LOWER" => match argv.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(v) => Ok(Value::Text(v.as_text()?.to_lowercase())),
            },
            "ABS" => match argv.first() {
                Some(Value::Null) | None => Ok(Value::Null),
                Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
                Some(v) => Ok(Value::Real(v.as_real()?.abs())),
            },
            "COALESCE" | "IFNULL" => {
                for v in argv {
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => Err(Error::Unsupported(format!(
                "aggregate {name}() used where a scalar expression is required"
            ))),
            other => Err(Error::Unsupported(format!("unknown function {other}()"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{SelectItem, Statement};
    use crate::parser::parse;

    fn eval_str(sql_expr: &str, layout: &ColumnLayout, row: &[Value]) -> Result<Value> {
        let stmt = parse(&format!("SELECT {sql_expr}"))?;
        let Statement::Select(sel) = stmt else {
            panic!("not a select")
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!("not an expr")
        };
        EvalCtx {
            layout,
            row,
            params: &[],
        }
        .eval(expr)
    }

    #[test]
    fn arithmetic_and_precedence() {
        let l = ColumnLayout::empty();
        assert_eq!(eval_str("1 + 2 * 3", &l, &[]).unwrap(), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3", &l, &[]).unwrap(), Value::Int(9));
        assert_eq!(eval_str("-5 + 2", &l, &[]).unwrap(), Value::Int(-3));
        assert_eq!(eval_str("10 / 4", &l, &[]).unwrap(), Value::Int(2));
        assert_eq!(eval_str("10.0 / 4", &l, &[]).unwrap(), Value::Real(2.5));
        assert_eq!(
            eval_str("'a' || 'b' || 3", &l, &[]).unwrap(),
            Value::Text("ab3".into())
        );
    }

    #[test]
    fn three_valued_logic() {
        let l = ColumnLayout::empty();
        assert_eq!(eval_str("NULL AND 1", &l, &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NULL AND 0", &l, &[]).unwrap(), Value::Int(0));
        assert_eq!(eval_str("NULL OR 1", &l, &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("NULL OR 0", &l, &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NOT NULL", &l, &[]).unwrap(), Value::Null);
        assert_eq!(eval_str("NULL IS NULL", &l, &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("1 IS NOT NULL", &l, &[]).unwrap(), Value::Int(1));
        assert_eq!(eval_str("NULL = NULL", &l, &[]).unwrap(), Value::Null);
    }

    #[test]
    fn comparisons_in_between() {
        let l = ColumnLayout::empty();
        assert_eq!(
            eval_str("2 BETWEEN 1 AND 3", &l, &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("5 NOT BETWEEN 1 AND 3", &l, &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(eval_str("2 IN (1, 2, 3)", &l, &[]).unwrap(), Value::Int(1));
        assert_eq!(
            eval_str("9 NOT IN (1, 2, 3)", &l, &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(eval_str("'abc' LIKE 'a%'", &l, &[]).unwrap(), Value::Int(1));
        assert_eq!(
            eval_str("'abc' NOT LIKE 'a%'", &l, &[]).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn column_resolution() {
        let layout = ColumnLayout::new(vec![
            (Some("u".into()), "id".into()),
            (Some("u".into()), "name".into()),
            (Some("o".into()), "id".into()),
        ]);
        let row = vec![Value::Int(1), Value::Text("alice".into()), Value::Int(9)];
        assert_eq!(
            eval_str("name", &layout, &row).unwrap(),
            Value::Text("alice".into())
        );
        assert_eq!(eval_str("u.id", &layout, &row).unwrap(), Value::Int(1));
        assert_eq!(eval_str("o.id", &layout, &row).unwrap(), Value::Int(9));
        // Unqualified ambiguous reference errors.
        assert!(eval_str("id", &layout, &row).is_err());
        assert!(eval_str("nope", &layout, &row).is_err());
    }

    #[test]
    fn scalar_functions() {
        let l = ColumnLayout::empty();
        assert_eq!(eval_str("LENGTH('hello')", &l, &[]).unwrap(), Value::Int(5));
        assert_eq!(
            eval_str("UPPER('ab')", &l, &[]).unwrap(),
            Value::Text("AB".into())
        );
        assert_eq!(
            eval_str("LOWER('AB')", &l, &[]).unwrap(),
            Value::Text("ab".into())
        );
        assert_eq!(eval_str("ABS(-3)", &l, &[]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_str("COALESCE(NULL, NULL, 7)", &l, &[]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            eval_str("IFNULL(NULL, 'x')", &l, &[]).unwrap(),
            Value::Text("x".into())
        );
        assert!(eval_str("NOSUCHFUNC(1)", &l, &[]).is_err());
    }

    #[test]
    fn params_bind() {
        let l = ColumnLayout::empty();
        let stmt = parse("SELECT ? + ?").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        let ctx = EvalCtx {
            layout: &l,
            row: &[],
            params: &[Value::Int(2), Value::Int(40)],
        };
        assert_eq!(ctx.eval(expr).unwrap(), Value::Int(42));
        let ctx_missing = EvalCtx {
            layout: &l,
            row: &[],
            params: &[Value::Int(2)],
        };
        assert!(ctx_missing.eval(expr).is_err());
    }
}
