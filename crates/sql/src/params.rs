//! Statement parameters: the [`ParamInfo`] table the parser builds while it
//! resolves placeholders, and the bind-time checks built on it.
//!
//! Three placeholder spellings are supported, resolved to 0-based slots of
//! the parameter array handed to every execution:
//!
//! * `?` — anonymous positional: takes the slot after the highest one
//!   assigned so far (so a plain `?, ?, ?` sequence is slots 0, 1, 2);
//! * `?NNN` — numbered positional: slot `NNN - 1` (1-based, as in SQLite),
//!   so `?2, ?1` binds the supplied values in reverse;
//! * `:name` — named: the first occurrence takes the next free slot and
//!   every later occurrence of the same name reuses it.
//!
//! Named and positional placeholders cannot be mixed in one statement —
//! the combination makes the positional order ambiguous to a reader, and
//! rejecting it at parse time turns a silent misbinding into an
//! [`Error::Bind`].  All violations (mixing, arity mismatches, unknown
//! names) surface as [`Error::Bind`] *before* execution touches a row;
//! without this table an out-of-range parameter used to travel all the way
//! into expression evaluation before failing.

use yesquel_common::{Error, Result};

use crate::types::Value;

/// Largest parameter number accepted for `?NNN` (the slot table is dense,
/// so an absurd number would allocate absurd storage).
const MAX_NUMBERED_PARAM: u32 = 999;

/// The parameter table of one parsed statement: one entry per slot, carrying
/// the slot's name when the statement spelled it `:name`.
///
/// Built by the parser, carried alongside the plan (the session's statement
/// cache and every `Prepared` handle keep it), and consulted at bind time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamInfo {
    /// Slot -> name (without the leading colon); `None` for positional.
    names: Vec<Option<String>>,
}

impl ParamInfo {
    /// Number of parameter slots the statement takes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the statement takes no parameters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of slot `i` (0-based), if the statement used `:name` for it.
    pub fn name_of(&self, i: usize) -> Option<&str> {
        self.names.get(i).and_then(|n| n.as_deref())
    }

    /// Slot of the named parameter, accepted with or without the leading
    /// colon.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let bare = name.strip_prefix(':').unwrap_or(name);
        self.names.iter().position(|n| n.as_deref() == Some(bare))
    }

    /// Checks that `supplied` positional values exactly fill the slots.
    pub fn check_arity(&self, supplied: usize) -> Result<()> {
        if supplied == self.names.len() {
            Ok(())
        } else {
            Err(Error::Bind(format!(
                "statement takes {} parameter(s), {} supplied",
                self.names.len(),
                supplied
            )))
        }
    }

    /// Resolves `(name, value)` pairs into per-slot values, rejecting
    /// unknown names and double binds (shared by both named-binding forms).
    fn resolve_pairs(&self, pairs: &[(&str, Value)]) -> Result<Vec<Option<Value>>> {
        let mut out: Vec<Option<Value>> = vec![None; self.names.len()];
        for (name, value) in pairs {
            let i = self.index_of(name).ok_or_else(|| {
                Error::Bind(format!(
                    "statement has no parameter named :{}",
                    name.strip_prefix(':').unwrap_or(name)
                ))
            })?;
            if out[i].replace(value.clone()).is_some() {
                return Err(Error::Bind(format!(
                    "parameter :{} bound twice",
                    self.names[i].as_deref().unwrap_or("?")
                )));
            }
        }
        Ok(out)
    }

    /// Resolves `(name, value)` pairs into the positional parameter array.
    /// Every pair must match a `:name` slot and every slot must be covered;
    /// names are accepted with or without the leading colon.
    pub fn bind_named(&self, pairs: &[(&str, Value)]) -> Result<Vec<Value>> {
        self.resolve_pairs(pairs)?
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| match &self.names[i] {
                    Some(n) => Error::Bind(format!("parameter :{n} is unbound")),
                    None => Error::Bind(format!(
                        "parameter {} has no name; bind it positionally",
                        i + 1
                    )),
                })
            })
            .collect()
    }

    /// Like [`ParamInfo::bind_named`] but fills unbound slots with NULL
    /// instead of erroring — the EXPLAIN form, where parameters are never
    /// evaluated.  Unknown names and double binds still error.
    pub fn bind_named_lenient(&self, pairs: &[(&str, Value)]) -> Result<Vec<Value>> {
        Ok(self
            .resolve_pairs(pairs)?
            .into_iter()
            .map(|v| v.unwrap_or(Value::Null))
            .collect())
    }
}

/// Accumulates placeholder occurrences during the parse; [`finish`] yields
/// the statement's [`ParamInfo`].
///
/// [`finish`]: ParamBuilder::finish
#[derive(Debug, Default)]
pub struct ParamBuilder {
    names: Vec<Option<String>>,
    has_positional: bool,
    has_named: bool,
}

impl ParamBuilder {
    fn check_mix(&self) -> Result<()> {
        if self.has_positional && self.has_named {
            Err(Error::Bind(
                "cannot mix named (:name) and positional (?) parameters in one statement".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Resolves an anonymous `?`: the slot after the highest assigned so far.
    pub fn anon(&mut self) -> Result<usize> {
        self.has_positional = true;
        self.check_mix()?;
        self.names.push(None);
        Ok(self.names.len() - 1)
    }

    /// Resolves a numbered `?NNN` (1-based).
    pub fn numbered(&mut self, n: u32) -> Result<usize> {
        self.has_positional = true;
        self.check_mix()?;
        if n == 0 || n > MAX_NUMBERED_PARAM {
            return Err(Error::Bind(format!(
                "parameter number ?{n} is out of range (1..{MAX_NUMBERED_PARAM})"
            )));
        }
        let slot = (n - 1) as usize;
        while self.names.len() <= slot {
            self.names.push(None);
        }
        Ok(slot)
    }

    /// Resolves a `:name`, reusing the slot of an earlier occurrence.
    pub fn named(&mut self, name: &str) -> Result<usize> {
        self.has_named = true;
        self.check_mix()?;
        if let Some(i) = self.names.iter().position(|n| n.as_deref() == Some(name)) {
            return Ok(i);
        }
        self.names.push(Some(name.to_string()));
        Ok(self.names.len() - 1)
    }

    /// The finished parameter table.
    pub fn finish(self) -> ParamInfo {
        ParamInfo { names: self.names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_params_number_sequentially() {
        let mut b = ParamBuilder::default();
        assert_eq!(b.anon().unwrap(), 0);
        assert_eq!(b.anon().unwrap(), 1);
        let info = b.finish();
        assert_eq!(info.len(), 2);
        assert_eq!(info.name_of(0), None);
        info.check_arity(2).unwrap();
        assert!(matches!(info.check_arity(1), Err(Error::Bind(_))));
        assert!(matches!(info.check_arity(3), Err(Error::Bind(_))));
    }

    #[test]
    fn numbered_params_take_their_slot() {
        let mut b = ParamBuilder::default();
        assert_eq!(b.numbered(2).unwrap(), 1);
        assert_eq!(b.numbered(1).unwrap(), 0);
        // A bare `?` after `?2` takes the next slot (SQLite numbering).
        assert_eq!(b.anon().unwrap(), 2);
        assert_eq!(b.finish().len(), 3);

        let mut b = ParamBuilder::default();
        assert!(matches!(b.numbered(0), Err(Error::Bind(_))));
        assert!(matches!(b.numbered(100_000), Err(Error::Bind(_))));
    }

    #[test]
    fn named_params_deduplicate() {
        let mut b = ParamBuilder::default();
        assert_eq!(b.named("lo").unwrap(), 0);
        assert_eq!(b.named("hi").unwrap(), 1);
        assert_eq!(b.named("lo").unwrap(), 0, "repeated name reuses its slot");
        let info = b.finish();
        assert_eq!(info.len(), 2);
        assert_eq!(info.name_of(0), Some("lo"));
        assert_eq!(info.index_of("hi"), Some(1));
        assert_eq!(info.index_of(":hi"), Some(1));
        assert_eq!(info.index_of("nope"), None);
    }

    #[test]
    fn mixing_named_and_positional_is_a_bind_error() {
        let mut b = ParamBuilder::default();
        b.anon().unwrap();
        assert!(matches!(b.named("x"), Err(Error::Bind(_))));
        let mut b = ParamBuilder::default();
        b.named("x").unwrap();
        assert!(matches!(b.numbered(1), Err(Error::Bind(_))));
    }

    #[test]
    fn bind_named_resolves_and_validates() {
        let mut b = ParamBuilder::default();
        b.named("a").unwrap();
        b.named("b").unwrap();
        let info = b.finish();
        let vals = info
            .bind_named(&[(":b", Value::Int(2)), ("a", Value::Int(1))])
            .unwrap();
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2)]);
        // Unknown name.
        assert!(matches!(
            info.bind_named(&[("c", Value::Null)]),
            Err(Error::Bind(_))
        ));
        // Unbound slot.
        assert!(matches!(
            info.bind_named(&[("a", Value::Null)]),
            Err(Error::Bind(_))
        ));
        // Double bind.
        assert!(matches!(
            info.bind_named(&[("a", Value::Null), (":a", Value::Null), ("b", Value::Null)]),
            Err(Error::Bind(_))
        ));
    }

    #[test]
    fn bind_named_lenient_fills_unbound_with_null() {
        let mut b = ParamBuilder::default();
        b.named("a").unwrap();
        b.named("b").unwrap();
        let info = b.finish();
        assert_eq!(
            info.bind_named_lenient(&[("b", Value::Int(2))]).unwrap(),
            vec![Value::Null, Value::Int(2)]
        );
        // Unknown names and double binds still error.
        assert!(matches!(
            info.bind_named_lenient(&[("c", Value::Null)]),
            Err(Error::Bind(_))
        ));
        assert!(matches!(
            info.bind_named_lenient(&[("a", Value::Null), (":a", Value::Null)]),
            Err(Error::Bind(_))
        ));
    }

    #[test]
    fn bind_named_rejects_positional_slots() {
        let mut b = ParamBuilder::default();
        b.anon().unwrap();
        let info = b.finish();
        assert!(matches!(info.bind_named(&[]), Err(Error::Bind(_))));
    }
}
