//! SQL tokenizer.

use yesquel_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted identifiers are uppercased keywords
    /// only when they match one; the parser compares case-insensitively).
    Ident(String),
    /// Double-quoted or backquoted identifier (never treated as a keyword).
    QuotedIdent(String),
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Punctuation and operators.
    Symbol(Symbol),
    /// Numbered parameter `?NNN` (1-based, as written).
    NumberedParam(u32),
    /// Named parameter `:name` (stored without the colon).
    NamedParam(String),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=` or `==`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.`
    Dot,
    /// `||`
    Concat,
    /// `?` positional parameter
    Question,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `sql`, returning the token list.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            '%' => {
                out.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            '?' => {
                // `?NNN` is a numbered parameter; a bare `?` stays anonymous.
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i > start {
                    let n: u32 = sql[start..i].parse().map_err(|_| {
                        Error::Parse(format!("bad parameter number ?{}", &sql[start..i]))
                    })?;
                    out.push(Token::NumberedParam(n));
                } else {
                    out.push(Token::Symbol(Symbol::Question));
                }
            }
            ':' => {
                // `:name` named parameter.
                i += 1;
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if i == start {
                    return Err(Error::Parse("expected parameter name after ':'".into()));
                }
                out.push(Token::NamedParam(sql[start..i].to_string()));
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::Symbol(Symbol::Concat));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '|'".into()));
                }
            }
            '=' => {
                out.push(Token::Symbol(Symbol::Eq));
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    return Err(Error::Parse("unexpected '!'".into()));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Symbol(Symbol::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            '"' | '`' => {
                let quote = bytes[i];
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Error::Parse("unterminated quoted identifier".into()));
                }
                i += 1;
                out.push(Token::QuotedIdent(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad numeric literal '{text}'")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad integer literal '{text}'")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => return Err(Error::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10;").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Symbol(Symbol::Comma));
        assert!(toks.contains(&Token::Symbol(Symbol::Ge)));
        assert!(toks.contains(&Token::Int(10)));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Symbol::Semicolon));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("INSERT INTO t VALUES ('it''s', \"col name\", 1.5e2)").unwrap();
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::QuotedIdent("col name".into())));
        assert!(toks.contains(&Token::Float(150.0)));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b != c <= d >= e < f > g == h || i ? %").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Symbol::Ne,
                Symbol::Ne,
                Symbol::Le,
                Symbol::Ge,
                Symbol::Lt,
                Symbol::Gt,
                Symbol::Eq,
                Symbol::Concat,
                Symbol::Question,
                Symbol::Percent
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- this is a comment\n + 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("SELECT @x").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn placeholders() {
        let toks = tokenize("a = ? AND b = ?7 AND c = :name AND d = :x_1").unwrap();
        assert!(toks.contains(&Token::Symbol(Symbol::Question)));
        assert!(toks.contains(&Token::NumberedParam(7)));
        assert!(toks.contains(&Token::NamedParam("name".into())));
        assert!(toks.contains(&Token::NamedParam("x_1".into())));
        // A bare colon is not a parameter.
        assert!(tokenize("a = :").is_err());
        assert!(tokenize("a = : name").is_err());
        // '?' inside a string literal stays text.
        let toks = tokenize("SELECT '?1'").unwrap();
        assert!(toks.contains(&Token::Str("?1".into())));
    }

    #[test]
    fn negative_numbers_are_minus_then_literal() {
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Symbol(Symbol::Minus), Token::Int(5)]);
    }
}
