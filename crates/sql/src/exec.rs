//! The executor: a streaming, Volcano-style operator pipeline that pulls
//! rows one at a time out of DBT cursors.
//!
//! Every statement executes entirely within one caller-supplied [`Txn`], so
//! a statement touching a table and its secondary indexes is atomic and
//! reads one consistent snapshot; the session layer decides when that
//! transaction commits (autocommit or explicit BEGIN/COMMIT).
//!
//! ## The operator stack
//!
//! A SELECT compiles to a pull pipeline assembled from the plan's physical
//! properties; an operator that stops pulling (LIMIT) stops everything
//! beneath it, so bounded plans touch only the rows they return:
//!
//! ```text
//!      DbtCursor (RawCursor)            Dbt::seek_last
//!            │ index/row entries              │ one-row MIN/MAX
//!            ▼                                │
//!   ScanOp ─ covering: decode entries         │
//!          ─ else: rowid fetch-back lookup    │
//!          ─ residual WHERE filter            │
//!            │ base rows                      │
//!            ▼                                ▼
//!   [AggregateOp: stream | hash]  ◄──── OneRowOp (minmax)
//!            │ post-aggregation rows [group keys…, aggregates…]
//!            ▼
//!   ProjectOp (output exprs; appends sort keys when a sort is needed)
//!            ▼
//!   [SortOp → TrimOp]   — elided when the scan order subsumes ORDER BY
//!            ▼
//!   [DistinctOp]        — streaming set-based dedup, order-preserving
//!            ▼
//!   [OffsetLimitOp]     — stops pulling after limit+offset rows
//! ```
//!
//! Operators implement [`RowSource`] and own no borrow of the transaction:
//! it is threaded through every [`RowSource::next_row`] call via
//! [`ExecCtx`], which is what lets [`RowStream`]s live inside fully owned
//! values (the facade's pulling `Rows` iterator owns its autocommit
//! transaction *and* its operator tree).
//!
//! Row access follows the plan's [`AccessPath`]: a rowid point lookup is one
//! DBT `lookup` (one node fetch when the client cache is warm — the paper's
//! headline property); an index scan is a bounded DBT range scan over the
//! index tree that either decodes rows straight out of the entries
//! (covering plans — zero fetch-backs) or pays one `lookup` fetch-back per
//! entry; a lone `MIN`/`MAX` over the scanned column is a one-row bounded
//! read (first entry of the range, or a reverse fence descent for `MAX`).
//! UPDATE/DELETE materialise their match set before mutating so the scan
//! never observes its own writes (the classic Halloween problem).

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use yesquel_common::obs::clock;
use yesquel_common::obs::trace::{count, counter_value, TraceCounter};
use yesquel_common::stats::Histogram;
use yesquel_common::{Error, Result};
use yesquel_kv::Txn;
use yesquel_ydbt::{Dbt, RawCursor};

use crate::ast::{Expr, Statement};
use crate::catalog::{Catalog, IndexInfo, TableSchema};
use crate::expr::{ColumnLayout, EvalCtx};
use crate::plan::{
    plan_statement, AccessPath, AggFunc, AggStrategy, AggregatePlan, DmlTarget, InsertPlan,
    OrderSpec, OrderTarget, OutputCol, Plan, RangeBound, SelectPlan,
};
use crate::row::{
    decode_index_entry, decode_index_rowid, decode_row, decode_rowid_key, encode_index_key,
    encode_index_value, encode_row, encode_rowid_key, index_nonnull_floor, prefix_upper_bound,
};
use crate::typed::Row;
use crate::types::{ColumnType, Value};

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Column headers (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub rows_affected: u64,
    /// Rowid assigned to the last inserted row.
    pub last_rowid: Option<i64>,
}

impl ResultSet {
    fn empty() -> ResultSet {
        ResultSet::default()
    }

    /// Position of the named result column (case-insensitive), the typed
    /// alternative to hard-coding `rows[i][2]`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// The column header as the shared `Arc` form [`Row`]s carry.
    fn header(&self) -> Arc<[String]> {
        Arc::from(self.columns.clone())
    }

    /// Iterates the result as typed [`Row`]s (values cloned; the header is
    /// shared).  Consume the set with `into_iter()` to avoid the clones.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        let header = self.header();
        self.rows
            .iter()
            .map(move |r| Row::new(Arc::clone(&header), r.clone()))
    }
}

impl IntoIterator for ResultSet {
    type Item = Row;
    type IntoIter = ResultRows;

    /// Consumes the result into typed [`Row`]s without cloning the values
    /// (the header moves too).
    fn into_iter(self) -> ResultRows {
        ResultRows {
            header: Arc::from(self.columns),
            rows: self.rows.into_iter(),
        }
    }
}

/// Consuming [`Row`] iterator over a [`ResultSet`].
pub struct ResultRows {
    header: Arc<[String]>,
    rows: std::vec::IntoIter<Vec<Value>>,
}

impl Iterator for ResultRows {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        self.rows
            .next()
            .map(|r| Row::new(Arc::clone(&self.header), r))
    }
}

/// Everything an operator needs per pull that it must not own: the catalog
/// (engine + counters), the transaction, and the statement parameters.
pub struct ExecCtx<'a> {
    /// The catalog the statement was planned against.
    pub catalog: &'a Catalog,
    /// The transaction every read and write goes through.
    pub txn: &'a Txn,
    /// Positional parameters bound to the statement.
    pub params: &'a [Value],
}

/// A pull-based row operator: the executor's one interface.  `next_row`
/// returns the next row of the operator's output, or `None` at the end.
pub trait RowSource {
    /// Pulls the next row.
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>>;
}

/// An open, pullable query: column headers plus the operator stack.  Owns
/// no borrow of the transaction — the caller passes it (via [`ExecCtx`]) on
/// every pull, which is what lets a session hand out a `Rows` iterator that
/// owns both its transaction and this stream.
pub struct RowStream {
    columns: Vec<String>,
    src: Box<dyn RowSource + Send>,
}

impl RowStream {
    /// Column headers of the result.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Pulls the next output row.
    pub fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        self.src.next_row(cx)
    }
}

/// Plans and executes one statement inside `txn`.  Transaction control
/// statements are rejected here; the session intercepts them.
pub fn execute(
    catalog: &Catalog,
    txn: &Txn,
    stmt: &Statement,
    params: &[Value],
) -> Result<ResultSet> {
    let plan = plan_statement(catalog, txn, stmt)?;
    execute_plan(catalog, txn, &plan, params)
}

/// Executes an already-built plan inside `txn`, recording statement latency
/// by kind (`sql.stmt_us.<kind>`) while `Obs::timing_on`.
pub fn execute_plan(
    catalog: &Catalog,
    txn: &Txn,
    plan: &Plan,
    params: &[Value],
) -> Result<ResultSet> {
    let t0 = catalog.engine().stats().obs().timing_on().then(clock::now);
    let res = execute_plan_inner(catalog, txn, plan, params);
    if let Some(t0) = t0 {
        if res.is_ok() {
            stmt_hist(catalog, plan).record(clock::elapsed_us(t0));
        }
    }
    res
}

/// The per-kind statement-latency histogram a plan's execution charges.
fn stmt_hist<'a>(catalog: &'a Catalog, plan: &Plan) -> &'a Arc<Histogram> {
    let h = &catalog.counters().stmt_us;
    match plan {
        Plan::ConstSelect(_) | Plan::Select(_) | Plan::Explain(_) | Plan::ExplainAnalyze(_) => {
            &h.select
        }
        Plan::Insert(_) => &h.insert,
        Plan::Update(_) => &h.update,
        Plan::Delete(_) => &h.delete,
        Plan::CreateTable(_) | Plan::CreateIndex(_) | Plan::DropTable { .. } => &h.ddl,
    }
}

/// [`execute_plan`] without the latency record (so EXPLAIN ANALYZE's inner
/// execution is not charged twice).
fn execute_plan_inner(
    catalog: &Catalog,
    txn: &Txn,
    plan: &Plan,
    params: &[Value],
) -> Result<ResultSet> {
    let cx = ExecCtx {
        catalog,
        txn,
        params,
    };
    match plan {
        Plan::ConstSelect(_) | Plan::Select(_) | Plan::Explain(_) => {
            let mut stream = open_stream(catalog, txn, plan, params)?;
            let mut rows = Vec::new();
            while let Some(row) = stream.next_row(&cx)? {
                rows.push(row);
            }
            Ok(ResultSet {
                columns: stream.columns,
                rows,
                rows_affected: 0,
                last_rowid: None,
            })
        }
        Plan::ExplainAnalyze(inner) => exec_explain_analyze(&cx, inner),
        Plan::Insert(p) => exec_insert(&cx, p),
        Plan::Update(p) => exec_update(&cx, p),
        Plan::Delete(p) => exec_delete(&cx, p),
        Plan::CreateTable(ct) => {
            catalog.create_table(txn, ct)?;
            Ok(ResultSet::empty())
        }
        Plan::CreateIndex(ci) => {
            catalog.create_index(txn, ci)?;
            Ok(ResultSet::empty())
        }
        Plan::DropTable { name, if_exists } => {
            catalog.drop_table(txn, name, *if_exists)?;
            Ok(ResultSet::empty())
        }
    }
}

/// Opens a query plan as a pullable [`RowStream`].  Only query-shaped plans
/// (SELECT, expression-only SELECT, EXPLAIN) can stream; DML and DDL have
/// no rows to pull.
pub fn open_stream(
    catalog: &Catalog,
    txn: &Txn,
    plan: &Plan,
    params: &[Value],
) -> Result<RowStream> {
    let cx = ExecCtx {
        catalog,
        txn,
        params,
    };
    match plan {
        Plan::ConstSelect(output) => Ok(RowStream {
            columns: output.iter().map(|o| o.name.clone()).collect(),
            src: Box::new(ConstOp {
                exprs: output.iter().map(|o| o.expr.clone()).collect(),
                done: false,
            }),
        }),
        Plan::Explain(inner) => Ok(RowStream {
            columns: vec!["plan".to_string()],
            src: Box::new(OneRowOp {
                row: Some(vec![Value::Text(inner.describe())]),
            }),
        }),
        Plan::ExplainAnalyze(inner) => {
            // The report needs the whole execution drained, so the "stream"
            // is the materialised report replayed row by row.
            let rs = exec_explain_analyze(&cx, inner)?;
            Ok(RowStream {
                columns: rs.columns,
                src: Box::new(CollectedOp {
                    rows: rs.rows.into_iter(),
                }),
            })
        }
        Plan::Select(p) => open_select(&cx, p, None),
        _ => Err(Error::InvalidArgument(
            "only SELECT and EXPLAIN statements produce a row stream".into(),
        )),
    }
}

/// Evaluates a constant expression (no column references).
fn const_eval(e: &Expr, params: &[Value]) -> Result<Value> {
    EvalCtx {
        layout: &ColumnLayout::empty(),
        row: &[],
        params,
    }
    .eval(e)
}

/// An exact rowid from a value, if the value can ever equal a rowid.
fn value_to_rowid(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Real(r) if r.fract() == 0.0 && *r >= i64::MIN as f64 && *r <= i64::MAX as f64 => {
            Some(*r as i64)
        }
        _ => None,
    }
}

/// A rowid-range endpoint resolved to an integer.
enum RowidBound {
    /// The predicate can never hold: the scan is empty.
    Empty,
    /// The bound does not constrain the scan.
    Unbounded,
    /// Scan from/to this rowid (inclusive).
    At(i64),
}

/// Resolves a lower bound on the rowid.  Non-numeric bound values follow
/// SQL's cross-class ordering (numbers sort below text and blobs), so
/// `rowid > 'x'` is always false and `rowid > NULL` is never true.
fn rowid_lower_bound(v: &Value, inclusive: bool) -> RowidBound {
    match v {
        Value::Null | Value::Text(_) | Value::Blob(_) => RowidBound::Empty,
        Value::Int(i) => {
            if inclusive {
                RowidBound::At(*i)
            } else if *i == i64::MAX {
                RowidBound::Empty
            } else {
                RowidBound::At(*i + 1)
            }
        }
        Value::Real(r) => {
            let b = if inclusive { r.ceil() } else { r.floor() + 1.0 };
            if b > i64::MAX as f64 {
                RowidBound::Empty
            } else if b < i64::MIN as f64 {
                RowidBound::Unbounded
            } else {
                RowidBound::At(b as i64)
            }
        }
    }
}

/// Resolves an upper bound on the rowid (`rowid < 'x'` is always true).
fn rowid_upper_bound(v: &Value, inclusive: bool) -> RowidBound {
    match v {
        Value::Null => RowidBound::Empty,
        Value::Text(_) | Value::Blob(_) => RowidBound::Unbounded,
        Value::Int(i) => {
            if inclusive {
                RowidBound::At(*i)
            } else if *i == i64::MIN {
                RowidBound::Empty
            } else {
                RowidBound::At(*i - 1)
            }
        }
        Value::Real(r) => {
            let b = if inclusive { r.floor() } else { r.ceil() - 1.0 };
            if b < i64::MIN as f64 {
                RowidBound::Empty
            } else if b > i64::MAX as f64 {
                RowidBound::Unbounded
            } else {
                RowidBound::At(b as i64)
            }
        }
    }
}

/// Encoded start key for an index range lower bound; `None` = empty scan.
fn index_lower_key(prefix: &[u8], b: &RangeBound, params: &[Value]) -> Result<Option<Vec<u8>>> {
    let v = const_eval(&b.expr, params)?;
    if v.is_null() {
        return Ok(None);
    }
    let mut k = prefix.to_vec();
    encode_index_value(&mut k, &v);
    if b.inclusive {
        Ok(Some(k))
    } else {
        // Skip every entry whose column value equals the bound: start at the
        // successor of the value prefix (entries append a rowid suffix, so a
        // plain +1 on the last byte is not enough).
        Ok(prefix_upper_bound(&k))
    }
}

enum IndexUpper {
    Empty,
    Unbounded,
    Key(Vec<u8>),
}

/// Encoded end key (exclusive) for an index range upper bound.
fn index_upper_key(prefix: &[u8], b: &RangeBound, params: &[Value]) -> Result<IndexUpper> {
    let v = const_eval(&b.expr, params)?;
    if v.is_null() {
        return Ok(IndexUpper::Empty);
    }
    let mut k = prefix.to_vec();
    encode_index_value(&mut k, &v);
    if b.inclusive {
        // Include entries equal to the bound (they carry a rowid suffix):
        // end at the successor of the value prefix.
        match prefix_upper_bound(&k) {
            Some(k) => Ok(IndexUpper::Key(k)),
            None => Ok(IndexUpper::Unbounded),
        }
    } else {
        Ok(IndexUpper::Key(k))
    }
}

/// Resolved byte-key bounds of an index scan.  `None` = provably empty.
struct IndexBounds {
    /// Encoded equality prefix.
    prefix: Vec<u8>,
    /// Inclusive start key.
    lo: Vec<u8>,
    /// Exclusive end key; `None` = to the end of the tree.
    hi: Option<Vec<u8>>,
}

/// Computes the byte-key bounds of an index scan from the plan's equality
/// probes and range bounds.
fn index_scan_bounds(
    eq: &[Expr],
    lo: &Option<RangeBound>,
    hi: &Option<RangeBound>,
    params: &[Value],
) -> Result<Option<IndexBounds>> {
    let mut prefix = Vec::new();
    for e in eq {
        let v = const_eval(e, params)?;
        if v.is_null() {
            // Equality with NULL matches nothing.
            return Ok(None);
        }
        encode_index_value(&mut prefix, &v);
    }
    let lo_key = match lo {
        None => prefix.clone(),
        Some(b) => match index_lower_key(&prefix, b, params)? {
            Some(k) => k,
            None => return Ok(None),
        },
    };
    let hi_key = match hi {
        None => prefix_upper_bound(&prefix),
        Some(b) => match index_upper_key(&prefix, b, params)? {
            IndexUpper::Empty => return Ok(None),
            IndexUpper::Unbounded => prefix_upper_bound(&prefix),
            IndexUpper::Key(k) => Some(k),
        },
    };
    Ok(Some(IndexBounds {
        prefix,
        lo: lo_key,
        hi: hi_key,
    }))
}

/// Optional `[start, end)` byte keys of a rowid scan (`None` side =
/// unbounded).
type RowidKeys = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Resolved rowid-scan bounds.  `None` = provably empty.
fn rowid_scan_bounds(
    lo: &Option<RangeBound>,
    hi: &Option<RangeBound>,
    params: &[Value],
) -> Result<Option<RowidKeys>> {
    let lo_key = match lo {
        None => None,
        Some(b) => match rowid_lower_bound(&const_eval(&b.expr, params)?, b.inclusive) {
            RowidBound::Empty => return Ok(None),
            RowidBound::Unbounded => None,
            RowidBound::At(i) => Some(encode_rowid_key(i)),
        },
    };
    let hi_key = match hi {
        None => None,
        Some(b) => match rowid_upper_bound(&const_eval(&b.expr, params)?, b.inclusive) {
            RowidBound::Empty => return Ok(None),
            RowidBound::Unbounded => None,
            RowidBound::At(i) => {
                // Inclusive end: the smallest key above rowid i.
                let mut k = encode_rowid_key(i);
                k.push(0);
                Some(k)
            }
        },
    };
    Ok(Some((lo_key, hi_key)))
}

// ---------------------------------------------------------------------------
// Scan operator
// ---------------------------------------------------------------------------

/// How [`ScanOp`] reaches its entries.
enum ScanKind {
    /// Provably empty (NULL probe, contradictory bounds).
    Empty,
    /// One rowid point lookup, already performed at open.
    Point(Option<(i64, Vec<Value>)>),
    /// Bounded cursor over the primary tree.
    Rowid(RawCursor),
    /// Bounded cursor over an index tree.
    Index {
        /// The cursor over the entries.
        cur: RawCursor,
        /// Position of the index in the schema.
        index: usize,
        /// Decode rows from the entries instead of fetching them back.
        covering: bool,
    },
}

/// The leaf operator: walks the access path, reconstructs base rows, and
/// applies the residual filter.  Yields `(rowid, row)` pairs through
/// [`ScanOp::next_base`] (the DML shape) and plain rows through
/// [`RowSource`].
struct ScanOp {
    schema: std::sync::Arc<TableSchema>,
    /// Handle to the primary tree, resolved once at open (fetch-backs pay
    /// one lookup per row; they should not also pay a handle construction).
    table: Dbt,
    kind: ScanKind,
    filter: Option<std::sync::Arc<Expr>>,
    layout: ColumnLayout,
}

impl ScanOp {
    /// Opens the access path: evaluates bound expressions, seeks cursors,
    /// performs the point lookup.  `covering` must only be set when the
    /// plan proved coverage.
    fn open(
        cx: &ExecCtx<'_>,
        schema: std::sync::Arc<TableSchema>,
        layout: ColumnLayout,
        access: &AccessPath,
        filter: Option<std::sync::Arc<Expr>>,
        covering: bool,
    ) -> Result<ScanOp> {
        let table = cx.catalog.engine().tree(schema.tree);
        let kind = match access {
            AccessPath::RowidPoint(e) => {
                let v = const_eval(e, cx.params)?;
                match value_to_rowid(&v) {
                    None => ScanKind::Empty,
                    Some(rid) => match table.lookup(cx.txn, &encode_rowid_key(rid))? {
                        None => ScanKind::Empty,
                        Some(bytes) => {
                            cx.catalog.counters().rows_scanned.inc();
                            count(TraceCounter::RowsScanned, 1);
                            ScanKind::Point(Some((rid, decode_row(&bytes)?)))
                        }
                    },
                }
            }
            AccessPath::RowidRange { lo, hi } => match rowid_scan_bounds(lo, hi, cx.params)? {
                None => ScanKind::Empty,
                Some((lo_key, hi_key)) => {
                    ScanKind::Rowid(table.scan_raw(cx.txn, lo_key.as_deref(), hi_key.as_deref())?)
                }
            },
            AccessPath::FullScan => ScanKind::Rowid(table.scan_raw(cx.txn, None, None)?),
            AccessPath::IndexScan { index, eq, lo, hi } => {
                match index_scan_bounds(eq, lo, hi, cx.params)? {
                    None => ScanKind::Empty,
                    Some(b) => {
                        let ix = &schema.indexes[*index];
                        let itree = cx.catalog.engine().tree(ix.tree);
                        if covering {
                            cx.catalog.counters().covering_scans.inc();
                        }
                        ScanKind::Index {
                            cur: itree.scan_raw(cx.txn, Some(&b.lo), b.hi.as_deref())?,
                            index: *index,
                            covering,
                        }
                    }
                }
            }
        };
        Ok(ScanOp {
            schema,
            table,
            kind,
            filter,
            layout,
        })
    }

    /// Pulls the next base row that passes the residual filter.
    fn next_base(&mut self, cx: &ExecCtx<'_>) -> Result<Option<(i64, Vec<Value>)>> {
        loop {
            let counters = cx.catalog.counters();
            let (rid, row) = match &mut self.kind {
                ScanKind::Empty => return Ok(None),
                ScanKind::Point(slot) => match slot.take() {
                    None => return Ok(None),
                    Some(pair) => pair,
                },
                ScanKind::Rowid(cur) => match cur.next_entry(cx.txn)? {
                    None => return Ok(None),
                    Some((key, value)) => {
                        counters.rows_scanned.inc();
                        count(TraceCounter::RowsScanned, 1);
                        (decode_rowid_key(&key)?, decode_row(&value)?)
                    }
                },
                ScanKind::Index {
                    cur,
                    index,
                    covering,
                } => {
                    let ix = &self.schema.indexes[*index];
                    match cur.next_entry(cx.txn)? {
                        None => return Ok(None),
                        Some((key, value)) => {
                            counters.rows_scanned.inc();
                            count(TraceCounter::RowsScanned, 1);
                            if *covering {
                                decode_covered_row(&self.schema, ix, &key, &value)?
                            } else {
                                let rid = if value.is_empty() {
                                    decode_index_rowid(&key)?
                                } else {
                                    // Unique-index entry: the value is the
                                    // rowid record.
                                    decode_row(&value)?
                                        .first()
                                        .and_then(value_to_rowid)
                                        .ok_or_else(|| {
                                            Error::Corruption(format!(
                                                "bad unique index entry in {}",
                                                ix.name
                                            ))
                                        })?
                                };
                                counters.fetchbacks.inc();
                                count(TraceCounter::FetchBacks, 1);
                                let row_bytes = self
                                    .table
                                    .lookup(cx.txn, &encode_rowid_key(rid))?
                                    .ok_or_else(|| {
                                        Error::Corruption(format!(
                                            "index {} refers to missing rowid {rid} of table {}",
                                            ix.name, self.schema.name
                                        ))
                                    })?;
                                (rid, decode_row(&row_bytes)?)
                            }
                        }
                    }
                }
            };
            let keep = match &self.filter {
                None => true,
                Some(f) => EvalCtx {
                    layout: &self.layout,
                    row: &row,
                    params: cx.params,
                }
                .eval(f.as_ref())?
                .is_truthy(),
            };
            if keep {
                return Ok(Some((rid, row)));
            }
        }
    }
}

impl RowSource for ScanOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        Ok(self.next_base(cx)?.map(|(_, row)| row))
    }
}

/// Reconstructs a base row from a covering-index entry: decoded indexed
/// values at their column positions, the rowid at the rowid column, NULL in
/// every slot the statement never reads.
fn decode_covered_row(
    schema: &TableSchema,
    ix: &IndexInfo,
    key: &[u8],
    value: &[u8],
) -> Result<(i64, Vec<Value>)> {
    let types: Vec<ColumnType> = ix
        .columns
        .iter()
        .map(|&c| schema.columns[c].ctype)
        .collect();
    let (vals, rid) = decode_index_entry(key, value, &types)?;
    let mut row = vec![Value::Null; schema.columns.len()];
    for (v, &c) in vals.into_iter().zip(&ix.columns) {
        row[c] = v;
    }
    if let Some(rc) = schema.rowid_col {
        row[rc] = Value::Int(rid);
    }
    Ok((rid, row))
}

// ---------------------------------------------------------------------------
// Stateless / one-shot sources
// ---------------------------------------------------------------------------

/// Expression-only SELECT: one row of constant expressions.
struct ConstOp {
    exprs: Vec<Expr>,
    done: bool,
}

impl RowSource for ConstOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let ctx = EvalCtx {
            layout: &ColumnLayout::empty(),
            row: &[],
            params: cx.params,
        };
        let row: Vec<Value> = self
            .exprs
            .iter()
            .map(|e| ctx.eval(e))
            .collect::<Result<_>>()?;
        Ok(Some(row))
    }
}

/// A single precomputed row (EXPLAIN output, one-row MIN/MAX reads).
struct OneRowOp {
    row: Option<Vec<Value>>,
}

impl RowSource for OneRowOp {
    fn next_row(&mut self, _cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        Ok(self.row.take())
    }
}

/// Replays rows materialised up front (the EXPLAIN ANALYZE report, which
/// needs the whole execution drained before its first row exists).
struct CollectedOp {
    rows: std::vec::IntoIter<Vec<Value>>,
}

impl RowSource for CollectedOp {
    fn next_row(&mut self, _cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        Ok(self.rows.next())
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Running state of one aggregate within one group.
enum AccState {
    CountStar(i64),
    Count(i64),
    /// Integer sum until a non-integer input promotes it to real; `None`
    /// while no non-NULL input has been seen.
    Sum(Option<SumVal>),
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

enum SumVal {
    Int(i64),
    Real(f64),
}

impl AccState {
    fn new(func: AggFunc) -> AccState {
        match func {
            AggFunc::CountStar => AccState::CountStar(0),
            AggFunc::Count => AccState::Count(0),
            AggFunc::Sum => AccState::Sum(None),
            AggFunc::Avg => AccState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AccState::Min(None),
            AggFunc::Max => AccState::Max(None),
        }
    }

    /// Folds one input value in (`None` only for `COUNT(*)`).
    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AccState::CountStar(n) => *n += 1,
            AccState::Count(n) => {
                if matches!(v, Some(ref x) if !x.is_null()) {
                    *n += 1;
                }
            }
            AccState::Sum(state) => {
                let Some(v) = v else { return Ok(()) };
                if v.is_null() {
                    return Ok(());
                }
                let next = match (state.take(), &v) {
                    (None, Value::Int(i)) => SumVal::Int(*i),
                    (Some(SumVal::Int(a)), Value::Int(b)) => SumVal::Int(
                        a.checked_add(*b)
                            .ok_or_else(|| Error::Type("integer overflow in SUM()".into()))?,
                    ),
                    // A non-integer input promotes the whole sum to real
                    // (text coerces numerically, like SQLite; non-numeric
                    // text counts as 0).
                    (prev, other) => {
                        let acc = match prev {
                            None => 0.0,
                            Some(SumVal::Int(a)) => a as f64,
                            Some(SumVal::Real(a)) => a,
                        };
                        SumVal::Real(acc + other.as_real().unwrap_or(0.0))
                    }
                };
                *state = Some(next);
            }
            AccState::Avg { sum, n } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *sum += v.as_real().unwrap_or(0.0);
                        *n += 1;
                    }
                }
            }
            AccState::Min(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .map(|b| v.sort_cmp(b) == Ordering::Less)
                            .unwrap_or(true)
                    {
                        *best = Some(v);
                    }
                }
            }
            AccState::Max(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .map(|b| v.sort_cmp(b) == Ordering::Greater)
                            .unwrap_or(true)
                    {
                        *best = Some(v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Final value of the aggregate for its group.
    fn finish(self) -> Value {
        match self {
            AccState::CountStar(n) | AccState::Count(n) => Value::Int(n),
            AccState::Sum(None) => Value::Null,
            AccState::Sum(Some(SumVal::Int(i))) => Value::Int(i),
            AccState::Sum(Some(SumVal::Real(r))) => Value::Real(r),
            AccState::Avg { n: 0, .. } => Value::Null,
            AccState::Avg { sum, n } => Value::Real(sum / n as f64),
            AccState::Min(best) | AccState::Max(best) => best.unwrap_or(Value::Null),
        }
    }
}

/// Groups its input and folds the aggregates, yielding one row per group in
/// the layout `[group key values…, aggregate results…]`.
///
/// In **stream** mode (group keys are a prefix of the scan order) only one
/// group's state is live at a time and each group row is emitted the moment
/// the key changes — an early-exiting consumer stops the scan after the
/// groups it needs.  In **hash** mode the whole input is drained into a map
/// keyed by the order-preserving encoding of the group key (so groups with
/// SQL-equal keys — `2` and `2.0` — merge, and output order is
/// deterministic: group-key order).
struct AggregateOp {
    input: Box<dyn RowSource + Send>,
    layout: ColumnLayout,
    plan: std::sync::Arc<AggregatePlan>,
    hash: bool,
    // Stream state.
    cur: Option<(Vec<Value>, Vec<AccState>)>,
    emitted_any: bool,
    input_done: bool,
    // Hash state.
    drained: Option<std::collections::btree_map::IntoIter<Vec<u8>, Group>>,
}

/// One group under accumulation: its key values and aggregate states.
type Group = (Vec<Value>, Vec<AccState>);

impl AggregateOp {
    fn new(
        input: Box<dyn RowSource + Send>,
        layout: ColumnLayout,
        plan: std::sync::Arc<AggregatePlan>,
    ) -> AggregateOp {
        AggregateOp {
            input,
            layout,
            hash: plan.strategy == AggStrategy::Hash,
            plan,
            cur: None,
            emitted_any: false,
            input_done: false,
            drained: None,
        }
    }

    fn fresh_accs(&self) -> Vec<AccState> {
        self.plan
            .aggs
            .iter()
            .map(|a| AccState::new(a.func))
            .collect()
    }

    fn eval_keys(&self, row: &[Value], params: &[Value]) -> Result<Vec<Value>> {
        let ctx = EvalCtx {
            layout: &self.layout,
            row,
            params,
        };
        self.plan.group_by.iter().map(|g| ctx.eval(g)).collect()
    }

    fn accumulate(&self, accs: &mut [AccState], row: &[Value], params: &[Value]) -> Result<()> {
        let ctx = EvalCtx {
            layout: &self.layout,
            row,
            params,
        };
        for (acc, spec) in accs.iter_mut().zip(&self.plan.aggs) {
            let v = match &spec.arg {
                None => None,
                Some(e) => Some(ctx.eval(e)?),
            };
            acc.update(v)?;
        }
        Ok(())
    }

    fn finish_group(keys: Vec<Value>, accs: Vec<AccState>) -> Vec<Value> {
        let mut row = keys;
        row.extend(accs.into_iter().map(AccState::finish));
        row
    }

    fn next_stream(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        loop {
            if self.input_done {
                if let Some((keys, accs)) = self.cur.take() {
                    self.emitted_any = true;
                    return Ok(Some(Self::finish_group(keys, accs)));
                }
                // Zero input rows without GROUP BY still yields one row of
                // defaults (COUNT = 0, SUM = NULL, ...).
                if self.plan.group_by.is_empty() && !self.emitted_any {
                    self.emitted_any = true;
                    return Ok(Some(Self::finish_group(vec![], self.fresh_accs())));
                }
                return Ok(None);
            }
            match self.input.next_row(cx)? {
                None => {
                    self.input_done = true;
                }
                Some(row) => {
                    let keys = self.eval_keys(&row, cx.params)?;
                    let same = match &self.cur {
                        Some((ck, _)) => ck
                            .iter()
                            .zip(&keys)
                            .all(|(a, b)| a.sort_cmp(b) == Ordering::Equal),
                        None => false,
                    };
                    if same || self.cur.is_none() {
                        let (group_keys, mut accs) = match self.cur.take() {
                            Some(x) => x,
                            None => (keys, self.fresh_accs()),
                        };
                        self.accumulate(&mut accs, &row, cx.params)?;
                        self.cur = Some((group_keys, accs));
                    } else {
                        // Key change: emit the finished group, start the new
                        // one with this row.
                        let mut accs = self.fresh_accs();
                        self.accumulate(&mut accs, &row, cx.params)?;
                        let done = self.cur.replace((keys, accs)).expect("checked");
                        self.emitted_any = true;
                        return Ok(Some(Self::finish_group(done.0, done.1)));
                    }
                }
            }
        }
    }

    fn next_hash(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.drained.is_none() {
            let mut groups: BTreeMap<Vec<u8>, Group> = BTreeMap::new();
            while let Some(row) = self.input.next_row(cx)? {
                let keys = self.eval_keys(&row, cx.params)?;
                let mut enc = Vec::with_capacity(keys.len() * 10);
                for k in &keys {
                    encode_index_value(&mut enc, k);
                }
                // `groups` is local, so the entry borrow and the `&self` of
                // accumulate() do not conflict; fresh state is built only
                // when the group is first seen.
                let entry = groups
                    .entry(enc)
                    .or_insert_with(|| (keys, self.fresh_accs()));
                self.accumulate(&mut entry.1, &row, cx.params)?;
            }
            self.drained = Some(groups.into_iter());
        }
        Ok(self
            .drained
            .as_mut()
            .expect("set above")
            .next()
            .map(|(_, (keys, accs))| Self::finish_group(keys, accs)))
    }
}

impl RowSource for AggregateOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.hash {
            self.next_hash(cx)
        } else {
            self.next_stream(cx)
        }
    }
}

/// Opens the one-row bounded MIN/MAX read: the first entry of the scanned
/// range for MIN (NULL entries skipped by key), a reverse fence descent
/// ([`Dbt::seek_last`]) for MAX.  Returns the post-aggregation row `[value]`.
fn open_minmax(cx: &ExecCtx<'_>, p: &SelectPlan, agg: &AggregatePlan) -> Result<Vec<Value>> {
    let is_max = agg.aggs[0].func == AggFunc::Max;
    let counters = cx.catalog.counters();
    match &p.access {
        AccessPath::IndexScan { index, eq, lo, hi } => {
            let ix = &p.schema.indexes[*index];
            let itree = cx.catalog.engine().tree(ix.tree);
            let Some(bounds) = index_scan_bounds(eq, lo, hi, cx.params)? else {
                return Ok(vec![Value::Null]);
            };
            // MIN/MAX ignore NULLs; NULL entries sort first, so the floor
            // skips them and a MAX landing on one means all entries were
            // NULL (in which case NULL is the correct answer anyway).
            let lo_key = if lo.is_none() {
                index_nonnull_floor(&bounds.prefix)
            } else {
                bounds.lo.clone()
            };
            counters.covering_scans.inc();
            let entry = if is_max {
                match itree.seek_last(cx.txn, bounds.hi.as_deref())? {
                    Some((k, v)) if k.as_ref() >= lo_key.as_slice() => Some((k, v)),
                    _ => None,
                }
            } else {
                itree
                    .scan_raw(cx.txn, Some(&lo_key), bounds.hi.as_deref())?
                    .next_entry(cx.txn)?
            };
            match entry {
                None => Ok(vec![Value::Null]),
                Some((key, value)) => {
                    counters.rows_scanned.inc();
                    count(TraceCounter::RowsScanned, 1);
                    let (_, row) = decode_covered_row(&p.schema, ix, &key, &value)?;
                    Ok(vec![row[ix.columns[eq.len()]].clone()])
                }
            }
        }
        AccessPath::RowidRange { .. } | AccessPath::FullScan => {
            // MIN/MAX of the rowid itself: the edge of the primary tree.
            let (lo, hi) = match &p.access {
                AccessPath::RowidRange { lo, hi } => (lo.clone(), hi.clone()),
                _ => (None, None),
            };
            let table = cx.catalog.engine().tree(p.schema.tree);
            let Some((lo_key, hi_key)) = rowid_scan_bounds(&lo, &hi, cx.params)? else {
                return Ok(vec![Value::Null]);
            };
            let entry = if is_max {
                match table.seek_last(cx.txn, hi_key.as_deref())? {
                    Some((k, v)) if lo_key.as_deref().map(|l| k.as_ref() >= l).unwrap_or(true) => {
                        Some((k, v))
                    }
                    _ => None,
                }
            } else {
                table
                    .scan_raw(cx.txn, lo_key.as_deref(), hi_key.as_deref())?
                    .next_entry(cx.txn)?
            };
            match entry {
                None => Ok(vec![Value::Null]),
                Some((key, _)) => {
                    counters.rows_scanned.inc();
                    count(TraceCounter::RowsScanned, 1);
                    Ok(vec![Value::Int(decode_rowid_key(&key)?)])
                }
            }
        }
        _ => Err(Error::Internal(
            "minmax aggregate over an unsupported access path".into(),
        )),
    }
}

// ---------------------------------------------------------------------------
// Projection / sort / distinct / limit operators
// ---------------------------------------------------------------------------

/// Computes the output expressions (and, when a sort follows, appends the
/// evaluated sort keys after the output columns).  Holds the plan's shared
/// projection and ORDER BY lists by reference count.
struct ProjectOp {
    input: Box<dyn RowSource + Send>,
    layout: ColumnLayout,
    output: std::sync::Arc<Vec<OutputCol>>,
    order: std::sync::Arc<Vec<OrderSpec>>,
    with_keys: bool,
}

impl RowSource for ProjectOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        let Some(row) = self.input.next_row(cx)? else {
            return Ok(None);
        };
        let ctx = EvalCtx {
            layout: &self.layout,
            row: &row,
            params: cx.params,
        };
        let mut out: Vec<Value> = self
            .output
            .iter()
            .map(|o| ctx.eval(&o.expr))
            .collect::<Result<_>>()?;
        if self.with_keys {
            for spec in self.order.iter() {
                let v = match &spec.target {
                    OrderTarget::Output(i) => out[*i].clone(),
                    OrderTarget::Expr(e) => ctx.eval(e)?,
                };
                out.push(v);
            }
        }
        Ok(Some(out))
    }
}

/// Materialises its input and emits it sorted by the key slots appended by
/// [`ProjectOp`] (only present in plans whose scan order does not already
/// satisfy the ORDER BY).
struct SortOp {
    input: Box<dyn RowSource + Send>,
    key_start: usize,
    desc: Vec<bool>,
    sorted: Option<std::vec::IntoIter<Vec<Value>>>,
}

impl RowSource for SortOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.sorted.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next_row(cx)? {
                rows.push(r);
            }
            let key_start = self.key_start;
            let desc = self.desc.clone();
            rows.sort_by(|a, b| {
                for (i, d) in desc.iter().enumerate() {
                    let ord = a[key_start + i].sort_cmp(&b[key_start + i]);
                    let ord = if *d { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("set above").next())
    }
}

/// Truncates rows back to the output width (drops the sort-key suffix).
struct TrimOp {
    input: Box<dyn RowSource + Send>,
    keep: usize,
}

impl RowSource for TrimOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        Ok(self.input.next_row(cx)?.map(|mut r| {
            r.truncate(self.keep);
            r
        }))
    }
}

/// Streaming DISTINCT: drops rows whose output values were already seen,
/// preserving input order.  Values are compared by their order-preserving
/// encoding, so SQL-equal numerics (`2`, `2.0`) deduplicate and NULLs are
/// one value, as in SQLite.
struct DistinctOp {
    input: Box<dyn RowSource + Send>,
    seen: HashSet<Vec<u8>>,
}

impl RowSource for DistinctOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        while let Some(row) = self.input.next_row(cx)? {
            let mut enc = Vec::with_capacity(row.len() * 10);
            for v in &row {
                encode_index_value(&mut enc, v);
            }
            if self.seen.insert(enc) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// OFFSET/LIMIT: skips, then yields at most `take` rows — and never pulls
/// the row after the last one, which is what makes bounded ordered scans
/// read `limit + offset` entries and stop.
struct OffsetLimitOp {
    input: Box<dyn RowSource + Send>,
    skip: u64,
    take: Option<u64>,
    yielded: u64,
    done: bool,
}

impl RowSource for OffsetLimitOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        if self.done {
            return Ok(None);
        }
        if let Some(t) = self.take {
            if self.yielded >= t {
                self.done = true;
                return Ok(None);
            }
        }
        while self.skip > 0 {
            if self.input.next_row(cx)?.is_none() {
                self.done = true;
                return Ok(None);
            }
            self.skip -= 1;
        }
        match self.input.next_row(cx)? {
            Some(r) => {
                self.yielded += 1;
                Ok(Some(r))
            }
            None => {
                self.done = true;
                Ok(None)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE metering
// ---------------------------------------------------------------------------

/// Per-operator measurements accumulated while an EXPLAIN ANALYZE pipeline
/// runs.  Counts are *inclusive* of everything beneath the operator (they
/// are trace-counter deltas taken around `next_row`); [`Meter::report`]
/// subtracts the child's share so the report shows each operator's own KV
/// work.
struct MeterCell {
    label: String,
    /// The pipeline leaf (scan / minmax): its `rows_in` is the number of
    /// entries it examined (`RowsScanned` delta) rather than a child's
    /// output.
    leaf: bool,
    rows_out: AtomicU64,
    scanned: AtomicU64,
    kv_fetches: AtomicU64,
    fetchbacks: AtomicU64,
    elapsed_us: AtomicU64,
}

impl MeterCell {
    fn new(label: String, leaf: bool) -> MeterCell {
        MeterCell {
            label,
            leaf,
            rows_out: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
            kv_fetches: AtomicU64::new(0),
            fetchbacks: AtomicU64::new(0),
            elapsed_us: AtomicU64::new(0),
        }
    }
}

/// Collects the cells of one metered pipeline, leaf first.  Built only for
/// EXPLAIN ANALYZE — a plain SELECT never constructs meter state.
struct Meter {
    cells: std::cell::RefCell<Vec<Arc<MeterCell>>>,
}

/// `(clock, NodeFetches, FetchBacks, RowsScanned)` snapshot bracketing a
/// metered region.
type MeterProbe = (std::time::Instant, u64, u64, u64);

fn meter_probe() -> MeterProbe {
    (
        clock::now(),
        counter_value(TraceCounter::NodeFetches),
        counter_value(TraceCounter::FetchBacks),
        counter_value(TraceCounter::RowsScanned),
    )
}

impl Meter {
    fn new() -> Meter {
        Meter {
            cells: std::cell::RefCell::new(Vec::new()),
        }
    }

    fn cell(&self, label: String, leaf: bool) -> Arc<MeterCell> {
        let cell = Arc::new(MeterCell::new(label, leaf));
        self.cells.borrow_mut().push(Arc::clone(&cell));
        cell
    }

    /// One report row per operator, top of the pipeline first:
    /// `[operator, rows_in, rows_out, kv_fetches, fetchbacks, elapsed_us]`.
    fn report(&self) -> Vec<Vec<Value>> {
        let cells = self.cells.borrow();
        let mut rows = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate().rev() {
            let child = if i > 0 { Some(&cells[i - 1]) } else { None };
            let rows_in = if cell.leaf {
                cell.scanned.load(AtomicOrdering::Relaxed)
            } else {
                child
                    .map(|c| c.rows_out.load(AtomicOrdering::Relaxed))
                    .unwrap_or(0)
            };
            // A parent's inclusive count minus its child's is the KV work
            // the operator performed itself (in practice: fetches at the
            // scan, zero above it).
            let own = |f: fn(&MeterCell) -> &AtomicU64| {
                f(cell).load(AtomicOrdering::Relaxed).saturating_sub(
                    child
                        .map(|c| f(c).load(AtomicOrdering::Relaxed))
                        .unwrap_or(0),
                )
            };
            rows.push(vec![
                Value::Text(cell.label.clone()),
                Value::Int(rows_in as i64),
                Value::Int(cell.rows_out.load(AtomicOrdering::Relaxed) as i64),
                Value::Int(own(|c| &c.kv_fetches) as i64),
                Value::Int(own(|c| &c.fetchbacks) as i64),
                Value::Int(cell.elapsed_us.load(AtomicOrdering::Relaxed) as i64),
            ]);
        }
        rows
    }
}

/// Wraps one operator of a metered pipeline: charges elapsed time and the
/// trace-counter deltas of every `next_row` to its cell.
struct MeterOp {
    inner: Box<dyn RowSource + Send>,
    cell: Arc<MeterCell>,
}

impl MeterOp {
    /// Charges a bracketed region (a `next_row`, or the open-time work of
    /// the access path) to `cell`.
    fn charge(cell: &MeterCell, probe: MeterProbe) {
        let (t0, f0, b0, s0) = probe;
        cell.elapsed_us
            .fetch_add(clock::elapsed_us(t0), AtomicOrdering::Relaxed);
        cell.kv_fetches.fetch_add(
            counter_value(TraceCounter::NodeFetches) - f0,
            AtomicOrdering::Relaxed,
        );
        cell.fetchbacks.fetch_add(
            counter_value(TraceCounter::FetchBacks) - b0,
            AtomicOrdering::Relaxed,
        );
        cell.scanned.fetch_add(
            counter_value(TraceCounter::RowsScanned) - s0,
            AtomicOrdering::Relaxed,
        );
    }
}

impl RowSource for MeterOp {
    fn next_row(&mut self, cx: &ExecCtx<'_>) -> Result<Option<Vec<Value>>> {
        let probe = meter_probe();
        let r = self.inner.next_row(cx);
        Self::charge(&self.cell, probe);
        if matches!(r, Ok(Some(_))) {
            self.cell.rows_out.fetch_add(1, AtomicOrdering::Relaxed);
        }
        r
    }
}

/// Wraps `src` in a [`MeterOp`] when a meter is present, else passes it
/// through untouched (the plain-SELECT path).
fn metered(
    meter: Option<&Meter>,
    label: &str,
    leaf: bool,
    src: Box<dyn RowSource + Send>,
) -> Box<dyn RowSource + Send> {
    match meter {
        None => src,
        Some(m) => Box::new(MeterOp {
            inner: src,
            cell: m.cell(label.to_string(), leaf),
        }),
    }
}

/// The report label of the pipeline leaf.
fn leaf_label(p: &SelectPlan) -> String {
    match &p.access {
        AccessPath::RowidPoint(_) => format!("point {}", p.schema.name),
        AccessPath::RowidRange { .. } => format!("range {}", p.schema.name),
        AccessPath::FullScan => format!("scan {}", p.schema.name),
        AccessPath::IndexScan { index, .. } => {
            let ix = &p.schema.indexes[*index];
            if p.covering {
                format!("index {}.{} covering", p.schema.name, ix.name)
            } else {
                format!("index {}.{}", p.schema.name, ix.name)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT pipeline assembly
// ---------------------------------------------------------------------------

/// Assembles the operator stack of a SELECT (see the module diagram).  With
/// a meter (EXPLAIN ANALYZE) every operator is wrapped in a [`MeterOp`] and
/// the access path's open-time work (the point lookup, cursor seeks, the
/// one-row MIN/MAX read) is charged to the leaf's cell.
fn open_select(cx: &ExecCtx<'_>, p: &SelectPlan, meter: Option<&Meter>) -> Result<RowStream> {
    let open_probe = meter.map(|_| meter_probe());
    // Source: scan (+ aggregation), or the one-row MIN/MAX read.
    let (src, proj_layout): (Box<dyn RowSource + Send>, ColumnLayout) = match &p.aggregate {
        Some(agg) if agg.strategy == AggStrategy::MinMax => {
            let row = open_minmax(cx, p, agg)?;
            let leaf = metered(
                meter,
                &format!("minmax {}", p.schema.name),
                true,
                Box::new(OneRowOp { row: Some(row) }),
            );
            if let (Some(m), Some(probe)) = (meter, open_probe) {
                MeterOp::charge(m.cells.borrow().last().expect("leaf cell"), probe);
            }
            (leaf, ColumnLayout::empty())
        }
        Some(agg) => {
            let scan = ScanOp::open(
                cx,
                std::sync::Arc::clone(&p.schema),
                p.layout.clone(),
                &p.access,
                p.filter.clone(),
                p.covering,
            )?;
            let leaf = metered(meter, &leaf_label(p), true, Box::new(scan));
            if let (Some(m), Some(probe)) = (meter, open_probe) {
                MeterOp::charge(m.cells.borrow().last().expect("leaf cell"), probe);
            }
            (
                metered(
                    meter,
                    &format!("aggregate {}", agg.strategy.name()),
                    false,
                    Box::new(AggregateOp::new(
                        leaf,
                        p.layout.clone(),
                        std::sync::Arc::clone(agg),
                    )),
                ),
                // Aggregate-query expressions are Slot-based; no names to
                // resolve.
                ColumnLayout::empty(),
            )
        }
        None => {
            let scan = ScanOp::open(
                cx,
                std::sync::Arc::clone(&p.schema),
                p.layout.clone(),
                &p.access,
                p.filter.clone(),
                p.covering,
            )?;
            let leaf = metered(meter, &leaf_label(p), true, Box::new(scan));
            if let (Some(m), Some(probe)) = (meter, open_probe) {
                MeterOp::charge(m.cells.borrow().last().expect("leaf cell"), probe);
            }
            (leaf, p.layout.clone())
        }
    };

    // Projection (+ sort keys when the sort survives).
    let n_out = p.output.len();
    let mut src: Box<dyn RowSource + Send> = metered(
        meter,
        "project",
        false,
        Box::new(ProjectOp {
            input: src,
            layout: proj_layout,
            output: std::sync::Arc::clone(&p.output),
            order: std::sync::Arc::clone(&p.order_by),
            with_keys: p.sort_needed,
        }),
    );

    if p.sort_needed {
        src = metered(
            meter,
            "sort",
            false,
            Box::new(TrimOp {
                input: Box::new(SortOp {
                    input: src,
                    key_start: n_out,
                    desc: p.order_by.iter().map(|s| s.desc).collect(),
                    sorted: None,
                }),
                keep: n_out,
            }),
        );
    }
    if p.distinct {
        src = metered(
            meter,
            "distinct",
            false,
            Box::new(DistinctOp {
                input: src,
                seen: HashSet::new(),
            }),
        );
    }
    if p.limit.is_some() || p.offset.is_some() {
        src = metered(
            meter,
            "limit",
            false,
            Box::new(OffsetLimitOp {
                input: src,
                skip: p.offset.unwrap_or(0),
                take: p.limit,
                yielded: 0,
                done: false,
            }),
        );
    }

    Ok(RowStream {
        columns: p.output.iter().map(|o| o.name.clone()).collect(),
        src,
    })
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

/// Executes the inner plan and reports per-operator measurements instead of
/// its rows: `(operator, rows_in, rows_out, kv_fetches, fetchbacks,
/// elapsed_us)`, with the plan description first and a `total` row last.
///
/// A trace is forced for the duration (regardless of the sampling rate), so
/// the per-operator KV-fetch and fetch-back numbers come from the same
/// trace counters the histograms and slow-op ring use — the report is
/// cross-checkable against the `dbt.*` / `sql.*` registry counters.
/// `elapsed_us` is inclusive of the operator's children (as in other
/// engines' EXPLAIN ANALYZE); `kv_fetches`/`fetchbacks` are each operator's
/// own.  SELECT plans get one row per operator; DML and DDL report the
/// `total` row only (their work is not operator-shaped).
fn exec_explain_analyze(cx: &ExecCtx<'_>, inner: &Plan) -> Result<ResultSet> {
    let obs = cx.catalog.engine().stats().obs();
    let _trace = obs.force_trace("explain_analyze".to_string());
    let probe = meter_probe();
    let (mut op_rows, rows_out) = match inner {
        Plan::Select(p) => {
            let meter = Meter::new();
            let mut stream = open_select(cx, p, Some(&meter))?;
            let mut n = 0u64;
            while stream.next_row(cx)?.is_some() {
                n += 1;
            }
            (meter.report(), n)
        }
        other => {
            let rs = execute_plan_inner(cx.catalog, cx.txn, other, cx.params)?;
            let n = if rs.rows.is_empty() {
                rs.rows_affected
            } else {
                rs.rows.len() as u64
            };
            (Vec::new(), n)
        }
    };
    let (t0, f0, b0, _) = probe;
    let mut rows = Vec::with_capacity(op_rows.len() + 2);
    rows.push(vec![
        Value::Text(format!("plan: {}", inner.describe())),
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
        Value::Null,
    ]);
    rows.append(&mut op_rows);
    rows.push(vec![
        Value::Text("total".to_string()),
        Value::Null,
        Value::Int(rows_out as i64),
        Value::Int((counter_value(TraceCounter::NodeFetches) - f0) as i64),
        Value::Int((counter_value(TraceCounter::FetchBacks) - b0) as i64),
        Value::Int(clock::elapsed_us(t0) as i64),
    ]);
    Ok(ResultSet {
        columns: [
            "operator",
            "rows_in",
            "rows_out",
            "kv_fetches",
            "fetchbacks",
            "elapsed_us",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
        rows_affected: 0,
        last_rowid: None,
    })
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// An exact rowid from a column value, for explicit rowid-column writes.
fn exact_rowid(v: &Value, table: &str, col: &str) -> Result<i64> {
    value_to_rowid(v).ok_or_else(|| {
        Error::Type(format!(
            "{table}.{col} is the rowid and must be an integer, got {v}"
        ))
    })
}

/// Enforces NOT NULL (and PRIMARY KEY, which implies it) on a full row.
fn check_not_null(schema: &TableSchema, row: &[Value]) -> Result<()> {
    for (i, c) in schema.columns.iter().enumerate() {
        if (c.not_null || c.primary_key) && row[i].is_null() {
            return Err(Error::Constraint(format!(
                "NOT NULL constraint failed: {}.{}",
                schema.name, c.name
            )));
        }
    }
    Ok(())
}

/// The indexed values of a row for one index.
fn index_values(ix: &IndexInfo, row: &[Value]) -> Vec<Value> {
    ix.columns.iter().map(|&c| row[c].clone()).collect()
}

/// Inserts one index entry, enforcing uniqueness.  Unique entries with any
/// NULL value are stored with a rowid suffix like non-unique entries (SQL
/// treats NULLs as distinct, so they never conflict).
fn insert_index_entry(
    itree: &Dbt,
    txn: &Txn,
    ix: &IndexInfo,
    table_name: &str,
    vals: &[Value],
    rid: i64,
) -> Result<()> {
    if ix.unique && !vals.iter().any(Value::is_null) {
        let key = encode_index_key(vals, None);
        if itree.lookup(txn, &key)?.is_some() {
            return Err(Error::Constraint(format!(
                "UNIQUE constraint failed: {table_name} index {}",
                ix.name
            )));
        }
        itree.insert(txn, &key, &encode_row(&[Value::Int(rid)]))?;
    } else {
        itree.insert(txn, &encode_index_key(vals, Some(rid)), &[])?;
    }
    Ok(())
}

/// Removes the index entry a row contributed.
fn delete_index_entry(
    itree: &Dbt,
    txn: &Txn,
    ix: &IndexInfo,
    vals: &[Value],
    rid: i64,
) -> Result<()> {
    let key = if ix.unique && !vals.iter().any(Value::is_null) {
        encode_index_key(vals, None)
    } else {
        encode_index_key(vals, Some(rid))
    };
    itree.delete(txn, &key)?;
    Ok(())
}

/// Picks the rowid for a new row: the explicit rowid-column value when
/// given, otherwise the next free id from the table's allocator (skipping
/// ids taken by explicit inserts).
fn assign_rowid(
    catalog: &Catalog,
    txn: &Txn,
    schema: &TableSchema,
    table: &Dbt,
    row: &mut [Value],
) -> Result<i64> {
    if let Some(rc) = schema.rowid_col {
        if !row[rc].is_null() {
            let rid = exact_rowid(&row[rc], &schema.name, &schema.columns[rc].name)?;
            if table.lookup(txn, &encode_rowid_key(rid))?.is_some() {
                return Err(Error::Constraint(format!(
                    "UNIQUE constraint failed: {}.{}",
                    schema.name, schema.columns[rc].name
                )));
            }
            row[rc] = Value::Int(rid);
            return Ok(rid);
        }
    }
    // The allocator is non-transactional (ids burned by aborts are lost,
    // like SQLite's AUTOINCREMENT under concurrency); explicit inserts may
    // have taken ids ahead of the counter, so skip occupied ones.
    loop {
        let rid = catalog.allocate_rowids(schema, 1)?;
        if table.lookup(txn, &encode_rowid_key(rid))?.is_none() {
            if let Some(rc) = schema.rowid_col {
                row[rc] = Value::Int(rid);
            }
            return Ok(rid);
        }
    }
}

fn exec_insert(cx: &ExecCtx<'_>, p: &InsertPlan) -> Result<ResultSet> {
    let schema = &p.schema;
    let table = cx.catalog.engine().tree(schema.tree);
    let mut affected = 0u64;
    let mut last_rowid = None;
    for value_exprs in &p.rows {
        let mut row = vec![Value::Null; schema.columns.len()];
        for (i, e) in value_exprs.iter().enumerate() {
            let col = p.columns[i];
            row[col] = const_eval(e, cx.params)?.coerce(schema.columns[col].ctype);
        }
        let rid = assign_rowid(cx.catalog, cx.txn, schema, &table, &mut row)?;
        check_not_null(schema, &row)?;
        table.insert(cx.txn, &encode_rowid_key(rid), &encode_row(&row))?;
        for ix in &schema.indexes {
            let itree = cx.catalog.engine().tree(ix.tree);
            insert_index_entry(
                &itree,
                cx.txn,
                ix,
                &schema.name,
                &index_values(ix, &row),
                rid,
            )?;
        }
        affected += 1;
        last_rowid = Some(rid);
    }
    Ok(ResultSet {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: affected,
        last_rowid,
    })
}

/// Materialises the rows an UPDATE/DELETE affects.  Collecting first keeps
/// the mutation phase from racing the scan that feeds it (the scan would
/// otherwise observe the statement's own writes through the transaction's
/// buffer — the Halloween problem).
fn collect_matches(cx: &ExecCtx<'_>, target: &DmlTarget) -> Result<Vec<(i64, Vec<Value>)>> {
    let mut scan = ScanOp::open(
        cx,
        std::sync::Arc::clone(&target.schema),
        target.layout.clone(),
        &target.access,
        target.filter.clone(),
        false,
    )?;
    let mut matches = Vec::new();
    while let Some(m) = scan.next_base(cx)? {
        matches.push(m);
    }
    Ok(matches)
}

fn exec_update(cx: &ExecCtx<'_>, p: &crate::plan::UpdatePlan) -> Result<ResultSet> {
    let schema = &p.target.schema;
    let table = cx.catalog.engine().tree(schema.tree);
    let layout = p.target.layout.clone();
    let matches = collect_matches(cx, &p.target)?;
    let mut affected = 0u64;
    for (rid, old_row) in matches {
        let ctx = EvalCtx {
            layout: &layout,
            row: &old_row,
            params: cx.params,
        };
        let mut new_row = old_row.clone();
        for (pos, e) in &p.assignments {
            new_row[*pos] = ctx.eval(e)?.coerce(schema.columns[*pos].ctype);
        }
        let mut new_rid = rid;
        if let Some(rc) = schema.rowid_col {
            if p.assignments.iter().any(|(pos, _)| *pos == rc) {
                new_rid = exact_rowid(&new_row[rc], &schema.name, &schema.columns[rc].name)?;
                new_row[rc] = Value::Int(new_rid);
            }
        }
        check_not_null(schema, &new_row)?;

        if new_rid != rid {
            if table.lookup(cx.txn, &encode_rowid_key(new_rid))?.is_some() {
                return Err(Error::Constraint(format!(
                    "UNIQUE constraint failed: {}.{}",
                    schema.name,
                    schema.columns[schema.rowid_col.expect("rowid change")].name
                )));
            }
            table.delete(cx.txn, &encode_rowid_key(rid))?;
        }
        for ix in &schema.indexes {
            let old_vals = index_values(ix, &old_row);
            let new_vals = index_values(ix, &new_row);
            if old_vals == new_vals && new_rid == rid {
                continue;
            }
            let itree = cx.catalog.engine().tree(ix.tree);
            delete_index_entry(&itree, cx.txn, ix, &old_vals, rid)?;
            insert_index_entry(&itree, cx.txn, ix, &schema.name, &new_vals, new_rid)?;
        }
        table.insert(cx.txn, &encode_rowid_key(new_rid), &encode_row(&new_row))?;
        affected += 1;
    }
    Ok(ResultSet {
        rows_affected: affected,
        ..ResultSet::empty()
    })
}

fn exec_delete(cx: &ExecCtx<'_>, p: &crate::plan::DeletePlan) -> Result<ResultSet> {
    let schema = &p.target.schema;
    let table = cx.catalog.engine().tree(schema.tree);
    let matches = collect_matches(cx, &p.target)?;
    let mut affected = 0u64;
    for (rid, row) in matches {
        for ix in &schema.indexes {
            let itree = cx.catalog.engine().tree(ix.tree);
            delete_index_entry(&itree, cx.txn, ix, &index_values(ix, &row), rid)?;
        }
        table.delete(cx.txn, &encode_rowid_key(rid))?;
        affected += 1;
    }
    Ok(ResultSet {
        rows_affected: affected,
        ..ResultSet::empty()
    })
}
