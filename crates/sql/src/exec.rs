//! The executor: runs physical plans inside a key-value transaction via DBT
//! cursors.
//!
//! Every statement executes entirely within one caller-supplied [`Txn`], so
//! a statement touching a table and its secondary indexes is atomic and
//! reads one consistent snapshot; the session layer decides when that
//! transaction commits (autocommit or explicit BEGIN/COMMIT).
//!
//! Row access follows the plan's [`AccessPath`]: a rowid point lookup is one
//! DBT `lookup` (one node fetch when the client cache is warm — the paper's
//! headline property), an index scan is a bounded DBT range scan over the
//! index tree plus one `lookup` fetch-back per entry, and UPDATE/DELETE
//! materialise their match set before mutating so the scan never observes
//! its own writes (the classic Halloween problem).

use std::cmp::Ordering;
use std::collections::HashSet;

use yesquel_common::{Error, Result};
use yesquel_kv::Txn;
use yesquel_ydbt::Dbt;

use crate::ast::Statement;
use crate::catalog::{Catalog, IndexInfo, TableSchema};
use crate::expr::{ColumnLayout, EvalCtx};
use crate::plan::{
    plan_statement, table_layout, AccessPath, DmlTarget, InsertPlan, OrderTarget, OutputCol, Plan,
    RangeBound, SelectPlan,
};
use crate::row::{
    decode_index_rowid, decode_row, decode_rowid_key, encode_index_key, encode_index_value,
    encode_row, encode_rowid_key, prefix_upper_bound,
};
use crate::types::Value;

/// The result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// Column headers (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows (empty for DML/DDL).
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub rows_affected: u64,
    /// Rowid assigned to the last inserted row.
    pub last_rowid: Option<i64>,
}

impl ResultSet {
    fn empty() -> ResultSet {
        ResultSet::default()
    }
}

/// Plans and executes one statement inside `txn`.  Transaction control
/// statements are rejected here; the session intercepts them.
pub fn execute(
    catalog: &Catalog,
    txn: &Txn,
    stmt: &Statement,
    params: &[Value],
) -> Result<ResultSet> {
    let plan = plan_statement(catalog, txn, stmt)?;
    execute_plan(catalog, txn, &plan, params)
}

/// Executes an already-built plan inside `txn`.
pub fn execute_plan(
    catalog: &Catalog,
    txn: &Txn,
    plan: &Plan,
    params: &[Value],
) -> Result<ResultSet> {
    match plan {
        Plan::ConstSelect(output) => exec_const_select(output, params),
        Plan::Select(p) => exec_select(catalog, txn, p, params),
        Plan::Insert(p) => exec_insert(catalog, txn, p, params),
        Plan::Update(p) => exec_update(catalog, txn, p, params),
        Plan::Delete(p) => exec_delete(catalog, txn, p, params),
        Plan::CreateTable(ct) => {
            catalog.create_table(txn, ct)?;
            Ok(ResultSet::empty())
        }
        Plan::CreateIndex(ci) => {
            catalog.create_index(txn, ci)?;
            Ok(ResultSet::empty())
        }
        Plan::DropTable { name, if_exists } => {
            catalog.drop_table(txn, name, *if_exists)?;
            Ok(ResultSet::empty())
        }
    }
}

/// Evaluates a constant expression (no column references).
fn const_eval(e: &crate::ast::Expr, params: &[Value]) -> Result<Value> {
    EvalCtx {
        layout: &ColumnLayout::empty(),
        row: &[],
        params,
    }
    .eval(e)
}

/// An exact rowid from a value, if the value can ever equal a rowid.
fn value_to_rowid(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Real(r) if r.fract() == 0.0 && *r >= i64::MIN as f64 && *r <= i64::MAX as f64 => {
            Some(*r as i64)
        }
        _ => None,
    }
}

/// A rowid-range endpoint resolved to an integer.
enum RowidBound {
    /// The predicate can never hold: the scan is empty.
    Empty,
    /// The bound does not constrain the scan.
    Unbounded,
    /// Scan from/to this rowid (inclusive).
    At(i64),
}

/// Resolves a lower bound on the rowid.  Non-numeric bound values follow
/// SQL's cross-class ordering (numbers sort below text and blobs), so
/// `rowid > 'x'` is always false and `rowid > NULL` is never true.
fn rowid_lower_bound(v: &Value, inclusive: bool) -> RowidBound {
    match v {
        Value::Null | Value::Text(_) | Value::Blob(_) => RowidBound::Empty,
        Value::Int(i) => {
            if inclusive {
                RowidBound::At(*i)
            } else if *i == i64::MAX {
                RowidBound::Empty
            } else {
                RowidBound::At(*i + 1)
            }
        }
        Value::Real(r) => {
            let b = if inclusive { r.ceil() } else { r.floor() + 1.0 };
            if b > i64::MAX as f64 {
                RowidBound::Empty
            } else if b < i64::MIN as f64 {
                RowidBound::Unbounded
            } else {
                RowidBound::At(b as i64)
            }
        }
    }
}

/// Resolves an upper bound on the rowid (`rowid < 'x'` is always true).
fn rowid_upper_bound(v: &Value, inclusive: bool) -> RowidBound {
    match v {
        Value::Null => RowidBound::Empty,
        Value::Text(_) | Value::Blob(_) => RowidBound::Unbounded,
        Value::Int(i) => {
            if inclusive {
                RowidBound::At(*i)
            } else if *i == i64::MIN {
                RowidBound::Empty
            } else {
                RowidBound::At(*i - 1)
            }
        }
        Value::Real(r) => {
            let b = if inclusive { r.floor() } else { r.ceil() - 1.0 };
            if b < i64::MIN as f64 {
                RowidBound::Empty
            } else if b > i64::MAX as f64 {
                RowidBound::Unbounded
            } else {
                RowidBound::At(b as i64)
            }
        }
    }
}

/// Walks the rows selected by `access`, calling `f(rowid, row)` for each;
/// `f` returns false to stop early (LIMIT without ORDER BY).
fn visit_rows(
    catalog: &Catalog,
    txn: &Txn,
    schema: &TableSchema,
    access: &AccessPath,
    params: &[Value],
    f: &mut dyn FnMut(i64, Vec<Value>) -> Result<bool>,
) -> Result<()> {
    let table = catalog.engine().tree(schema.tree);
    match access {
        AccessPath::RowidPoint(e) => {
            let v = const_eval(e, params)?;
            let Some(rid) = value_to_rowid(&v) else {
                return Ok(());
            };
            if let Some(bytes) = table.lookup(txn, &encode_rowid_key(rid))? {
                f(rid, decode_row(&bytes)?)?;
            }
            Ok(())
        }
        AccessPath::RowidRange { lo, hi } => {
            let lo_key = match lo {
                None => None,
                Some(b) => match rowid_lower_bound(&const_eval(&b.expr, params)?, b.inclusive) {
                    RowidBound::Empty => return Ok(()),
                    RowidBound::Unbounded => None,
                    RowidBound::At(i) => Some(encode_rowid_key(i)),
                },
            };
            let hi_key = match hi {
                None => None,
                Some(b) => match rowid_upper_bound(&const_eval(&b.expr, params)?, b.inclusive) {
                    RowidBound::Empty => return Ok(()),
                    RowidBound::Unbounded => None,
                    RowidBound::At(i) => {
                        // Inclusive end: the smallest key above rowid i.
                        let mut k = encode_rowid_key(i);
                        k.push(0);
                        Some(k)
                    }
                },
            };
            scan_table(&table, txn, lo_key.as_deref(), hi_key.as_deref(), f)
        }
        AccessPath::IndexScan { index, eq, lo, hi } => {
            let ix = &schema.indexes[*index];
            let itree = catalog.engine().tree(ix.tree);
            let mut prefix = Vec::new();
            for e in eq {
                let v = const_eval(e, params)?;
                if v.is_null() {
                    // Equality with NULL matches nothing.
                    return Ok(());
                }
                encode_index_value(&mut prefix, &v);
            }
            let lo_key = match lo {
                None => Some(prefix.clone()),
                Some(b) => match index_lower_key(&prefix, b, params)? {
                    Some(k) => Some(k),
                    None => return Ok(()),
                },
            };
            let hi_key = match hi {
                None => prefix_upper_bound(&prefix),
                Some(b) => match index_upper_key(&prefix, b, params)? {
                    IndexUpper::Empty => return Ok(()),
                    IndexUpper::Unbounded => prefix_upper_bound(&prefix),
                    IndexUpper::Key(k) => Some(k),
                },
            };
            let cursor = itree.scan(txn, lo_key.as_deref(), hi_key.as_deref())?;
            for entry in cursor {
                let (key, value) = entry?;
                let rid = if value.is_empty() {
                    decode_index_rowid(&key)?
                } else {
                    // Unique-index entry: the value is the rowid record.
                    decode_row(&value)?
                        .first()
                        .and_then(value_to_rowid)
                        .ok_or_else(|| {
                            Error::Corruption(format!("bad unique index entry in {}", ix.name))
                        })?
                };
                let row_bytes = table.lookup(txn, &encode_rowid_key(rid))?.ok_or_else(|| {
                    Error::Corruption(format!(
                        "index {} refers to missing rowid {rid} of table {}",
                        ix.name, schema.name
                    ))
                })?;
                if !f(rid, decode_row(&row_bytes)?)? {
                    return Ok(());
                }
            }
            Ok(())
        }
        AccessPath::FullScan => scan_table(&table, txn, None, None, f),
    }
}

/// Scans the primary tree over `[lo, hi)`, decoding each row.
fn scan_table(
    table: &Dbt,
    txn: &Txn,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    f: &mut dyn FnMut(i64, Vec<Value>) -> Result<bool>,
) -> Result<()> {
    for entry in table.scan(txn, lo, hi)? {
        let (key, value) = entry?;
        let rid = decode_rowid_key(&key)?;
        if !f(rid, decode_row(&value)?)? {
            return Ok(());
        }
    }
    Ok(())
}

/// Encoded start key for an index range lower bound; `None` = empty scan.
fn index_lower_key(prefix: &[u8], b: &RangeBound, params: &[Value]) -> Result<Option<Vec<u8>>> {
    let v = const_eval(&b.expr, params)?;
    if v.is_null() {
        return Ok(None);
    }
    let mut k = prefix.to_vec();
    encode_index_value(&mut k, &v);
    if b.inclusive {
        Ok(Some(k))
    } else {
        // Skip every entry whose column value equals the bound: start at the
        // successor of the value prefix (entries append a rowid suffix, so a
        // plain +1 on the last byte is not enough).
        Ok(prefix_upper_bound(&k))
    }
}

enum IndexUpper {
    Empty,
    Unbounded,
    Key(Vec<u8>),
}

/// Encoded end key (exclusive) for an index range upper bound.
fn index_upper_key(prefix: &[u8], b: &RangeBound, params: &[Value]) -> Result<IndexUpper> {
    let v = const_eval(&b.expr, params)?;
    if v.is_null() {
        return Ok(IndexUpper::Empty);
    }
    let mut k = prefix.to_vec();
    encode_index_value(&mut k, &v);
    if b.inclusive {
        // Include entries equal to the bound (they carry a rowid suffix):
        // end at the successor of the value prefix.
        match prefix_upper_bound(&k) {
            Some(k) => Ok(IndexUpper::Key(k)),
            None => Ok(IndexUpper::Unbounded),
        }
    } else {
        Ok(IndexUpper::Key(k))
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

fn exec_const_select(output: &[OutputCol], params: &[Value]) -> Result<ResultSet> {
    let layout = ColumnLayout::empty();
    let ctx = EvalCtx {
        layout: &layout,
        row: &[],
        params,
    };
    let row: Vec<Value> = output
        .iter()
        .map(|o| ctx.eval(&o.expr))
        .collect::<Result<_>>()?;
    Ok(ResultSet {
        columns: output.iter().map(|o| o.name.clone()).collect(),
        rows: vec![row],
        rows_affected: 0,
        last_rowid: None,
    })
}

fn exec_select(
    catalog: &Catalog,
    txn: &Txn,
    p: &SelectPlan,
    params: &[Value],
) -> Result<ResultSet> {
    let layout = table_layout(&p.schema, &p.qualifier);
    // Early exit is sound only when no later stage reorders or drops rows.
    let early_budget = if p.order_by.is_empty() && !p.distinct {
        p.limit.map(|l| l.saturating_add(p.offset.unwrap_or(0)))
    } else {
        None
    };

    let mut rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    visit_rows(
        catalog,
        txn,
        &p.schema,
        &p.access,
        params,
        &mut |_rid, row| {
            let ctx = EvalCtx {
                layout: &layout,
                row: &row,
                params,
            };
            if let Some(filter) = &p.filter {
                if !ctx.eval(filter)?.is_truthy() {
                    return Ok(true);
                }
            }
            let out: Vec<Value> = p
                .output
                .iter()
                .map(|o| ctx.eval(&o.expr))
                .collect::<Result<_>>()?;
            let keys: Vec<Value> = p
                .order_by
                .iter()
                .map(|s| match &s.target {
                    OrderTarget::Output(i) => Ok(out[*i].clone()),
                    OrderTarget::Expr(e) => ctx.eval(e),
                })
                .collect::<Result<_>>()?;
            rows.push((keys, out));
            Ok(early_budget
                .map(|b| (rows.len() as u64) < b)
                .unwrap_or(true))
        },
    )?;

    if !p.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (i, spec) in p.order_by.iter().enumerate() {
                let ord = a.0[i].sort_cmp(&b.0[i]);
                let ord = if spec.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    let mut out_rows: Vec<Vec<Value>> = rows.into_iter().map(|(_, o)| o).collect();
    if p.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|r| seen.insert(encode_row(r)));
    }
    let offset = p.offset.unwrap_or(0) as usize;
    let mut out_rows: Vec<Vec<Value>> = out_rows.into_iter().skip(offset).collect();
    if let Some(limit) = p.limit {
        out_rows.truncate(limit as usize);
    }

    Ok(ResultSet {
        columns: p.output.iter().map(|o| o.name.clone()).collect(),
        rows: out_rows,
        rows_affected: 0,
        last_rowid: None,
    })
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

/// An exact rowid from a column value, for explicit rowid-column writes.
fn exact_rowid(v: &Value, table: &str, col: &str) -> Result<i64> {
    value_to_rowid(v).ok_or_else(|| {
        Error::Type(format!(
            "{table}.{col} is the rowid and must be an integer, got {v}"
        ))
    })
}

/// Enforces NOT NULL (and PRIMARY KEY, which implies it) on a full row.
fn check_not_null(schema: &TableSchema, row: &[Value]) -> Result<()> {
    for (i, c) in schema.columns.iter().enumerate() {
        if (c.not_null || c.primary_key) && row[i].is_null() {
            return Err(Error::Constraint(format!(
                "NOT NULL constraint failed: {}.{}",
                schema.name, c.name
            )));
        }
    }
    Ok(())
}

/// The indexed values of a row for one index.
fn index_values(ix: &IndexInfo, row: &[Value]) -> Vec<Value> {
    ix.columns.iter().map(|&c| row[c].clone()).collect()
}

/// Inserts one index entry, enforcing uniqueness.  Unique entries with any
/// NULL value are stored with a rowid suffix like non-unique entries (SQL
/// treats NULLs as distinct, so they never conflict).
fn insert_index_entry(
    itree: &Dbt,
    txn: &Txn,
    ix: &IndexInfo,
    table_name: &str,
    vals: &[Value],
    rid: i64,
) -> Result<()> {
    if ix.unique && !vals.iter().any(Value::is_null) {
        let key = encode_index_key(vals, None);
        if itree.lookup(txn, &key)?.is_some() {
            return Err(Error::Constraint(format!(
                "UNIQUE constraint failed: {table_name} index {}",
                ix.name
            )));
        }
        itree.insert(txn, &key, &encode_row(&[Value::Int(rid)]))?;
    } else {
        itree.insert(txn, &encode_index_key(vals, Some(rid)), &[])?;
    }
    Ok(())
}

/// Removes the index entry a row contributed.
fn delete_index_entry(
    itree: &Dbt,
    txn: &Txn,
    ix: &IndexInfo,
    vals: &[Value],
    rid: i64,
) -> Result<()> {
    let key = if ix.unique && !vals.iter().any(Value::is_null) {
        encode_index_key(vals, None)
    } else {
        encode_index_key(vals, Some(rid))
    };
    itree.delete(txn, &key)?;
    Ok(())
}

/// Picks the rowid for a new row: the explicit rowid-column value when
/// given, otherwise the next free id from the table's allocator (skipping
/// ids taken by explicit inserts).
fn assign_rowid(
    catalog: &Catalog,
    txn: &Txn,
    schema: &TableSchema,
    table: &Dbt,
    row: &mut [Value],
) -> Result<i64> {
    if let Some(rc) = schema.rowid_col {
        if !row[rc].is_null() {
            let rid = exact_rowid(&row[rc], &schema.name, &schema.columns[rc].name)?;
            if table.lookup(txn, &encode_rowid_key(rid))?.is_some() {
                return Err(Error::Constraint(format!(
                    "UNIQUE constraint failed: {}.{}",
                    schema.name, schema.columns[rc].name
                )));
            }
            row[rc] = Value::Int(rid);
            return Ok(rid);
        }
    }
    // The allocator is non-transactional (ids burned by aborts are lost,
    // like SQLite's AUTOINCREMENT under concurrency); explicit inserts may
    // have taken ids ahead of the counter, so skip occupied ones.
    loop {
        let rid = catalog.allocate_rowids(schema, 1)?;
        if table.lookup(txn, &encode_rowid_key(rid))?.is_none() {
            if let Some(rc) = schema.rowid_col {
                row[rc] = Value::Int(rid);
            }
            return Ok(rid);
        }
    }
}

fn exec_insert(
    catalog: &Catalog,
    txn: &Txn,
    p: &InsertPlan,
    params: &[Value],
) -> Result<ResultSet> {
    let schema = &p.schema;
    let table = catalog.engine().tree(schema.tree);
    let mut affected = 0u64;
    let mut last_rowid = None;
    for value_exprs in &p.rows {
        let mut row = vec![Value::Null; schema.columns.len()];
        for (i, e) in value_exprs.iter().enumerate() {
            let col = p.columns[i];
            row[col] = const_eval(e, params)?.coerce(schema.columns[col].ctype);
        }
        let rid = assign_rowid(catalog, txn, schema, &table, &mut row)?;
        check_not_null(schema, &row)?;
        table.insert(txn, &encode_rowid_key(rid), &encode_row(&row))?;
        for ix in &schema.indexes {
            let itree = catalog.engine().tree(ix.tree);
            insert_index_entry(&itree, txn, ix, &schema.name, &index_values(ix, &row), rid)?;
        }
        affected += 1;
        last_rowid = Some(rid);
    }
    Ok(ResultSet {
        columns: Vec::new(),
        rows: Vec::new(),
        rows_affected: affected,
        last_rowid,
    })
}

/// Materialises the rows an UPDATE/DELETE affects.  Collecting first keeps
/// the mutation phase from racing the scan that feeds it (the scan would
/// otherwise observe the statement's own writes through the transaction's
/// buffer — the Halloween problem).
fn collect_matches(
    catalog: &Catalog,
    txn: &Txn,
    target: &DmlTarget,
    params: &[Value],
) -> Result<Vec<(i64, Vec<Value>)>> {
    let layout = table_layout(&target.schema, &target.schema.name);
    let mut matches = Vec::new();
    visit_rows(
        catalog,
        txn,
        &target.schema,
        &target.access,
        params,
        &mut |rid, row| {
            let keep = match &target.filter {
                None => true,
                Some(f) => EvalCtx {
                    layout: &layout,
                    row: &row,
                    params,
                }
                .eval(f)?
                .is_truthy(),
            };
            if keep {
                matches.push((rid, row));
            }
            Ok(true)
        },
    )?;
    Ok(matches)
}

fn exec_update(
    catalog: &Catalog,
    txn: &Txn,
    p: &crate::plan::UpdatePlan,
    params: &[Value],
) -> Result<ResultSet> {
    let schema = &p.target.schema;
    let table = catalog.engine().tree(schema.tree);
    let layout = table_layout(schema, &schema.name);
    let matches = collect_matches(catalog, txn, &p.target, params)?;
    let mut affected = 0u64;
    for (rid, old_row) in matches {
        let ctx = EvalCtx {
            layout: &layout,
            row: &old_row,
            params,
        };
        let mut new_row = old_row.clone();
        for (pos, e) in &p.assignments {
            new_row[*pos] = ctx.eval(e)?.coerce(schema.columns[*pos].ctype);
        }
        let mut new_rid = rid;
        if let Some(rc) = schema.rowid_col {
            if p.assignments.iter().any(|(pos, _)| *pos == rc) {
                new_rid = exact_rowid(&new_row[rc], &schema.name, &schema.columns[rc].name)?;
                new_row[rc] = Value::Int(new_rid);
            }
        }
        check_not_null(schema, &new_row)?;

        if new_rid != rid {
            if table.lookup(txn, &encode_rowid_key(new_rid))?.is_some() {
                return Err(Error::Constraint(format!(
                    "UNIQUE constraint failed: {}.{}",
                    schema.name,
                    schema.columns[schema.rowid_col.expect("rowid change")].name
                )));
            }
            table.delete(txn, &encode_rowid_key(rid))?;
        }
        for ix in &schema.indexes {
            let old_vals = index_values(ix, &old_row);
            let new_vals = index_values(ix, &new_row);
            if old_vals == new_vals && new_rid == rid {
                continue;
            }
            let itree = catalog.engine().tree(ix.tree);
            delete_index_entry(&itree, txn, ix, &old_vals, rid)?;
            insert_index_entry(&itree, txn, ix, &schema.name, &new_vals, new_rid)?;
        }
        table.insert(txn, &encode_rowid_key(new_rid), &encode_row(&new_row))?;
        affected += 1;
    }
    Ok(ResultSet {
        rows_affected: affected,
        ..ResultSet::empty()
    })
}

fn exec_delete(
    catalog: &Catalog,
    txn: &Txn,
    p: &crate::plan::DeletePlan,
    params: &[Value],
) -> Result<ResultSet> {
    let schema = &p.target.schema;
    let table = catalog.engine().tree(schema.tree);
    let matches = collect_matches(catalog, txn, &p.target, params)?;
    let mut affected = 0u64;
    for (rid, row) in matches {
        for ix in &schema.indexes {
            let itree = catalog.engine().tree(ix.tree);
            delete_index_entry(&itree, txn, ix, &index_values(ix, &row), rid)?;
        }
        table.delete(txn, &encode_rowid_key(rid))?;
        affected += 1;
    }
    Ok(ResultSet {
        rows_affected: affected,
        ..ResultSet::empty()
    })
}
