//! The query planner: binds a parsed [`Statement`] against the [`Catalog`]
//! and produces a typed physical plan.
//!
//! Plan shapes are deliberately few and scale-predictable (in the spirit of
//! PIQL): a point lookup by rowid, a bounded rowid range scan, a secondary-
//! index scan with an equality prefix plus at most one range column, and a
//! full table scan — each followed by a residual filter, optional
//! aggregation, projection, ORDER BY / DISTINCT / LIMIT / OFFSET.  Joins are
//! rejected with [`Error::Unsupported`] until the executor grows them.
//!
//! ## Physical properties
//!
//! Beyond choosing an access path, the planner derives two *physical
//! properties* of the chosen scan that the streaming executor exploits:
//!
//! * **Output ordering** — every access path yields rows in a known order:
//!   the primary tree by rowid, an index scan by the indexed columns (with
//!   the equality-probed prefix constant) and then by rowid.  When that
//!   order subsumes the `ORDER BY` prefix, [`SelectPlan::sort_needed`] is
//!   false, the sort operator is elided, and `LIMIT` turns into streaming
//!   early-exit: a bounded query touches only the rows it returns.
//! * **Coverage** — when the index entries alone supply every column the
//!   statement references, [`SelectPlan::covering`] is set and the executor
//!   reconstructs rows from the entries ([`crate::row::decode_index_entry`])
//!   without the per-entry rowid fetch-back into the primary tree.
//!   Coverage is refused for BLOB-declared columns, whose numeric key
//!   encodings are ambiguous (see `decode_index_entry`).
//!
//! When the WHERE clause constrains nothing, the planner will still switch a
//! full table scan to an unconstrained *covering* index scan if doing so
//! makes the requested order or grouping come out of the scan itself.
//!
//! ## Aggregates
//!
//! `COUNT(*) / COUNT(x) / SUM / AVG / MIN / MAX` with optional `GROUP BY`
//! compile to an [`AggregatePlan`].  Grouping is **streamed** when the group
//! keys are a prefix of the scan order (groups arrive contiguously, one
//! group of state at a time) and **hashed** otherwise.  A lone `MIN`/`MAX`
//! over a column positioned right after the index's equality prefix — with
//! the whole WHERE clause pushed down exactly — becomes a *one-row bounded
//! read*: the first entry of the scan for `MIN`, a reverse fence descent
//! ([`yesquel_ydbt::Dbt::seek_last`]) for `MAX`.  Output expressions of an
//! aggregate query are rewritten onto the post-aggregation row layout
//! `[group keys..., aggregates...]` via [`Expr::Slot`] references.
//!
//! ## Why predicate pushdown is exact
//!
//! The index-key encoding ([`crate::row`]) orders entries exactly as
//! [`Value::sort_cmp`] orders values — one numeric class shared by integers
//! and reals, then text, then blobs, with NULLs first.  A pushed-down bound
//! therefore never excludes a row the predicate would accept, whatever the
//! storage classes involved; the residual filter (the full WHERE clause is
//! always re-evaluated) only ever removes rows, so access-path choice is a
//! pure performance decision, never a correctness one.  The planner
//! additionally tracks when the pushdown is *exact* (every conjunct fully
//! absorbed into the probe and bounds); only then may an operator skip the
//! residual filter, which is what licenses the one-row `MIN`/`MAX` reads.

use std::collections::HashSet;
use std::sync::Arc;

use yesquel_common::{Error, Result};
use yesquel_kv::Txn;

use crate::ast::{
    BinOp, CreateIndex, CreateTable, Delete, Expr, Insert, Select, SelectItem, Statement, Update,
};
use crate::catalog::{Catalog, IndexInfo, TableSchema};
use crate::expr::ColumnLayout;
use crate::types::ColumnType;

/// One endpoint of a pushed-down range predicate.  The expression is
/// constant (no column references) and is evaluated at execution time, so
/// plans with parameters (`WHERE id > ?`) stay reusable.
#[derive(Debug, Clone)]
pub struct RangeBound {
    /// Constant expression producing the bound value.
    pub expr: Expr,
    /// True for `>=` / `<=`, false for `>` / `<`.
    pub inclusive: bool,
}

/// How the executor reaches the rows of one table.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// `rowid = const`: one DBT point lookup.
    RowidPoint(Expr),
    /// Bounded scan of the primary tree by rowid.
    RowidRange {
        /// Lower bound, if any.
        lo: Option<RangeBound>,
        /// Upper bound, if any.
        hi: Option<RangeBound>,
    },
    /// Secondary-index scan: equality on a prefix of the indexed columns,
    /// optionally a range on the next one, then (unless the plan is
    /// covering) a rowid fetch-back per entry.
    IndexScan {
        /// Position of the index in [`TableSchema::indexes`].
        index: usize,
        /// Constant equality probes for `index.columns[..eq.len()]`.
        eq: Vec<Expr>,
        /// Range lower bound on column `index.columns[eq.len()]`.
        lo: Option<RangeBound>,
        /// Range upper bound on the same column.
        hi: Option<RangeBound>,
    },
    /// Scan every row of the primary tree.
    FullScan,
}

impl AccessPath {
    /// True if the path can yield at most one row (a rowid point lookup or
    /// a unique index probed on all of its columns).
    fn single_row(&self, schema: &TableSchema) -> bool {
        match self {
            AccessPath::RowidPoint(_) => true,
            AccessPath::IndexScan { index, eq, .. } => {
                let ix = &schema.indexes[*index];
                ix.unique && eq.len() == ix.columns.len()
            }
            _ => false,
        }
    }
}

/// One projected output column.
#[derive(Debug, Clone)]
pub struct OutputCol {
    /// Result-set header.
    pub name: String,
    /// Alias explicitly given with `AS` (resolvable in ORDER BY).
    pub alias: Option<String>,
    /// Expression over the base table's columns — or, for aggregate
    /// queries, over the post-aggregation row via [`Expr::Slot`].
    pub expr: Expr,
}

/// What one ORDER BY key sorts on.
#[derive(Debug, Clone)]
pub enum OrderTarget {
    /// An output column (by ordinal `ORDER BY 2` or by alias).
    Output(usize),
    /// An arbitrary expression over the projection's input row.
    Expr(Expr),
}

/// A resolved ORDER BY key.
#[derive(Debug, Clone)]
pub struct OrderSpec {
    /// What to sort on.
    pub target: OrderTarget,
    /// Descending order.
    pub desc: bool,
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`: rows in the group.
    CountStar,
    /// `COUNT(x)`: non-NULL values.
    Count,
    /// `SUM(x)`: integer sum while all inputs are integers, real otherwise;
    /// NULL over zero non-NULL inputs.
    Sum,
    /// `AVG(x)`: real mean of the non-NULL inputs; NULL over zero.
    Avg,
    /// `MIN(x)` by [`Value::sort_cmp`], ignoring NULLs.
    Min,
    /// `MAX(x)` by [`Value::sort_cmp`], ignoring NULLs.
    Max,
}

impl AggFunc {
    /// Display name used by `EXPLAIN`.
    pub fn display(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate call of the statement, deduplicated by (function, arg).
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument expression over the base row (`None` for `COUNT(*)`).
    pub arg: Option<Expr>,
}

/// How groups are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Group keys are a prefix of the scan order: groups arrive
    /// contiguously and one group of state streams through at a time.
    Stream,
    /// Arbitrary scan order: accumulate per group key in a map (emitted in
    /// group-key order for determinism).
    Hash,
    /// A lone `MIN`/`MAX` answered by a one-row bounded read at the edge of
    /// the scanned range.
    MinMax,
}

impl AggStrategy {
    /// Display name used by `EXPLAIN`.
    pub fn name(&self) -> &'static str {
        match self {
            AggStrategy::Stream => "stream",
            AggStrategy::Hash => "hash",
            AggStrategy::MinMax => "minmax",
        }
    }
}

/// Aggregation step of a SELECT.  The post-aggregation row layout is
/// `[group key values..., aggregate results...]`; projection and ORDER BY
/// expressions of the plan reference it through [`Expr::Slot`].
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    /// GROUP BY expressions over the base row.
    pub group_by: Vec<Expr>,
    /// Aggregate calls, in first-appearance order.
    pub aggs: Vec<AggSpec>,
    /// Grouping strategy.
    pub strategy: AggStrategy,
}

/// Physical plan of a SELECT over one table.
///
/// The shared pieces (filter, projection, sort keys, aggregation, layout)
/// sit behind `Arc`s: plans are built once (and live in the session's
/// statement cache), while every execution clones them into its owned
/// operator stack — those clones must be reference-count bumps, not deep
/// expression copies.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// The table scanned.
    pub schema: Arc<TableSchema>,
    /// Qualifier rows resolve against (alias if given, else table name).
    pub qualifier: String,
    /// Column layout of the base row (resolved once at plan time).
    pub layout: ColumnLayout,
    /// How rows are reached.
    pub access: AccessPath,
    /// Residual filter: the full WHERE clause, re-evaluated on every row.
    pub filter: Option<Arc<Expr>>,
    /// Aggregation, if the statement aggregates.
    pub aggregate: Option<Arc<AggregatePlan>>,
    /// Projection (over the base row, or the post-aggregation row).
    pub output: Arc<Vec<OutputCol>>,
    /// Sort keys.
    pub order_by: Arc<Vec<OrderSpec>>,
    /// False when the scan already yields `order_by`'s order (or at most
    /// one row reaches the sort): the sort operator is elided and LIMIT
    /// early-exit applies.
    pub sort_needed: bool,
    /// True when the index entries alone supply every referenced column:
    /// the executor skips the per-entry rowid fetch-back.
    pub covering: bool,
    /// Drop duplicate output rows.
    pub distinct: bool,
    /// Row limit.
    pub limit: Option<u64>,
    /// Rows skipped before the limit.
    pub offset: Option<u64>,
}

/// Rows the executor must visit for an UPDATE or DELETE.
#[derive(Debug, Clone)]
pub struct DmlTarget {
    /// The table mutated.
    pub schema: Arc<TableSchema>,
    /// Column layout of the base row (resolved once at plan time).
    pub layout: ColumnLayout,
    /// How the affected rows are found.
    pub access: AccessPath,
    /// Residual filter (full WHERE clause).
    pub filter: Option<Arc<Expr>>,
}

/// Physical plan of an INSERT.
#[derive(Debug, Clone)]
pub struct InsertPlan {
    /// Target table.
    pub schema: Arc<TableSchema>,
    /// Column positions the value lists assign, in statement order.
    pub columns: Vec<usize>,
    /// Value expressions (constant: no column references).
    pub rows: Vec<Vec<Expr>>,
}

/// Physical plan of an UPDATE.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Affected rows.
    pub target: DmlTarget,
    /// `(column position, new-value expression)` assignments.
    pub assignments: Vec<(usize, Expr)>,
}

/// Physical plan of a DELETE.
#[derive(Debug, Clone)]
pub struct DeletePlan {
    /// Affected rows.
    pub target: DmlTarget,
}

/// A planned statement, ready for the executor.
#[derive(Debug, Clone)]
pub enum Plan {
    /// SELECT without FROM: evaluate the items once.
    ConstSelect(Vec<OutputCol>),
    /// SELECT over a table.
    Select(SelectPlan),
    /// INSERT.
    Insert(InsertPlan),
    /// UPDATE.
    Update(UpdatePlan),
    /// DELETE.
    Delete(DeletePlan),
    /// EXPLAIN: return the inner plan's description instead of running it.
    Explain(Box<Plan>),
    /// EXPLAIN ANALYZE: run the inner plan with per-operator metering and
    /// return the measurements instead of the result rows.
    ExplainAnalyze(Box<Plan>),
    /// CREATE TABLE (executed by the catalog).
    CreateTable(CreateTable),
    /// CREATE INDEX (executed by the catalog).
    CreateIndex(CreateIndex),
    /// DROP TABLE (executed by the catalog).
    DropTable {
        /// Table to drop.
        name: String,
        /// Do not error if missing.
        if_exists: bool,
    },
}

impl Plan {
    /// A one-line, EXPLAIN-style description of the plan (tests and
    /// diagnostics; the format is stable enough to assert on):
    ///
    /// ```text
    /// <access> [covering] [ordered by index] [AGG <strategy>(<funcs>) [GROUP BY <n>]]
    /// ```
    pub fn describe(&self) -> String {
        fn access(schema: &TableSchema, a: &AccessPath) -> String {
            match a {
                AccessPath::RowidPoint(_) => format!("POINT {} (rowid=?)", schema.name),
                AccessPath::RowidRange { lo, hi } => format!(
                    "RANGE {} (rowid {}..{})",
                    schema.name,
                    if lo.is_some() { "lo" } else { "" },
                    if hi.is_some() { "hi" } else { "" }
                ),
                AccessPath::IndexScan { index, eq, lo, hi } => {
                    let ix = &schema.indexes[*index];
                    let mut parts = vec![format!("eq={}", eq.len())];
                    if lo.is_some() || hi.is_some() {
                        parts.push(format!(
                            "range {}..{}",
                            if lo.is_some() { "lo" } else { "" },
                            if hi.is_some() { "hi" } else { "" }
                        ));
                    }
                    format!(
                        "INDEX {} USING {} ({})",
                        schema.name,
                        ix.name,
                        parts.join(", ")
                    )
                }
                AccessPath::FullScan => format!("SCAN {}", schema.name),
            }
        }
        match self {
            Plan::ConstSelect(_) => "CONST".into(),
            Plan::Select(p) => {
                let mut s = access(&p.schema, &p.access);
                if p.covering {
                    s.push_str(" covering");
                }
                if !p.order_by.is_empty() && !p.sort_needed {
                    s.push_str(" ordered by index");
                }
                if let Some(a) = &p.aggregate {
                    let funcs: Vec<&str> = a.aggs.iter().map(|x| x.func.display()).collect();
                    s.push_str(&format!(" AGG {}({})", a.strategy.name(), funcs.join(",")));
                    if !a.group_by.is_empty() {
                        s.push_str(&format!(" GROUP BY {}", a.group_by.len()));
                    }
                }
                s
            }
            Plan::Insert(p) => format!("INSERT {}", p.schema.name),
            Plan::Update(p) => format!("UPDATE {}", access(&p.target.schema, &p.target.access)),
            Plan::Delete(p) => format!("DELETE {}", access(&p.target.schema, &p.target.access)),
            Plan::Explain(inner) => format!("EXPLAIN {}", inner.describe()),
            Plan::ExplainAnalyze(inner) => format!("EXPLAIN ANALYZE {}", inner.describe()),
            Plan::CreateTable(ct) => format!("CREATE TABLE {}", ct.name),
            Plan::CreateIndex(ci) => format!("CREATE INDEX {}", ci.name),
            Plan::DropTable { name, .. } => format!("DROP TABLE {name}"),
        }
    }
}

/// Plans one statement.  `BEGIN`/`COMMIT`/`ROLLBACK` are session control and
/// must be intercepted before planning.
pub fn plan_statement(catalog: &Catalog, txn: &Txn, stmt: &Statement) -> Result<Plan> {
    catalog.counters().plans.inc();
    plan_inner(catalog, txn, stmt)
}

/// [`plan_statement`] without the `sql.plans` bump (so an EXPLAIN counts as
/// one plan, not two).
fn plan_inner(catalog: &Catalog, txn: &Txn, stmt: &Statement) -> Result<Plan> {
    match stmt {
        Statement::CreateTable(ct) => Ok(Plan::CreateTable(ct.clone())),
        Statement::CreateIndex(ci) => Ok(Plan::CreateIndex(ci.clone())),
        Statement::DropTable { name, if_exists } => Ok(Plan::DropTable {
            name: name.clone(),
            if_exists: *if_exists,
        }),
        Statement::Select(sel) => plan_select(catalog, txn, sel),
        Statement::Insert(ins) => plan_insert(catalog, txn, ins),
        Statement::Update(upd) => plan_update(catalog, txn, upd),
        Statement::Delete(del) => plan_delete(catalog, txn, del),
        Statement::Explain(inner) => {
            let inner = plan_inner(catalog, txn, inner)?;
            Ok(Plan::Explain(Box::new(inner)))
        }
        Statement::ExplainAnalyze(inner) => {
            let inner = plan_inner(catalog, txn, inner)?;
            Ok(Plan::ExplainAnalyze(Box::new(inner)))
        }
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::InvalidArgument(
            "transaction control must be handled by the session".into(),
        )),
    }
}

/// The column layout of one table under a qualifier.
pub fn table_layout(schema: &TableSchema, qualifier: &str) -> ColumnLayout {
    ColumnLayout::new(
        schema
            .columns
            .iter()
            .map(|c| (Some(qualifier.to_string()), c.name.clone()))
            .collect(),
    )
}

/// True for the names of aggregate functions.
pub fn is_aggregate_fn(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// True if `e` references no columns (parameters and scalar functions are
/// fine) — i.e. it can be evaluated once at execution start.
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Column { .. } | Expr::Slot(_) => false,
        Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
        Expr::Neg(x) | Expr::Not(x) => is_const(x),
        Expr::IsNull { expr, .. } => is_const(expr),
        Expr::InList { expr, list, .. } => is_const(expr) && list.iter().all(is_const),
        Expr::Between {
            expr, low, high, ..
        } => is_const(expr) && is_const(low) && is_const(high),
        Expr::Function { args, star, .. } => !star && args.iter().all(is_const),
    }
}

/// Validates every column reference in `e` against `layout` and rejects
/// aggregates, so errors surface at plan time rather than per-row.  Used
/// for every scalar context (WHERE, GROUP BY keys, aggregate arguments,
/// non-aggregate projections).
fn validate_expr(e: &Expr, layout: &ColumnLayout) -> Result<()> {
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) => Ok(()),
        Expr::Column { table, name } => {
            layout.resolve(table.as_deref(), name)?;
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            validate_expr(left, layout)?;
            validate_expr(right, layout)
        }
        Expr::Neg(x) | Expr::Not(x) => validate_expr(x, layout),
        Expr::IsNull { expr, .. } => validate_expr(expr, layout),
        Expr::InList { expr, list, .. } => {
            validate_expr(expr, layout)?;
            list.iter().try_for_each(|x| validate_expr(x, layout))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            validate_expr(expr, layout)?;
            validate_expr(low, layout)?;
            validate_expr(high, layout)
        }
        Expr::Function { name, args, star } => {
            if *star || is_aggregate_fn(name) {
                return Err(Error::Unsupported(format!(
                    "aggregate {name}() is not allowed here"
                )));
            }
            args.iter().try_for_each(|x| validate_expr(x, layout))
        }
    }
}

/// Flattens a conjunction into its conjuncts.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// A conjunct normalized to `column <op> constant`.
struct ColConstraint {
    col: usize,
    op: BinOp,
    value: Expr,
    /// Which WHERE conjunct this constraint came from (for exactness
    /// accounting: a conjunct is absorbed only if all of its constraints
    /// end up in the chosen access path).
    conjunct: usize,
}

/// Resolves a column reference within one table under `qualifier`.
fn resolve_col(
    schema: &TableSchema,
    qualifier: &str,
    table: &Option<String>,
    name: &str,
) -> Option<usize> {
    if let Some(t) = table {
        if !t.eq_ignore_ascii_case(qualifier) {
            return None;
        }
    }
    schema.col_index(name)
}

/// `e` as a plain base-table column reference, if it is one.
fn plain_col(schema: &TableSchema, qualifier: &str, e: &Expr) -> Option<usize> {
    match e {
        Expr::Column { table, name } => resolve_col(schema, qualifier, table, name),
        _ => None,
    }
}

/// Tries to view a conjunct as `column <op> const` (commuting if the column
/// is on the right).  BETWEEN becomes a `Ge` + `Le` pair.
fn extract_constraints(
    conjunct: &Expr,
    conjunct_idx: usize,
    schema: &TableSchema,
    qualifier: &str,
    out: &mut Vec<ColConstraint>,
) {
    match conjunct {
        Expr::Binary { op, left, right }
            if matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            if let (Expr::Column { table, name }, v) = (&**left, &**right) {
                if is_const(v) {
                    if let Some(col) = resolve_col(schema, qualifier, table, name) {
                        out.push(ColConstraint {
                            col,
                            op: *op,
                            value: v.clone(),
                            conjunct: conjunct_idx,
                        });
                    }
                }
            } else if let (v, Expr::Column { table, name }) = (&**left, &**right) {
                if is_const(v) {
                    if let Some(col) = resolve_col(schema, qualifier, table, name) {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        out.push(ColConstraint {
                            col,
                            op: flipped,
                            value: v.clone(),
                            conjunct: conjunct_idx,
                        });
                    }
                }
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let Expr::Column { table, name } = &**expr {
                if is_const(low) && is_const(high) {
                    if let Some(col) = resolve_col(schema, qualifier, table, name) {
                        out.push(ColConstraint {
                            col,
                            op: BinOp::Ge,
                            value: (**low).clone(),
                            conjunct: conjunct_idx,
                        });
                        out.push(ColConstraint {
                            col,
                            op: BinOp::Le,
                            value: (**high).clone(),
                            conjunct: conjunct_idx,
                        });
                    }
                }
            }
        }
        _ => {}
    }
}

/// A chosen range bound plus the index (into the constraints list) it came
/// from, for exactness accounting.
type PickedBound = Option<(RangeBound, usize)>;

/// Range bounds on one column assembled from its constraints; also returns
/// the indexes (into `constraints`) of the bounds chosen.
fn range_for(constraints: &[ColConstraint], col: usize) -> (PickedBound, PickedBound) {
    let mut lo = None;
    let mut hi = None;
    for (i, c) in constraints.iter().enumerate().filter(|(_, c)| c.col == col) {
        // Keep the first bound seen on each side; duplicates stay in the
        // residual filter.
        match c.op {
            BinOp::Gt | BinOp::Ge if lo.is_none() => {
                lo = Some((
                    RangeBound {
                        expr: c.value.clone(),
                        inclusive: c.op == BinOp::Ge,
                    },
                    i,
                ));
            }
            BinOp::Lt | BinOp::Le if hi.is_none() => {
                hi = Some((
                    RangeBound {
                        expr: c.value.clone(),
                        inclusive: c.op == BinOp::Le,
                    },
                    i,
                ));
            }
            _ => {}
        }
    }
    (lo, hi)
}

/// Derived facts about the chosen access path that the property checks
/// (ordering, grouping, one-row MIN/MAX) consume.
struct AccessProps {
    /// Columns held constant by an equality conjunct of the WHERE clause
    /// (whether or not the access path probes them): the residual filter
    /// re-applies every conjunct, so these never vary across emitted rows.
    pinned: HashSet<usize>,
    /// True when the pushdown is exact: every WHERE conjunct was fully
    /// absorbed into the access path's probe and bounds, so the residual
    /// filter cannot reject any scanned row.
    exact: bool,
}

/// Chooses the access path for one table given the WHERE clause.
fn choose_access(
    schema: &TableSchema,
    qualifier: &str,
    where_clause: Option<&Expr>,
) -> (AccessPath, AccessProps) {
    let mut conjuncts = Vec::new();
    if let Some(w) = where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    let mut constraints = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        extract_constraints(c, i, schema, qualifier, &mut constraints);
    }
    let pinned: HashSet<usize> = constraints
        .iter()
        .filter(|c| c.op == BinOp::Eq)
        .map(|c| c.col)
        .collect();

    // A conjunct is absorbed iff it produced constraints and every one of
    // them is in the used set; the pushdown is exact iff all conjuncts are.
    let exactness = |used: &[usize]| -> bool {
        conjuncts.iter().enumerate().all(|(ci, _)| {
            let mut produced = 0usize;
            let mut consumed = 0usize;
            for (k, c) in constraints.iter().enumerate() {
                if c.conjunct == ci {
                    produced += 1;
                    if used.contains(&k) {
                        consumed += 1;
                    }
                }
            }
            produced > 0 && produced == consumed
        })
    };

    if constraints.is_empty() {
        let exact = conjuncts.is_empty();
        return (AccessPath::FullScan, AccessProps { pinned, exact });
    }

    // 1. Equality on the rowid column: a point lookup beats everything.
    if let Some(rc) = schema.rowid_col {
        if let Some((k, c)) = constraints
            .iter()
            .enumerate()
            .find(|(_, c)| c.col == rc && c.op == BinOp::Eq)
        {
            let exact = exactness(&[k]);
            return (
                AccessPath::RowidPoint(c.value.clone()),
                AccessProps { pinned, exact },
            );
        }
    }

    // 2. Best secondary index: longest equality prefix, then a range on the
    //    next column; unique indexes win ties.
    struct IndexCandidate {
        index: usize,
        eq: Vec<Expr>,
        lo: Option<RangeBound>,
        hi: Option<RangeBound>,
        used: Vec<usize>,
        score: u64,
    }
    let mut best: Option<IndexCandidate> = None;
    for (i, ix) in schema.indexes.iter().enumerate() {
        let mut eq = Vec::new();
        let mut used = Vec::new();
        for &col in &ix.columns {
            match constraints
                .iter()
                .enumerate()
                .find(|(_, c)| c.col == col && c.op == BinOp::Eq)
            {
                Some((k, c)) => {
                    eq.push(c.value.clone());
                    used.push(k);
                }
                None => break,
            }
        }
        let (lo, hi) = if eq.len() < ix.columns.len() {
            range_for(&constraints, ix.columns[eq.len()])
        } else {
            (None, None)
        };
        let (lo, hi) = (
            lo.map(|(b, k)| {
                used.push(k);
                b
            }),
            hi.map(|(b, k)| {
                used.push(k);
                b
            }),
        );
        let score = (eq.len() as u64) * 4
            + u64::from(lo.is_some())
            + u64::from(hi.is_some())
            + u64::from(ix.unique && eq.len() == ix.columns.len());
        if score > 0 && best.as_ref().map(|b| b.score < score).unwrap_or(true) {
            best = Some(IndexCandidate {
                index: i,
                eq,
                lo,
                hi,
                used,
                score,
            });
        }
    }
    if let Some(IndexCandidate {
        index,
        eq,
        lo,
        hi,
        used,
        ..
    }) = best
    {
        let exact = exactness(&used);
        return (
            AccessPath::IndexScan { index, eq, lo, hi },
            AccessProps { pinned, exact },
        );
    }

    // 3. Range on the rowid column.
    if let Some(rc) = schema.rowid_col {
        let (lo, hi) = range_for(&constraints, rc);
        if lo.is_some() || hi.is_some() {
            let mut used = Vec::new();
            let lo = lo.map(|(b, k)| {
                used.push(k);
                b
            });
            let hi = hi.map(|(b, k)| {
                used.push(k);
                b
            });
            let exact = exactness(&used);
            return (
                AccessPath::RowidRange { lo, hi },
                AccessProps { pinned, exact },
            );
        }
    }

    (
        AccessPath::FullScan,
        AccessProps {
            pinned,
            exact: false,
        },
    )
}

/// The base-table column an ORDER BY key sorts on, if it is a plain column.
fn order_key_col(
    schema: &TableSchema,
    qualifier: &str,
    output: &[OutputCol],
    spec: &OrderSpec,
) -> Option<usize> {
    match &spec.target {
        OrderTarget::Output(i) => plain_col(schema, qualifier, &output[*i].expr),
        OrderTarget::Expr(e) => plain_col(schema, qualifier, e),
    }
}

/// True when the access path's output ordering subsumes `order_by`, so the
/// sort can be elided.
///
/// The scan's order is: equality-pinned columns are constant; an index scan
/// then varies `ix.columns[eq..]` in ascending order with the rowid as the
/// final tie-break (non-unique indexes store it as a key suffix); rowid
/// scans vary the rowid.  Once a key that makes the order total is consumed,
/// any further ORDER BY keys are tie-breaks over singleton groups and hold
/// trivially.  The rowid is always total; the last column of a unique index
/// is total only when every scanned column is declared NOT NULL — unique
/// indexes store NULL-containing entries non-unique style (rowid suffix,
/// duplicates allowed), so with nullable columns equal-key groups are
/// ordered by rowid, not by the remaining ORDER BY keys.  All scans are
/// forward, so any `DESC` key defeats elision.
fn scan_satisfies_order(
    schema: &TableSchema,
    qualifier: &str,
    access: &AccessPath,
    props: &AccessProps,
    order_by: &[OrderSpec],
    output: &[OutputCol],
) -> bool {
    if order_by.is_empty() || access.single_row(schema) {
        return true;
    }
    // The sequence of columns the scan varies, in order.
    let (seq, rowid_tiebreak): (Vec<usize>, bool) = match access {
        AccessPath::RowidPoint(_) => return true,
        AccessPath::RowidRange { .. } | AccessPath::FullScan => match schema.rowid_col {
            Some(rc) => (vec![rc], false),
            None => (vec![], false),
        },
        AccessPath::IndexScan { index, eq, .. } => {
            let ix = &schema.indexes[*index];
            (ix.columns[eq.len()..].to_vec(), !ix.unique)
        }
    };
    let mut pos = 0usize;
    for spec in order_by {
        if spec.desc {
            return false;
        }
        let Some(col) = order_key_col(schema, qualifier, output, spec) else {
            return false;
        };
        if props.pinned.contains(&col) {
            continue;
        }
        if pos < seq.len() && seq[pos] == col {
            pos += 1;
            // Consuming the whole key of the primary tree — or of a unique
            // index none of whose scanned columns can be NULL (equality-
            // probed columns are never NULL: a NULL probe matches nothing)
            // — makes the prefix total.
            let total = match access {
                AccessPath::RowidRange { .. } | AccessPath::FullScan => true,
                AccessPath::IndexScan { index, .. } => {
                    let ix = &schema.indexes[*index];
                    pos == seq.len()
                        && ix.unique
                        && seq
                            .iter()
                            .all(|&c| schema.columns[c].not_null || schema.columns[c].primary_key)
                }
                AccessPath::RowidPoint(_) => true,
            };
            if total && pos == seq.len() {
                return true;
            }
            continue;
        }
        // After all index columns, the rowid suffix orders equal entries.
        if pos >= seq.len() && rowid_tiebreak && Some(col) == schema.rowid_col {
            return true;
        }
        return false;
    }
    true
}

/// True when rows with equal group keys arrive contiguously from the scan:
/// the non-pinned group columns are exactly the first columns the scan
/// varies (as a set — within the prefix their mutual order is free).
fn scan_groups_contiguous(
    schema: &TableSchema,
    qualifier: &str,
    access: &AccessPath,
    props: &AccessProps,
    group_by: &[Expr],
) -> bool {
    if access.single_row(schema) {
        return true;
    }
    let mut group_cols = HashSet::new();
    for g in group_by {
        match plain_col(schema, qualifier, g) {
            Some(c) => {
                if !props.pinned.contains(&c) {
                    group_cols.insert(c);
                }
            }
            None => return false,
        }
    }
    if group_cols.is_empty() {
        // All keys pinned: a single group.
        return true;
    }
    let seq: Vec<usize> = match access {
        AccessPath::RowidPoint(_) => return true,
        AccessPath::RowidRange { .. } | AccessPath::FullScan => match schema.rowid_col {
            Some(rc) => vec![rc],
            None => vec![],
        },
        AccessPath::IndexScan { index, eq, .. } => {
            schema.indexes[*index].columns[eq.len()..].to_vec()
        }
    };
    if group_cols.len() > seq.len() {
        return false;
    }
    seq[..group_cols.len()]
        .iter()
        .all(|c| group_cols.contains(c))
}

/// Collects the base-table columns referenced by `e` into `out`.  Returns
/// false (coverage impossible) on a column that does not resolve against
/// this table.
fn collect_cols(schema: &TableSchema, qualifier: &str, e: &Expr, out: &mut HashSet<usize>) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) => true,
        Expr::Column { table, name } => match resolve_col(schema, qualifier, table, name) {
            Some(c) => {
                out.insert(c);
                true
            }
            None => false,
        },
        Expr::Binary { left, right, .. } => {
            collect_cols(schema, qualifier, left, out)
                && collect_cols(schema, qualifier, right, out)
        }
        Expr::Neg(x) | Expr::Not(x) => collect_cols(schema, qualifier, x, out),
        Expr::IsNull { expr, .. } => collect_cols(schema, qualifier, expr, out),
        Expr::InList { expr, list, .. } => {
            collect_cols(schema, qualifier, expr, out)
                && list.iter().all(|x| collect_cols(schema, qualifier, x, out))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_cols(schema, qualifier, expr, out)
                && collect_cols(schema, qualifier, low, out)
                && collect_cols(schema, qualifier, high, out)
        }
        Expr::Function { args, .. } => args.iter().all(|x| collect_cols(schema, qualifier, x, out)),
    }
}

/// True when index `ix` supplies every referenced column exactly: each is
/// either the rowid (recoverable from any entry) or an indexed column whose
/// declared type permits exact decode from the order-preserving key (BLOB
/// columns are refused — their numeric encodings are ambiguous, see
/// [`crate::row::decode_index_entry`]).
fn index_covers(schema: &TableSchema, ix: &IndexInfo, referenced: &HashSet<usize>) -> bool {
    referenced.iter().all(|c| {
        Some(*c) == schema.rowid_col
            || (ix.columns.contains(c) && schema.columns[*c].ctype != ColumnType::Blob)
    })
}

/// Display name of a projected expression without an alias.
fn output_name(e: &Expr, ordinal: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => format!("{}()", name.to_lowercase()),
        _ => format!("column{}", ordinal + 1),
    }
}

/// Structural expression equivalence up to column-name resolution: two
/// column references are the same if they resolve to the same slot of
/// `layout` (so `CAT`, `cat` and `g.cat` all match a `GROUP BY cat` key),
/// everything else compares structurally.  Derived `PartialEq` would treat
/// identifier case and qualifiers as significant, which no other resolution
/// path does.
fn exprs_equivalent(a: &Expr, b: &Expr, layout: &ColumnLayout) -> bool {
    let eq = |x: &Expr, y: &Expr| exprs_equivalent(x, y, layout);
    match (a, b) {
        (
            Expr::Column {
                table: ta,
                name: na,
            },
            Expr::Column {
                table: tb,
                name: nb,
            },
        ) => match (
            layout.resolve(ta.as_deref(), na),
            layout.resolve(tb.as_deref(), nb),
        ) {
            (Ok(x), Ok(y)) => x == y,
            _ => ta == tb && na.eq_ignore_ascii_case(nb),
        },
        (Expr::Literal(x), Expr::Literal(y)) => x == y,
        (Expr::Param(x), Expr::Param(y)) => x == y,
        (Expr::Slot(x), Expr::Slot(y)) => x == y,
        (
            Expr::Binary {
                op: oa,
                left: la,
                right: ra,
            },
            Expr::Binary {
                op: ob,
                left: lb,
                right: rb,
            },
        ) => oa == ob && eq(la, lb) && eq(ra, rb),
        (Expr::Neg(x), Expr::Neg(y)) | (Expr::Not(x), Expr::Not(y)) => eq(x, y),
        (
            Expr::IsNull {
                expr: xa,
                negated: na,
            },
            Expr::IsNull {
                expr: xb,
                negated: nb,
            },
        ) => na == nb && eq(xa, xb),
        (
            Expr::InList {
                expr: xa,
                list: la,
                negated: na,
            },
            Expr::InList {
                expr: xb,
                list: lb,
                negated: nb,
            },
        ) => {
            na == nb
                && eq(xa, xb)
                && la.len() == lb.len()
                && la.iter().zip(lb).all(|(x, y)| eq(x, y))
        }
        (
            Expr::Between {
                expr: xa,
                low: loa,
                high: hia,
                negated: na,
            },
            Expr::Between {
                expr: xb,
                low: lob,
                high: hib,
                negated: nb,
            },
        ) => na == nb && eq(xa, xb) && eq(loa, lob) && eq(hia, hib),
        (
            Expr::Function {
                name: fa,
                args: aa,
                star: sa,
            },
            Expr::Function {
                name: fb,
                args: ab,
                star: sb,
            },
        ) => {
            // Function names are uppercased by the parser.
            fa == fb && sa == sb && aa.len() == ab.len() && aa.iter().zip(ab).all(|(x, y)| eq(x, y))
        }
        _ => false,
    }
}

/// Rewrites an aggregate-query expression onto the post-aggregation row
/// layout `[group keys..., aggregates...]`: subtrees equal to a GROUP BY
/// expression become `Slot(i)`, aggregate calls become
/// `Slot(group_by.len() + j)` (collecting specs into `aggs`, deduplicated),
/// and any base-column reference outside both is an error — the strict SQL
/// rule that every projected column appears in GROUP BY or an aggregate.
fn rewrite_agg_expr(
    e: &Expr,
    group_by: &[Expr],
    aggs: &mut Vec<AggSpec>,
    layout: &ColumnLayout,
) -> Result<Expr> {
    if let Some(i) = group_by.iter().position(|g| exprs_equivalent(g, e, layout)) {
        return Ok(Expr::Slot(i));
    }
    match e {
        Expr::Function { name, args, star } if *star || is_aggregate_fn(name) => {
            let spec = match (name.as_str(), *star) {
                ("COUNT", true) => AggSpec {
                    func: AggFunc::CountStar,
                    arg: None,
                },
                (_, true) => {
                    return Err(Error::Unsupported(format!("{name}(*) is not valid")));
                }
                (fname, false) => {
                    if args.len() != 1 {
                        return Err(Error::Schema(format!(
                            "{fname}() takes exactly one argument"
                        )));
                    }
                    let arg = &args[0];
                    if arg.contains_aggregate() {
                        return Err(Error::Unsupported(
                            "nested aggregate functions are not allowed".into(),
                        ));
                    }
                    validate_expr(arg, layout)?;
                    let func = match fname {
                        "COUNT" => AggFunc::Count,
                        "SUM" => AggFunc::Sum,
                        "AVG" => AggFunc::Avg,
                        "MIN" => AggFunc::Min,
                        "MAX" => AggFunc::Max,
                        other => {
                            return Err(Error::Unsupported(format!("unknown aggregate {other}()")))
                        }
                    };
                    AggSpec {
                        func,
                        arg: Some(arg.clone()),
                    }
                }
            };
            let j = match aggs
                .iter()
                .position(|s| s.func == spec.func && s.arg == spec.arg)
            {
                Some(j) => j,
                None => {
                    aggs.push(spec);
                    aggs.len() - 1
                }
            };
            Ok(Expr::Slot(group_by.len() + j))
        }
        Expr::Column { table, name } => Err(Error::Schema(format!(
            "column {}{name} must appear in GROUP BY or inside an aggregate",
            table.as_ref().map(|t| format!("{t}.")).unwrap_or_default()
        ))),
        Expr::Literal(_) | Expr::Param(_) | Expr::Slot(_) => Ok(e.clone()),
        Expr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(rewrite_agg_expr(left, group_by, aggs, layout)?),
            right: Box::new(rewrite_agg_expr(right, group_by, aggs, layout)?),
        }),
        Expr::Neg(x) => Ok(Expr::Neg(Box::new(rewrite_agg_expr(
            x, group_by, aggs, layout,
        )?))),
        Expr::Not(x) => Ok(Expr::Not(Box::new(rewrite_agg_expr(
            x, group_by, aggs, layout,
        )?))),
        Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs, layout)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs, layout)?),
            list: list
                .iter()
                .map(|x| rewrite_agg_expr(x, group_by, aggs, layout))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs, layout)?),
            low: Box::new(rewrite_agg_expr(low, group_by, aggs, layout)?),
            high: Box::new(rewrite_agg_expr(high, group_by, aggs, layout)?),
            negated: *negated,
        }),
        Expr::Function { name, args, star } => Ok(Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|x| rewrite_agg_expr(x, group_by, aggs, layout))
                .collect::<Result<_>>()?,
            star: *star,
        }),
    }
}

fn plan_select(catalog: &Catalog, txn: &Txn, sel: &Select) -> Result<Plan> {
    let Some(from) = &sel.from else {
        // Expression-only SELECT: items must not reference columns.
        let layout = ColumnLayout::empty();
        let mut output = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Schema("SELECT * requires a FROM clause".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    validate_expr(expr, &layout)?;
                    output.push(OutputCol {
                        name: alias.clone().unwrap_or_else(|| output_name(expr, i)),
                        alias: alias.clone(),
                        expr: expr.clone(),
                    });
                }
            }
        }
        return Ok(Plan::ConstSelect(output));
    };

    if !from.joins.is_empty() {
        return Err(Error::Unsupported(
            "joins are not yet supported by the executor".into(),
        ));
    }
    let schema = catalog.require_table(txn, &from.base.name)?;
    let qualifier = from
        .base
        .alias
        .clone()
        .unwrap_or_else(|| schema.name.clone());
    let layout = table_layout(&schema, &qualifier);

    if let Some(w) = &sel.where_clause {
        validate_expr(w, &layout)?;
    }

    let is_aggregate_query = !sel.group_by.is_empty()
        || sel.items.iter().any(|it| match it {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Wildcard => false,
        })
        || sel.order_by.iter().any(|k| k.expr.contains_aggregate());

    // Base-table columns the statement references (everything the scan must
    // supply): drives the coverage decision.
    let mut referenced = HashSet::new();
    let mut resolvable = sel
        .where_clause
        .as_ref()
        .map(|w| collect_cols(&schema, &qualifier, w, &mut referenced))
        .unwrap_or(true);
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                referenced.extend(0..schema.columns.len());
            }
            SelectItem::Expr { expr, .. } => {
                resolvable &= collect_cols(&schema, &qualifier, expr, &mut referenced);
            }
        }
    }
    for g in &sel.group_by {
        resolvable &= collect_cols(&schema, &qualifier, g, &mut referenced);
    }
    for k in &sel.order_by {
        // Ordinals and aliases reference output columns already collected;
        // collecting the raw expression is a harmless over-approximation.
        resolvable &= collect_cols(&schema, &qualifier, &k.expr, &mut referenced);
    }

    let (access, props) = choose_access(&schema, &qualifier, sel.where_clause.as_ref());

    if is_aggregate_query {
        plan_aggregate_select(
            sel, schema, qualifier, layout, access, props, referenced, resolvable,
        )
    } else {
        plan_plain_select(
            sel, schema, qualifier, layout, access, props, referenced, resolvable,
        )
    }
}

/// Resolves one ORDER BY key of a non-aggregate SELECT: ordinals and output
/// aliases resolve to output columns, anything else is an expression over
/// the base row.
fn resolve_order_target(
    key: &crate::ast::OrderKey,
    output: &[OutputCol],
    layout: &ColumnLayout,
) -> Result<Option<OrderTarget>> {
    match &key.expr {
        Expr::Literal(crate::types::Value::Int(n)) => {
            let n = *n;
            if n < 1 || n as usize > output.len() {
                return Err(Error::Schema(format!(
                    "ORDER BY position {n} is out of range (1..{})",
                    output.len()
                )));
            }
            Ok(Some(OrderTarget::Output(n as usize - 1)))
        }
        Expr::Column { table: None, name } => {
            match output.iter().position(|o| {
                o.alias
                    .as_deref()
                    .map(|a| a.eq_ignore_ascii_case(name))
                    .unwrap_or(false)
            }) {
                Some(i) => Ok(Some(OrderTarget::Output(i))),
                None => {
                    validate_expr(&key.expr, layout)?;
                    Ok(None)
                }
            }
        }
        _ => Ok(None),
    }
}

#[allow(clippy::too_many_arguments)]
fn plan_plain_select(
    sel: &Select,
    schema: Arc<TableSchema>,
    qualifier: String,
    layout: ColumnLayout,
    mut access: AccessPath,
    props: AccessProps,
    referenced: HashSet<usize>,
    resolvable: bool,
) -> Result<Plan> {
    // Projection.
    let mut output = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for c in &schema.columns {
                    output.push(OutputCol {
                        name: c.name.clone(),
                        alias: None,
                        expr: Expr::Column {
                            table: Some(qualifier.clone()),
                            name: c.name.clone(),
                        },
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                validate_expr(expr, &layout)?;
                output.push(OutputCol {
                    name: alias.clone().unwrap_or_else(|| output_name(expr, i)),
                    alias: alias.clone(),
                    expr: expr.clone(),
                });
            }
        }
    }

    let mut order_by = Vec::new();
    for key in &sel.order_by {
        let target = match resolve_order_target(key, &output, &layout)? {
            Some(t) => t,
            None => {
                validate_expr(&key.expr, &layout)?;
                OrderTarget::Expr(key.expr.clone())
            }
        };
        order_by.push(OrderSpec {
            target,
            desc: key.desc,
        });
    }

    // An unconstrained scan that cannot produce the requested order may
    // still get it (and LIMIT early-exit) from an unconstrained *covering*
    // index scan — coverage is required so the switch never trades the
    // sort for a fetch-back per row.
    if matches!(access, AccessPath::FullScan) && !order_by.is_empty() && resolvable {
        for (i, ix) in schema.indexes.iter().enumerate() {
            let candidate = AccessPath::IndexScan {
                index: i,
                eq: Vec::new(),
                lo: None,
                hi: None,
            };
            if index_covers(&schema, ix, &referenced)
                && !scan_satisfies_order(&schema, &qualifier, &access, &props, &order_by, &output)
                && scan_satisfies_order(&schema, &qualifier, &candidate, &props, &order_by, &output)
            {
                access = candidate;
                break;
            }
        }
    }

    let covering = resolvable
        && match &access {
            AccessPath::IndexScan { index, .. } => {
                index_covers(&schema, &schema.indexes[*index], &referenced)
            }
            _ => false,
        };
    let sort_needed =
        !scan_satisfies_order(&schema, &qualifier, &access, &props, &order_by, &output);

    Ok(Plan::Select(SelectPlan {
        schema,
        qualifier,
        layout,
        access,
        filter: sel.where_clause.clone().map(Arc::new),
        aggregate: None,
        output: Arc::new(output),
        order_by: Arc::new(order_by),
        sort_needed,
        covering,
        distinct: sel.distinct,
        limit: sel.limit,
        offset: sel.offset,
    }))
}

#[allow(clippy::too_many_arguments)]
fn plan_aggregate_select(
    sel: &Select,
    schema: Arc<TableSchema>,
    qualifier: String,
    layout: ColumnLayout,
    mut access: AccessPath,
    props: AccessProps,
    referenced: HashSet<usize>,
    resolvable: bool,
) -> Result<Plan> {
    for g in &sel.group_by {
        validate_expr(g, &layout)?;
    }
    let group_by = sel.group_by.clone();
    let mut aggs: Vec<AggSpec> = Vec::new();

    // Projection, rewritten onto the post-aggregation layout.
    let mut output = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(Error::Schema(
                    "SELECT * is not allowed in an aggregate query".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                let rewritten = rewrite_agg_expr(expr, &group_by, &mut aggs, &layout)?;
                output.push(OutputCol {
                    name: alias.clone().unwrap_or_else(|| output_name(expr, i)),
                    alias: alias.clone(),
                    expr: rewritten,
                });
            }
        }
    }

    let mut order_by = Vec::new();
    for key in &sel.order_by {
        let target = match resolve_order_target(key, &output, &layout)? {
            Some(t) => t,
            // Not an ordinal or alias: rewrite onto the aggregation layout.
            None => OrderTarget::Expr(rewrite_agg_expr(&key.expr, &group_by, &mut aggs, &layout)?),
        };
        order_by.push(OrderSpec {
            target,
            desc: key.desc,
        });
    }

    // One-row bounded MIN/MAX: a single aggregate over the column the scan
    // varies first, with the whole WHERE clause pushed down exactly.
    let minmax_col = if group_by.is_empty() && aggs.len() == 1 {
        match (&aggs[0].func, &aggs[0].arg) {
            (AggFunc::Min | AggFunc::Max, Some(arg)) => plain_col(&schema, &qualifier, arg)
                .filter(|c| schema.columns[*c].ctype != ColumnType::Blob),
            _ => None,
        }
    } else {
        None
    };
    let mut strategy = None;
    if let Some(col) = minmax_col {
        match &access {
            AccessPath::IndexScan { index, eq, .. } if props.exact => {
                let ix = &schema.indexes[*index];
                if eq.len() < ix.columns.len() && ix.columns[eq.len()] == col {
                    strategy = Some(AggStrategy::MinMax);
                }
            }
            AccessPath::FullScan if sel.where_clause.is_none() => {
                // No constraints at all: any index leading on the column
                // gives the bounded read.
                if let Some(i) = schema.indexes.iter().position(|ix| ix.columns[0] == col) {
                    access = AccessPath::IndexScan {
                        index: i,
                        eq: Vec::new(),
                        lo: None,
                        hi: None,
                    };
                    strategy = Some(AggStrategy::MinMax);
                }
            }
            _ => {}
        }
        // MIN/MAX of the rowid itself: the edge of the primary tree.
        if strategy.is_none()
            && props.exact
            && Some(col) == schema.rowid_col
            && matches!(access, AccessPath::RowidRange { .. } | AccessPath::FullScan)
        {
            strategy = Some(AggStrategy::MinMax);
        }
    }

    // Grouped scans over an unconstrained table: prefer an unconstrained
    // covering index scan that makes groups contiguous (streaming state for
    // one group at a time instead of a hash of all of them).
    if strategy.is_none()
        && matches!(access, AccessPath::FullScan)
        && !group_by.is_empty()
        && resolvable
        && !scan_groups_contiguous(&schema, &qualifier, &access, &props, &group_by)
    {
        for (i, ix) in schema.indexes.iter().enumerate() {
            let candidate = AccessPath::IndexScan {
                index: i,
                eq: Vec::new(),
                lo: None,
                hi: None,
            };
            if index_covers(&schema, ix, &referenced)
                && scan_groups_contiguous(&schema, &qualifier, &candidate, &props, &group_by)
            {
                access = candidate;
                break;
            }
        }
    }

    let strategy = strategy.unwrap_or_else(|| {
        if group_by.is_empty()
            || scan_groups_contiguous(&schema, &qualifier, &access, &props, &group_by)
        {
            AggStrategy::Stream
        } else {
            AggStrategy::Hash
        }
    });

    let covering = resolvable
        && match &access {
            AccessPath::IndexScan { index, .. } => {
                index_covers(&schema, &schema.indexes[*index], &referenced)
            }
            _ => false,
        };
    // Aggregation reorders rows, so ORDER BY always sorts the (few) group
    // rows — except the one-row MIN/MAX read.
    let sort_needed = !sel.order_by.is_empty() && strategy != AggStrategy::MinMax;

    Ok(Plan::Select(SelectPlan {
        schema,
        qualifier,
        layout,
        access,
        filter: sel.where_clause.clone().map(Arc::new),
        aggregate: Some(Arc::new(AggregatePlan {
            group_by,
            aggs,
            strategy,
        })),
        output: Arc::new(output),
        order_by: Arc::new(order_by),
        sort_needed,
        covering,
        distinct: sel.distinct,
        limit: sel.limit,
        offset: sel.offset,
    }))
}

fn plan_insert(catalog: &Catalog, txn: &Txn, ins: &Insert) -> Result<Plan> {
    let schema = catalog.require_table(txn, &ins.table)?;
    let columns: Vec<usize> = if ins.columns.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        let mut cols = Vec::with_capacity(ins.columns.len());
        for name in &ins.columns {
            let pos = schema
                .col_index(name)
                .ok_or_else(|| Error::Schema(format!("no such column: {name}")))?;
            if cols.contains(&pos) {
                return Err(Error::Schema(format!("duplicate column {name} in INSERT")));
            }
            cols.push(pos);
        }
        cols
    };
    for row in &ins.rows {
        if row.len() != columns.len() {
            return Err(Error::Schema(format!(
                "INSERT has {} values for {} columns",
                row.len(),
                columns.len()
            )));
        }
        for e in row {
            if !is_const(e) {
                return Err(Error::Schema(
                    "INSERT values must not reference columns".into(),
                ));
            }
        }
    }
    Ok(Plan::Insert(InsertPlan {
        schema,
        columns,
        rows: ins.rows.clone(),
    }))
}

fn plan_dml_target(
    catalog: &Catalog,
    txn: &Txn,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<DmlTarget> {
    let schema = catalog.require_table(txn, table)?;
    let qualifier = schema.name.clone();
    let layout = table_layout(&schema, &qualifier);
    if let Some(w) = where_clause {
        validate_expr(w, &layout)?;
    }
    let (access, _props) = choose_access(&schema, &qualifier, where_clause);
    Ok(DmlTarget {
        access,
        layout,
        filter: where_clause.cloned().map(Arc::new),
        schema,
    })
}

fn plan_update(catalog: &Catalog, txn: &Txn, upd: &Update) -> Result<Plan> {
    let target = plan_dml_target(catalog, txn, &upd.table, upd.where_clause.as_ref())?;
    let layout = table_layout(&target.schema, &target.schema.name);
    let mut assignments = Vec::with_capacity(upd.assignments.len());
    for (name, expr) in &upd.assignments {
        let pos = target
            .schema
            .col_index(name)
            .ok_or_else(|| Error::Schema(format!("no such column: {name}")))?;
        if assignments.iter().any(|(p, _)| *p == pos) {
            return Err(Error::Schema(format!("column {name} assigned twice")));
        }
        validate_expr(expr, &layout)?;
        assignments.push((pos, expr.clone()));
    }
    Ok(Plan::Update(UpdatePlan {
        target,
        assignments,
    }))
}

fn plan_delete(catalog: &Catalog, txn: &Txn, del: &Delete) -> Result<Plan> {
    let target = plan_dml_target(catalog, txn, &del.table, del.where_clause.as_ref())?;
    Ok(Plan::Delete(DeletePlan { target }))
}
