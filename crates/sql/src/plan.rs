//! The query planner: binds a parsed [`Statement`] against the [`Catalog`]
//! and produces a typed physical plan.
//!
//! Plan shapes are deliberately few and scale-predictable (in the spirit of
//! PIQL): a point lookup by rowid, a bounded rowid range scan, a secondary-
//! index scan with an equality prefix plus at most one range column, and a
//! full table scan — each followed by a residual filter, projection,
//! ORDER BY / DISTINCT / LIMIT / OFFSET.  Joins, aggregates and GROUP BY are
//! rejected with [`Error::Unsupported`] until the executor grows them.
//!
//! ## Why predicate pushdown is exact
//!
//! The index-key encoding ([`crate::row`]) orders entries exactly as
//! [`Value::sort_cmp`] orders values — one numeric class shared by integers
//! and reals, then text, then blobs, with NULLs first.  A pushed-down bound
//! therefore never excludes a row the predicate would accept, whatever the
//! storage classes involved; the residual filter (the full WHERE clause is
//! always re-evaluated) only ever removes rows, so access-path choice is a
//! pure performance decision, never a correctness one.

use std::sync::Arc;

use yesquel_common::{Error, Result};
use yesquel_kv::Txn;

use crate::ast::{
    BinOp, CreateIndex, CreateTable, Delete, Expr, Insert, Select, SelectItem, Statement, Update,
};
use crate::catalog::{Catalog, TableSchema};
use crate::expr::ColumnLayout;

/// One endpoint of a pushed-down range predicate.  The expression is
/// constant (no column references) and is evaluated at execution time, so
/// plans with parameters (`WHERE id > ?`) stay reusable.
#[derive(Debug, Clone)]
pub struct RangeBound {
    /// Constant expression producing the bound value.
    pub expr: Expr,
    /// True for `>=` / `<=`, false for `>` / `<`.
    pub inclusive: bool,
}

/// How the executor reaches the rows of one table.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// `rowid = const`: one DBT point lookup.
    RowidPoint(Expr),
    /// Bounded scan of the primary tree by rowid.
    RowidRange {
        /// Lower bound, if any.
        lo: Option<RangeBound>,
        /// Upper bound, if any.
        hi: Option<RangeBound>,
    },
    /// Secondary-index scan: equality on a prefix of the indexed columns,
    /// optionally a range on the next one, then a rowid fetch-back per entry.
    IndexScan {
        /// Position of the index in [`TableSchema::indexes`].
        index: usize,
        /// Constant equality probes for `index.columns[..eq.len()]`.
        eq: Vec<Expr>,
        /// Range lower bound on column `index.columns[eq.len()]`.
        lo: Option<RangeBound>,
        /// Range upper bound on the same column.
        hi: Option<RangeBound>,
    },
    /// Scan every row of the primary tree.
    FullScan,
}

/// One projected output column.
#[derive(Debug, Clone)]
pub struct OutputCol {
    /// Result-set header.
    pub name: String,
    /// Alias explicitly given with `AS` (resolvable in ORDER BY).
    pub alias: Option<String>,
    /// Expression over the base table's columns.
    pub expr: Expr,
}

/// What one ORDER BY key sorts on.
#[derive(Debug, Clone)]
pub enum OrderTarget {
    /// An output column (by ordinal `ORDER BY 2` or by alias).
    Output(usize),
    /// An arbitrary expression over the base row.
    Expr(Expr),
}

/// A resolved ORDER BY key.
#[derive(Debug, Clone)]
pub struct OrderSpec {
    /// What to sort on.
    pub target: OrderTarget,
    /// Descending order.
    pub desc: bool,
}

/// Physical plan of a SELECT over one table.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// The table scanned.
    pub schema: Arc<TableSchema>,
    /// Qualifier rows resolve against (alias if given, else table name).
    pub qualifier: String,
    /// How rows are reached.
    pub access: AccessPath,
    /// Residual filter: the full WHERE clause, re-evaluated on every row.
    pub filter: Option<Expr>,
    /// Projection.
    pub output: Vec<OutputCol>,
    /// Sort keys.
    pub order_by: Vec<OrderSpec>,
    /// Drop duplicate output rows.
    pub distinct: bool,
    /// Row limit.
    pub limit: Option<u64>,
    /// Rows skipped before the limit.
    pub offset: Option<u64>,
}

/// Rows the executor must visit for an UPDATE or DELETE.
#[derive(Debug, Clone)]
pub struct DmlTarget {
    /// The table mutated.
    pub schema: Arc<TableSchema>,
    /// How the affected rows are found.
    pub access: AccessPath,
    /// Residual filter (full WHERE clause).
    pub filter: Option<Expr>,
}

/// Physical plan of an INSERT.
#[derive(Debug, Clone)]
pub struct InsertPlan {
    /// Target table.
    pub schema: Arc<TableSchema>,
    /// Column positions the value lists assign, in statement order.
    pub columns: Vec<usize>,
    /// Value expressions (constant: no column references).
    pub rows: Vec<Vec<Expr>>,
}

/// Physical plan of an UPDATE.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// Affected rows.
    pub target: DmlTarget,
    /// `(column position, new-value expression)` assignments.
    pub assignments: Vec<(usize, Expr)>,
}

/// Physical plan of a DELETE.
#[derive(Debug, Clone)]
pub struct DeletePlan {
    /// Affected rows.
    pub target: DmlTarget,
}

/// A planned statement, ready for the executor.
#[derive(Debug, Clone)]
pub enum Plan {
    /// SELECT without FROM: evaluate the items once.
    ConstSelect(Vec<OutputCol>),
    /// SELECT over a table.
    Select(SelectPlan),
    /// INSERT.
    Insert(InsertPlan),
    /// UPDATE.
    Update(UpdatePlan),
    /// DELETE.
    Delete(DeletePlan),
    /// CREATE TABLE (executed by the catalog).
    CreateTable(CreateTable),
    /// CREATE INDEX (executed by the catalog).
    CreateIndex(CreateIndex),
    /// DROP TABLE (executed by the catalog).
    DropTable {
        /// Table to drop.
        name: String,
        /// Do not error if missing.
        if_exists: bool,
    },
}

impl Plan {
    /// A one-line, EXPLAIN-style description of the access path (tests and
    /// diagnostics; the format is stable enough to assert on).
    pub fn describe(&self) -> String {
        fn access(schema: &TableSchema, a: &AccessPath) -> String {
            match a {
                AccessPath::RowidPoint(_) => format!("POINT {} (rowid=?)", schema.name),
                AccessPath::RowidRange { lo, hi } => format!(
                    "RANGE {} (rowid {}..{})",
                    schema.name,
                    if lo.is_some() { "lo" } else { "" },
                    if hi.is_some() { "hi" } else { "" }
                ),
                AccessPath::IndexScan { index, eq, lo, hi } => {
                    let ix = &schema.indexes[*index];
                    let mut parts = vec![format!("eq={}", eq.len())];
                    if lo.is_some() || hi.is_some() {
                        parts.push(format!(
                            "range {}..{}",
                            if lo.is_some() { "lo" } else { "" },
                            if hi.is_some() { "hi" } else { "" }
                        ));
                    }
                    format!(
                        "INDEX {} USING {} ({})",
                        schema.name,
                        ix.name,
                        parts.join(", ")
                    )
                }
                AccessPath::FullScan => format!("SCAN {}", schema.name),
            }
        }
        match self {
            Plan::ConstSelect(_) => "CONST".into(),
            Plan::Select(p) => access(&p.schema, &p.access),
            Plan::Insert(p) => format!("INSERT {}", p.schema.name),
            Plan::Update(p) => format!("UPDATE {}", access(&p.target.schema, &p.target.access)),
            Plan::Delete(p) => format!("DELETE {}", access(&p.target.schema, &p.target.access)),
            Plan::CreateTable(ct) => format!("CREATE TABLE {}", ct.name),
            Plan::CreateIndex(ci) => format!("CREATE INDEX {}", ci.name),
            Plan::DropTable { name, .. } => format!("DROP TABLE {name}"),
        }
    }
}

/// Plans one statement.  `BEGIN`/`COMMIT`/`ROLLBACK` are session control and
/// must be intercepted before planning.
pub fn plan_statement(catalog: &Catalog, txn: &Txn, stmt: &Statement) -> Result<Plan> {
    match stmt {
        Statement::CreateTable(ct) => Ok(Plan::CreateTable(ct.clone())),
        Statement::CreateIndex(ci) => Ok(Plan::CreateIndex(ci.clone())),
        Statement::DropTable { name, if_exists } => Ok(Plan::DropTable {
            name: name.clone(),
            if_exists: *if_exists,
        }),
        Statement::Select(sel) => plan_select(catalog, txn, sel),
        Statement::Insert(ins) => plan_insert(catalog, txn, ins),
        Statement::Update(upd) => plan_update(catalog, txn, upd),
        Statement::Delete(del) => plan_delete(catalog, txn, del),
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::InvalidArgument(
            "transaction control must be handled by the session".into(),
        )),
    }
}

/// The column layout of one table under a qualifier.
pub fn table_layout(schema: &TableSchema, qualifier: &str) -> ColumnLayout {
    ColumnLayout::new(
        schema
            .columns
            .iter()
            .map(|c| (Some(qualifier.to_string()), c.name.clone()))
            .collect(),
    )
}

/// True if `e` references no columns (parameters and scalar functions are
/// fine) — i.e. it can be evaluated once at execution start.
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Column { .. } => false,
        Expr::Binary { left, right, .. } => is_const(left) && is_const(right),
        Expr::Neg(x) | Expr::Not(x) => is_const(x),
        Expr::IsNull { expr, .. } => is_const(expr),
        Expr::InList { expr, list, .. } => is_const(expr) && list.iter().all(is_const),
        Expr::Between {
            expr, low, high, ..
        } => is_const(expr) && is_const(low) && is_const(high),
        Expr::Function { args, star, .. } => !star && args.iter().all(is_const),
    }
}

/// Validates every column reference in `e` against `layout` and rejects
/// aggregates, so errors surface at plan time rather than per-row.
fn validate_expr(e: &Expr, layout: &ColumnLayout) -> Result<()> {
    match e {
        Expr::Literal(_) | Expr::Param(_) => Ok(()),
        Expr::Column { table, name } => {
            layout.resolve(table.as_deref(), name)?;
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            validate_expr(left, layout)?;
            validate_expr(right, layout)
        }
        Expr::Neg(x) | Expr::Not(x) => validate_expr(x, layout),
        Expr::IsNull { expr, .. } => validate_expr(expr, layout),
        Expr::InList { expr, list, .. } => {
            validate_expr(expr, layout)?;
            list.iter().try_for_each(|x| validate_expr(x, layout))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            validate_expr(expr, layout)?;
            validate_expr(low, layout)?;
            validate_expr(high, layout)
        }
        Expr::Function { name, args, star } => {
            if *star || matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX") {
                return Err(Error::Unsupported(format!(
                    "aggregate {name}() is not yet supported"
                )));
            }
            args.iter().try_for_each(|x| validate_expr(x, layout))
        }
    }
}

/// Flattens a conjunction into its conjuncts.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// A conjunct normalized to `column <op> constant`.
struct ColConstraint {
    col: usize,
    op: BinOp,
    value: Expr,
}

/// Tries to view a conjunct as `column <op> const` (commuting if the column
/// is on the right).  BETWEEN becomes a `Ge` + `Le` pair.
fn extract_constraints(
    conjunct: &Expr,
    schema: &TableSchema,
    qualifier: &str,
    out: &mut Vec<ColConstraint>,
) {
    let resolve = |table: &Option<String>, name: &str| -> Option<usize> {
        if let Some(t) = table {
            if !t.eq_ignore_ascii_case(qualifier) {
                return None;
            }
        }
        schema.col_index(name)
    };
    match conjunct {
        Expr::Binary { op, left, right }
            if matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            if let (Expr::Column { table, name }, v) = (&**left, &**right) {
                if is_const(v) {
                    if let Some(col) = resolve(table, name) {
                        out.push(ColConstraint {
                            col,
                            op: *op,
                            value: v.clone(),
                        });
                    }
                }
            } else if let (v, Expr::Column { table, name }) = (&**left, &**right) {
                if is_const(v) {
                    if let Some(col) = resolve(table, name) {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        out.push(ColConstraint {
                            col,
                            op: flipped,
                            value: v.clone(),
                        });
                    }
                }
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            if let Expr::Column { table, name } = &**expr {
                if is_const(low) && is_const(high) {
                    if let Some(col) = resolve(table, name) {
                        out.push(ColConstraint {
                            col,
                            op: BinOp::Ge,
                            value: (**low).clone(),
                        });
                        out.push(ColConstraint {
                            col,
                            op: BinOp::Le,
                            value: (**high).clone(),
                        });
                    }
                }
            }
        }
        _ => {}
    }
}

/// Range bounds on one column assembled from its constraints.
fn range_for(
    constraints: &[ColConstraint],
    col: usize,
) -> (Option<RangeBound>, Option<RangeBound>) {
    let mut lo = None;
    let mut hi = None;
    for c in constraints.iter().filter(|c| c.col == col) {
        // Keep the first bound seen on each side; duplicates stay in the
        // residual filter.
        match c.op {
            BinOp::Gt | BinOp::Ge if lo.is_none() => {
                lo = Some(RangeBound {
                    expr: c.value.clone(),
                    inclusive: c.op == BinOp::Ge,
                });
            }
            BinOp::Lt | BinOp::Le if hi.is_none() => {
                hi = Some(RangeBound {
                    expr: c.value.clone(),
                    inclusive: c.op == BinOp::Le,
                });
            }
            _ => {}
        }
    }
    (lo, hi)
}

/// Chooses the access path for one table given the WHERE clause.
fn choose_access(schema: &TableSchema, qualifier: &str, where_clause: Option<&Expr>) -> AccessPath {
    let mut constraints = Vec::new();
    if let Some(w) = where_clause {
        let mut conjuncts = Vec::new();
        split_conjuncts(w, &mut conjuncts);
        for c in &conjuncts {
            extract_constraints(c, schema, qualifier, &mut constraints);
        }
    }
    if constraints.is_empty() {
        return AccessPath::FullScan;
    }

    // 1. Equality on the rowid column: a point lookup beats everything.
    if let Some(rc) = schema.rowid_col {
        if let Some(c) = constraints
            .iter()
            .find(|c| c.col == rc && c.op == BinOp::Eq)
        {
            return AccessPath::RowidPoint(c.value.clone());
        }
    }

    // 2. Best secondary index: longest equality prefix, then a range on the
    //    next column; unique indexes win ties.
    struct IndexCandidate {
        index: usize,
        eq: Vec<Expr>,
        lo: Option<RangeBound>,
        hi: Option<RangeBound>,
        score: u64,
    }
    let mut best: Option<IndexCandidate> = None;
    for (i, ix) in schema.indexes.iter().enumerate() {
        let mut eq = Vec::new();
        for &col in &ix.columns {
            match constraints
                .iter()
                .find(|c| c.col == col && c.op == BinOp::Eq)
            {
                Some(c) => eq.push(c.value.clone()),
                None => break,
            }
        }
        let (lo, hi) = if eq.len() < ix.columns.len() {
            range_for(&constraints, ix.columns[eq.len()])
        } else {
            (None, None)
        };
        let score = (eq.len() as u64) * 4
            + u64::from(lo.is_some())
            + u64::from(hi.is_some())
            + u64::from(ix.unique && eq.len() == ix.columns.len());
        if score > 0 && best.as_ref().map(|b| b.score < score).unwrap_or(true) {
            best = Some(IndexCandidate {
                index: i,
                eq,
                lo,
                hi,
                score,
            });
        }
    }
    if let Some(IndexCandidate {
        index, eq, lo, hi, ..
    }) = best
    {
        return AccessPath::IndexScan { index, eq, lo, hi };
    }

    // 3. Range on the rowid column.
    if let Some(rc) = schema.rowid_col {
        let (lo, hi) = range_for(&constraints, rc);
        if lo.is_some() || hi.is_some() {
            return AccessPath::RowidRange { lo, hi };
        }
    }

    AccessPath::FullScan
}

/// Display name of a projected expression without an alias.
fn output_name(e: &Expr, ordinal: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => format!("{}()", name.to_lowercase()),
        _ => format!("column{}", ordinal + 1),
    }
}

fn plan_select(catalog: &Catalog, txn: &Txn, sel: &Select) -> Result<Plan> {
    if !sel.group_by.is_empty() {
        return Err(Error::Unsupported("GROUP BY is not yet supported".into()));
    }

    let Some(from) = &sel.from else {
        // Expression-only SELECT: items must not reference columns.
        let layout = ColumnLayout::empty();
        let mut output = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Schema("SELECT * requires a FROM clause".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    validate_expr(expr, &layout)?;
                    output.push(OutputCol {
                        name: alias.clone().unwrap_or_else(|| output_name(expr, i)),
                        alias: alias.clone(),
                        expr: expr.clone(),
                    });
                }
            }
        }
        return Ok(Plan::ConstSelect(output));
    };

    if !from.joins.is_empty() {
        return Err(Error::Unsupported(
            "joins are not yet supported by the executor".into(),
        ));
    }
    let schema = catalog.require_table(txn, &from.base.name)?;
    let qualifier = from
        .base
        .alias
        .clone()
        .unwrap_or_else(|| schema.name.clone());
    let layout = table_layout(&schema, &qualifier);

    // Projection.
    let mut output = Vec::new();
    for (i, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for c in &schema.columns {
                    output.push(OutputCol {
                        name: c.name.clone(),
                        alias: None,
                        expr: Expr::Column {
                            table: Some(qualifier.clone()),
                            name: c.name.clone(),
                        },
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                validate_expr(expr, &layout)?;
                output.push(OutputCol {
                    name: alias.clone().unwrap_or_else(|| output_name(expr, i)),
                    alias: alias.clone(),
                    expr: expr.clone(),
                });
            }
        }
    }

    if let Some(w) = &sel.where_clause {
        validate_expr(w, &layout)?;
    }

    // ORDER BY: ordinals and output aliases resolve to output columns,
    // anything else is an expression over the base row.
    let mut order_by = Vec::new();
    for key in &sel.order_by {
        let target = match &key.expr {
            Expr::Literal(crate::types::Value::Int(n)) => {
                let n = *n;
                if n < 1 || n as usize > output.len() {
                    return Err(Error::Schema(format!(
                        "ORDER BY position {n} is out of range (1..{})",
                        output.len()
                    )));
                }
                OrderTarget::Output(n as usize - 1)
            }
            Expr::Column { table: None, name } => {
                match output.iter().position(|o| {
                    o.alias
                        .as_deref()
                        .map(|a| a.eq_ignore_ascii_case(name))
                        .unwrap_or(false)
                }) {
                    Some(i) => OrderTarget::Output(i),
                    None => {
                        validate_expr(&key.expr, &layout)?;
                        OrderTarget::Expr(key.expr.clone())
                    }
                }
            }
            e => {
                validate_expr(e, &layout)?;
                OrderTarget::Expr(e.clone())
            }
        };
        order_by.push(OrderSpec {
            target,
            desc: key.desc,
        });
    }

    let access = choose_access(&schema, &qualifier, sel.where_clause.as_ref());
    Ok(Plan::Select(SelectPlan {
        schema,
        qualifier,
        access,
        filter: sel.where_clause.clone(),
        output,
        order_by,
        distinct: sel.distinct,
        limit: sel.limit,
        offset: sel.offset,
    }))
}

fn plan_insert(catalog: &Catalog, txn: &Txn, ins: &Insert) -> Result<Plan> {
    let schema = catalog.require_table(txn, &ins.table)?;
    let columns: Vec<usize> = if ins.columns.is_empty() {
        (0..schema.columns.len()).collect()
    } else {
        let mut cols = Vec::with_capacity(ins.columns.len());
        for name in &ins.columns {
            let pos = schema
                .col_index(name)
                .ok_or_else(|| Error::Schema(format!("no such column: {name}")))?;
            if cols.contains(&pos) {
                return Err(Error::Schema(format!("duplicate column {name} in INSERT")));
            }
            cols.push(pos);
        }
        cols
    };
    for row in &ins.rows {
        if row.len() != columns.len() {
            return Err(Error::Schema(format!(
                "INSERT has {} values for {} columns",
                row.len(),
                columns.len()
            )));
        }
        for e in row {
            if !is_const(e) {
                return Err(Error::Schema(
                    "INSERT values must not reference columns".into(),
                ));
            }
        }
    }
    Ok(Plan::Insert(InsertPlan {
        schema,
        columns,
        rows: ins.rows.clone(),
    }))
}

fn plan_dml_target(
    catalog: &Catalog,
    txn: &Txn,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<DmlTarget> {
    let schema = catalog.require_table(txn, table)?;
    let qualifier = schema.name.clone();
    let layout = table_layout(&schema, &qualifier);
    if let Some(w) = where_clause {
        validate_expr(w, &layout)?;
    }
    let access = choose_access(&schema, &qualifier, where_clause);
    Ok(DmlTarget {
        access,
        filter: where_clause.cloned(),
        schema,
    })
}

fn plan_update(catalog: &Catalog, txn: &Txn, upd: &Update) -> Result<Plan> {
    let target = plan_dml_target(catalog, txn, &upd.table, upd.where_clause.as_ref())?;
    let layout = table_layout(&target.schema, &target.schema.name);
    let mut assignments = Vec::with_capacity(upd.assignments.len());
    for (name, expr) in &upd.assignments {
        let pos = target
            .schema
            .col_index(name)
            .ok_or_else(|| Error::Schema(format!("no such column: {name}")))?;
        if assignments.iter().any(|(p, _)| *p == pos) {
            return Err(Error::Schema(format!("column {name} assigned twice")));
        }
        validate_expr(expr, &layout)?;
        assignments.push((pos, expr.clone()));
    }
    Ok(Plan::Update(UpdatePlan {
        target,
        assignments,
    }))
}

fn plan_delete(catalog: &Catalog, txn: &Txn, del: &Delete) -> Result<Plan> {
    let target = plan_dml_target(catalog, txn, &del.table, del.where_clause.as_ref())?;
    Ok(Plan::Delete(DeletePlan { target }))
}
