//! Record and index-key encodings.
//!
//! * **Rows** are stored in a table's primary tree under the key
//!   `order_encode_i64(rowid)`, with all column values serialized in schema
//!   order.
//! * **Index entries** are stored in the index's tree under an
//!   order-preserving composite key of the indexed column values; for
//!   non-unique indexes the rowid is appended to make the key unique, for
//!   unique indexes the rowid is the entry's value instead.

use yesquel_common::encoding::{
    order_decode_bytes, order_decode_f64, order_encode_bytes, order_encode_f64, order_encode_i64,
    Reader, Writer,
};
use yesquel_common::{Error, Result};

use crate::types::{ColumnType, Value};

// Value tags in the row encoding.
const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_REAL: u8 = 2;
const T_TEXT: u8 = 3;
const T_BLOB: u8 = 4;

/// Serializes a row (all column values in schema order).
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut w = Writer::with_capacity(16 + values.len() * 8);
    w.uvarint(values.len() as u64);
    for v in values {
        match v {
            Value::Null => {
                w.u8(T_NULL);
            }
            Value::Int(i) => {
                w.u8(T_INT);
                w.i64(*i);
            }
            Value::Real(r) => {
                w.u8(T_REAL);
                w.f64(*r);
            }
            Value::Text(s) => {
                w.u8(T_TEXT);
                w.bytes(s.as_bytes());
            }
            Value::Blob(b) => {
                w.u8(T_BLOB);
                w.bytes(b);
            }
        }
    }
    w.finish()
}

/// Deserializes a row produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Result<Vec<Value>> {
    let mut r = Reader::new(buf);
    let n = r.uvarint()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = match r.u8()? {
            T_NULL => Value::Null,
            T_INT => Value::Int(r.i64()?),
            T_REAL => Value::Real(r.f64()?),
            T_TEXT => Value::Text(
                String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| Error::Corruption("invalid UTF-8 in text value".into()))?,
            ),
            T_BLOB => Value::Blob(r.bytes()?.to_vec()),
            t => return Err(Error::Corruption(format!("bad value tag {t}"))),
        };
        out.push(v);
    }
    Ok(out)
}

/// Encodes a rowid as the primary-tree key.
pub fn encode_rowid_key(rowid: i64) -> Vec<u8> {
    order_encode_i64(rowid).to_vec()
}

/// Decodes a primary-tree key back into a rowid.
pub fn decode_rowid_key(key: &[u8]) -> Result<i64> {
    yesquel_common::encoding::order_decode_i64(key)
}

// Class tags for the order-preserving index-key encoding.  They follow SQL's
// cross-class ordering: NULL < numbers < text < blob.  Integers and reals
// share ONE numeric class encoded as an order-preserving f64, because
// [`Value::sort_cmp`] compares all numerics as f64 — the encoded key order is
// therefore exactly the SQL comparison order, which is what lets the planner
// push equality and range predicates into index scans without re-checking
// class boundaries (an `Int(2)` probe finds a stored `Real(2.0)` and
// vice versa).
const K_ROWID: u8 = 0x08;
const K_NULL: u8 = 0x10;
const K_NUM: u8 = 0x20;
const K_TEXT: u8 = 0x30;
const K_BLOB: u8 = 0x40;

/// Appends one value to an order-preserving composite key.
pub fn encode_index_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(K_NULL),
        Value::Int(i) => {
            out.push(K_NUM);
            out.extend_from_slice(&order_encode_f64(*i as f64));
        }
        Value::Real(r) => {
            out.push(K_NUM);
            if r.is_nan() {
                // NaN sorts below every number (cf. Value::sort_cmp); no
                // real f64 order-encodes to all zeros, so this key is
                // strictly below order_encode_f64 of anything, -inf
                // included.  (Probe-side only: storage coerces NaN to NULL.)
                out.extend_from_slice(&[0u8; 8]);
            } else {
                // Normalize -0.0: sort_cmp deems it equal to 0.0, so both
                // must encode to the same key.
                let r = if *r == 0.0 { 0.0 } else { *r };
                out.extend_from_slice(&order_encode_f64(r));
            }
        }
        Value::Text(s) => {
            out.push(K_TEXT);
            order_encode_bytes(out, s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(K_BLOB);
            order_encode_bytes(out, b);
        }
    }
}

/// Builds the key of an index entry: the indexed values in order, optionally
/// followed by the rowid (for non-unique indexes).  The rowid suffix keeps
/// its own tag and an exact i64 encoding (rowids must round-trip without the
/// f64 precision loss the numeric value class accepts).
pub fn encode_index_key(values: &[Value], rowid: Option<i64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10 + 9);
    for v in values {
        encode_index_value(&mut out, v);
    }
    if let Some(r) = rowid {
        out.push(K_ROWID);
        out.extend_from_slice(&order_encode_i64(r));
    }
    out
}

/// Extracts the rowid suffix from a non-unique index entry's key.
pub fn decode_index_rowid(key: &[u8]) -> Result<i64> {
    if key.len() < 9 || key[key.len() - 9] != K_ROWID {
        return Err(Error::Corruption(
            "index entry key has no rowid suffix".into(),
        ));
    }
    yesquel_common::encoding::order_decode_i64(&key[key.len() - 8..])
}

/// Decodes an index entry back into its column values and rowid, given the
/// *declared* types of the indexed columns — the covering-index read path,
/// which reconstructs rows from index entries without touching the primary
/// tree.
///
/// The key encoding collapses integers and reals into one order-preserving
/// f64 class, so a `K_NUM` payload alone cannot name its storage class; the
/// declared type disambiguates using the storage coercion invariants
/// (`Value::coerce`): an INTEGER column never stores an integral `Real`
/// (coerced to `Int` on write), a REAL column never stores an `Int`, and a
/// TEXT column never stores a numeric at all.  The planner refuses coverage
/// for BLOB-declared columns, where no such invariant holds.  Like the key
/// encoding itself, integers beyond ±2^53 round through f64.
///
/// The rowid comes from the key's suffix when present (non-unique entries,
/// and unique entries containing NULL) and from the entry's value otherwise.
pub fn decode_index_entry(
    key: &[u8],
    value: &[u8],
    types: &[ColumnType],
) -> Result<(Vec<Value>, i64)> {
    let mut vals = Vec::with_capacity(types.len());
    let mut at = 0usize;
    for ty in types {
        let tag = *key
            .get(at)
            .ok_or_else(|| Error::Corruption("truncated index entry key".into()))?;
        at += 1;
        let v = match tag {
            K_NULL => Value::Null,
            K_NUM => {
                let f = order_decode_f64(&key[at..])?;
                at += 8;
                if *ty == ColumnType::Integer
                    && f.fract() == 0.0
                    && f >= i64::MIN as f64
                    && f <= i64::MAX as f64
                {
                    Value::Int(f as i64)
                } else {
                    Value::Real(f)
                }
            }
            K_TEXT => {
                let (bytes, used) = order_decode_bytes(&key[at..])?;
                at += used;
                Value::Text(String::from_utf8(bytes).map_err(|_| {
                    Error::Corruption("invalid UTF-8 in index entry text value".into())
                })?)
            }
            K_BLOB => {
                let (bytes, used) = order_decode_bytes(&key[at..])?;
                at += used;
                Value::Blob(bytes)
            }
            t => return Err(Error::Corruption(format!("bad index value tag {t}"))),
        };
        vals.push(v);
    }
    let rowid = if at < key.len() {
        // Rowid suffix on the key.
        if key.len() != at + 9 || key[at] != K_ROWID {
            return Err(Error::Corruption("bad index entry rowid suffix".into()));
        }
        yesquel_common::encoding::order_decode_i64(&key[at + 1..])?
    } else {
        // Unique entry: the value is a one-column record holding the rowid.
        match decode_row(value)?.first() {
            Some(Value::Int(r)) => *r,
            _ => return Err(Error::Corruption("bad unique index entry value".into())),
        }
    };
    Ok((vals, rowid))
}

/// Builds the smallest possible key with the given prefix values (used as a
/// range-scan lower bound).
pub fn index_prefix(values: &[Value]) -> Vec<u8> {
    encode_index_key(values, None)
}

/// The scan lower bound that skips every entry whose next value after
/// `prefix` is NULL (their class tag sorts below all others): `MIN(col)`
/// ignores NULLs, so its one-row read starts here.
pub fn index_nonnull_floor(prefix: &[u8]) -> Vec<u8> {
    let mut k = prefix.to_vec();
    k.push(K_NULL + 1);
    k
}

/// The smallest byte string strictly greater than every key with a given
/// prefix — the upper bound of a prefix scan.  This is the tree layer's
/// successor computation, re-exported so index-key code has one name for it.
pub use yesquel_ydbt::prefix_successor as prefix_upper_bound;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Real(2.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 1, 255]),
        ];
        let buf = encode_row(&row);
        assert_eq!(decode_row(&buf).unwrap(), row);
        assert!(decode_row(&buf[..buf.len() - 1]).is_err());
        assert!(decode_row(&[9, 9]).is_err());
    }

    #[test]
    fn rowid_key_order_and_roundtrip() {
        let keys: Vec<Vec<u8>> = [-5i64, -1, 0, 3, 1000]
            .iter()
            .map(|i| encode_rowid_key(*i))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(decode_rowid_key(&encode_rowid_key(-77)).unwrap(), -77);
    }

    #[test]
    fn index_key_ordering_within_class() {
        let k = |v: Value| encode_index_key(&[v], None);
        assert!(k(Value::Int(1)) < k(Value::Int(2)));
        assert!(k(Value::Int(-10)) < k(Value::Int(0)));
        assert!(k(Value::Text("abc".into())) < k(Value::Text("abd".into())));
        assert!(k(Value::Text("ab".into())) < k(Value::Text("abc".into())));
        assert!(k(Value::Real(1.5)) < k(Value::Real(2.0)));
        // Cross-class ordering: NULL < numbers < text < blob.
        assert!(k(Value::Null) < k(Value::Int(i64::MIN)));
        assert!(k(Value::Int(5)) < k(Value::Text("0".into())));
        assert!(k(Value::Text("zzz".into())) < k(Value::Blob(vec![0])));
    }

    #[test]
    fn index_key_order_matches_sql_numeric_order() {
        // Ints and reals share one class and interleave numerically, exactly
        // like Value::sort_cmp — the invariant index range scans rely on.
        let k = |v: Value| encode_index_key(&[v], None);
        assert!(k(Value::Int(2)) < k(Value::Real(2.5)));
        assert!(k(Value::Real(2.5)) < k(Value::Int(3)));
        assert!(k(Value::Real(-0.5)) < k(Value::Int(0)));
        // SQL-equal numerics encode identically.
        assert_eq!(k(Value::Int(2)), k(Value::Real(2.0)));
    }

    #[test]
    fn index_rowid_suffix_roundtrip() {
        let key = encode_index_key(&[Value::Text("a".into())], Some(12345));
        assert_eq!(decode_index_rowid(&key).unwrap(), 12345);
        let neg = encode_index_key(&[Value::Int(7)], Some(-3));
        assert_eq!(decode_index_rowid(&neg).unwrap(), -3);
        // A key without a suffix is rejected.
        assert!(decode_index_rowid(&encode_index_key(&[Value::Int(7)], None)).is_err());
    }

    #[test]
    fn composite_keys_and_rowid_suffix() {
        let a = encode_index_key(&[Value::Text("alice".into()), Value::Int(1)], Some(10));
        let b = encode_index_key(&[Value::Text("alice".into()), Value::Int(1)], Some(11));
        let c = encode_index_key(&[Value::Text("alice".into()), Value::Int(2)], Some(5));
        let d = encode_index_key(&[Value::Text("bob".into()), Value::Int(0)], Some(1));
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn prefix_scan_bounds_cover_exactly_the_prefix() {
        let prefix = index_prefix(&[Value::Text("alice".into())]);
        let upper = prefix_upper_bound(&prefix).unwrap();
        let inside = encode_index_key(&[Value::Text("alice".into())], Some(42));
        let after = encode_index_key(&[Value::Text("alicf".into())], Some(0));
        let before = encode_index_key(&[Value::Text("alicd".into())], Some(999));
        assert!(prefix <= inside && inside < upper);
        assert!(after >= upper);
        assert!(before < prefix);
    }

    #[test]
    fn index_entry_roundtrips_through_typed_decode() {
        use crate::types::ColumnType as T;
        // Non-unique entry: rowid in the key suffix.
        let vals = vec![
            Value::Text("alice".into()),
            Value::Int(42),
            Value::Null,
            Value::Real(2.5),
            Value::Blob(vec![0, 1, 0xff]),
        ];
        let types = [T::Text, T::Integer, T::Text, T::Real, T::Blob];
        let key = encode_index_key(&vals, Some(77));
        let (got, rid) = decode_index_entry(&key, &[], &types).unwrap();
        assert_eq!(got, vals);
        assert_eq!(rid, 77);

        // Unique entry: rowid in the value record.
        let key = encode_index_key(&[Value::Int(5)], None);
        let val = encode_row(&[Value::Int(9)]);
        let (got, rid) = decode_index_entry(&key, &val, &[T::Integer]).unwrap();
        assert_eq!(got, vec![Value::Int(5)]);
        assert_eq!(rid, 9);

        // An integral real under an INTEGER column decodes as Int (the
        // coercion invariant: such a value could only have been stored as
        // Int), while a fractional one stays Real.
        let key = encode_index_key(&[Value::Real(3.0), Value::Real(3.5)], Some(1));
        let (got, _) = decode_index_entry(&key, &[], &[T::Integer, T::Integer]).unwrap();
        assert_eq!(got, vec![Value::Int(3), Value::Real(3.5)]);

        // Truncated keys are corruption, not a panic.
        assert!(decode_index_entry(&key[..3], &[], &[T::Integer, T::Integer]).is_err());
        assert!(decode_index_entry(&key, &[], &[T::Integer]).is_err());
    }

    #[test]
    fn nan_and_negative_zero_agree_with_sort_cmp() {
        let k = |v: Value| encode_index_key(&[v], None);
        // -0.0 and 0.0 compare Equal, so they must encode identically.
        assert_eq!(k(Value::Real(-0.0)), k(Value::Real(0.0)));
        assert_eq!(k(Value::Real(-0.0)), k(Value::Int(0)));
        // NaN sorts below every number, -inf included, and above NULL.
        assert!(k(Value::Real(f64::NAN)) < k(Value::Real(f64::NEG_INFINITY)));
        assert!(k(Value::Null) < k(Value::Real(f64::NAN)));
        assert_eq!(k(Value::Real(f64::NAN)), k(Value::Real(-f64::NAN)));
    }
}
