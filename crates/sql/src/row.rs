//! Record and index-key encodings.
//!
//! * **Rows** are stored in a table's primary tree under the key
//!   `order_encode_i64(rowid)`, with all column values serialized in schema
//!   order.
//! * **Index entries** are stored in the index's tree under an
//!   order-preserving composite key of the indexed column values; for
//!   non-unique indexes the rowid is appended to make the key unique, for
//!   unique indexes the rowid is the entry's value instead.

use yesquel_common::encoding::{
    order_encode_bytes, order_encode_f64, order_encode_i64, Reader, Writer,
};
use yesquel_common::{Error, Result};

use crate::types::Value;

// Value tags in the row encoding.
const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_REAL: u8 = 2;
const T_TEXT: u8 = 3;
const T_BLOB: u8 = 4;

/// Serializes a row (all column values in schema order).
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut w = Writer::with_capacity(16 + values.len() * 8);
    w.uvarint(values.len() as u64);
    for v in values {
        match v {
            Value::Null => {
                w.u8(T_NULL);
            }
            Value::Int(i) => {
                w.u8(T_INT);
                w.i64(*i);
            }
            Value::Real(r) => {
                w.u8(T_REAL);
                w.f64(*r);
            }
            Value::Text(s) => {
                w.u8(T_TEXT);
                w.bytes(s.as_bytes());
            }
            Value::Blob(b) => {
                w.u8(T_BLOB);
                w.bytes(b);
            }
        }
    }
    w.finish()
}

/// Deserializes a row produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Result<Vec<Value>> {
    let mut r = Reader::new(buf);
    let n = r.uvarint()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = match r.u8()? {
            T_NULL => Value::Null,
            T_INT => Value::Int(r.i64()?),
            T_REAL => Value::Real(r.f64()?),
            T_TEXT => Value::Text(
                String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| Error::Corruption("invalid UTF-8 in text value".into()))?,
            ),
            T_BLOB => Value::Blob(r.bytes()?.to_vec()),
            t => return Err(Error::Corruption(format!("bad value tag {t}"))),
        };
        out.push(v);
    }
    Ok(out)
}

/// Encodes a rowid as the primary-tree key.
pub fn encode_rowid_key(rowid: i64) -> Vec<u8> {
    order_encode_i64(rowid).to_vec()
}

/// Decodes a primary-tree key back into a rowid.
pub fn decode_rowid_key(key: &[u8]) -> Result<i64> {
    yesquel_common::encoding::order_decode_i64(key)
}

// Class tags for the order-preserving index-key encoding.  They follow SQL's
// cross-class ordering: NULL < numbers < text < blob (integers and reals are
// kept in separate classes; values are coerced to the column's declared type
// before indexing, so one column's entries share a class).
const K_NULL: u8 = 0x10;
const K_INT: u8 = 0x20;
const K_REAL: u8 = 0x28;
const K_TEXT: u8 = 0x30;
const K_BLOB: u8 = 0x40;

/// Appends one value to an order-preserving composite key.
pub fn encode_index_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(K_NULL),
        Value::Int(i) => {
            out.push(K_INT);
            out.extend_from_slice(&order_encode_i64(*i));
        }
        Value::Real(r) => {
            out.push(K_REAL);
            out.extend_from_slice(&order_encode_f64(*r));
        }
        Value::Text(s) => {
            out.push(K_TEXT);
            order_encode_bytes(out, s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(K_BLOB);
            order_encode_bytes(out, b);
        }
    }
}

/// Builds the key of an index entry: the indexed values in order, optionally
/// followed by the rowid (for non-unique indexes).
pub fn encode_index_key(values: &[Value], rowid: Option<i64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10 + 9);
    for v in values {
        encode_index_value(&mut out, v);
    }
    if let Some(r) = rowid {
        out.push(K_INT);
        out.extend_from_slice(&order_encode_i64(r));
    }
    out
}

/// Builds the smallest possible key with the given prefix values (used as a
/// range-scan lower bound).
pub fn index_prefix(values: &[Value]) -> Vec<u8> {
    encode_index_key(values, None)
}

/// Returns the smallest byte string strictly greater than every key that
/// starts with `prefix` (used as a range-scan upper bound).  `None` means
/// "unbounded" (the prefix was all `0xff`, which cannot happen for our
/// encodings but is handled anyway).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_roundtrip() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Real(2.5),
            Value::Text("héllo".into()),
            Value::Blob(vec![0, 1, 255]),
        ];
        let buf = encode_row(&row);
        assert_eq!(decode_row(&buf).unwrap(), row);
        assert!(decode_row(&buf[..buf.len() - 1]).is_err());
        assert!(decode_row(&[9, 9]).is_err());
    }

    #[test]
    fn rowid_key_order_and_roundtrip() {
        let keys: Vec<Vec<u8>> = [-5i64, -1, 0, 3, 1000]
            .iter()
            .map(|i| encode_rowid_key(*i))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(decode_rowid_key(&encode_rowid_key(-77)).unwrap(), -77);
    }

    #[test]
    fn index_key_ordering_within_class() {
        let k = |v: Value| encode_index_key(&[v], None);
        assert!(k(Value::Int(1)) < k(Value::Int(2)));
        assert!(k(Value::Int(-10)) < k(Value::Int(0)));
        assert!(k(Value::Text("abc".into())) < k(Value::Text("abd".into())));
        assert!(k(Value::Text("ab".into())) < k(Value::Text("abc".into())));
        assert!(k(Value::Real(1.5)) < k(Value::Real(2.0)));
        // Cross-class ordering: NULL < int < real-class < text < blob.
        assert!(k(Value::Null) < k(Value::Int(i64::MIN)));
        assert!(k(Value::Int(5)) < k(Value::Text("0".into())));
        assert!(k(Value::Text("zzz".into())) < k(Value::Blob(vec![0])));
    }

    #[test]
    fn composite_keys_and_rowid_suffix() {
        let a = encode_index_key(&[Value::Text("alice".into()), Value::Int(1)], Some(10));
        let b = encode_index_key(&[Value::Text("alice".into()), Value::Int(1)], Some(11));
        let c = encode_index_key(&[Value::Text("alice".into()), Value::Int(2)], Some(5));
        let d = encode_index_key(&[Value::Text("bob".into()), Value::Int(0)], Some(1));
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn prefix_scan_bounds_cover_exactly_the_prefix() {
        let prefix = index_prefix(&[Value::Text("alice".into())]);
        let upper = prefix_upper_bound(&prefix).unwrap();
        let inside = encode_index_key(&[Value::Text("alice".into())], Some(42));
        let after = encode_index_key(&[Value::Text("alicf".into())], Some(0));
        let before = encode_index_key(&[Value::Text("alicd".into())], Some(999));
        assert!(prefix <= inside && inside < upper);
        assert!(after >= upper);
        assert!(before < prefix);
    }

    #[test]
    fn prefix_upper_bound_edge_cases() {
        assert_eq!(prefix_upper_bound(&[1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_upper_bound(&[1, 0xff]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xff, 0xff]), None);
    }
}
