//! Recursive-descent parser for the supported SQL subset.

use yesquel_common::{Error, Result};

use crate::ast::*;
use crate::params::{ParamBuilder, ParamInfo};
use crate::token::{tokenize, Symbol, Token};
use crate::types::{ColumnType, Value};

/// Parses one SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    parse_with_params(sql).map(|(stmt, _)| stmt)
}

/// Parses one SQL statement together with its parameter table: the slot
/// each `?` / `?NNN` / `:name` placeholder resolved to (see
/// [`crate::params`]).  This is the entry point prepared statements use;
/// [`parse`] is the convenience that discards the table.
pub fn parse_with_params(sql: &str) -> Result<(Statement, ParamInfo)> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: ParamBuilder::default(),
    };
    let stmt = p.parse_statement()?;
    p.eat_symbol(Symbol::Semicolon);
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "unexpected trailing tokens near {:?}",
            p.peek()
        )));
    }
    Ok((stmt, p.params.finish()))
}

/// Parses a semicolon-separated script into its statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    sql.split(';')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: ParamBuilder,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        let first = self
            .peek()
            .cloned()
            .ok_or_else(|| Error::Parse("empty statement".into()))?;
        match &first {
            t if t.is_kw("explain") => {
                self.bump();
                let analyze = self.eat_kw("analyze");
                let inner = self.parse_statement()?;
                if analyze {
                    Ok(Statement::ExplainAnalyze(Box::new(inner)))
                } else {
                    Ok(Statement::Explain(Box::new(inner)))
                }
            }
            t if t.is_kw("create") => self.parse_create(),
            t if t.is_kw("drop") => self.parse_drop(),
            t if t.is_kw("insert") => self.parse_insert(),
            t if t.is_kw("select") => Ok(Statement::Select(self.parse_select()?)),
            t if t.is_kw("update") => self.parse_update(),
            t if t.is_kw("delete") => self.parse_delete(),
            t if t.is_kw("begin") => {
                self.bump();
                self.eat_kw("transaction");
                Ok(Statement::Begin)
            }
            t if t.is_kw("commit") => {
                self.bump();
                Ok(Statement::Commit)
            }
            t if t.is_kw("rollback") => {
                self.bump();
                Ok(Statement::Rollback)
            }
            other => Err(Error::Parse(format!(
                "unsupported statement starting with {other:?}"
            ))),
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let unique = self.eat_kw("unique");
        if self.eat_kw("table") {
            if unique {
                return Err(Error::Parse("UNIQUE TABLE is not valid".into()));
            }
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col_name = self.ident()?;
                // Type name: one or more identifiers (e.g. VARCHAR(30)).
                let mut type_name = String::new();
                while let Some(Token::Ident(t)) = self.peek() {
                    if is_column_constraint_kw(t) {
                        break;
                    }
                    type_name.push_str(t);
                    type_name.push(' ');
                    self.bump();
                    if self.eat_symbol(Symbol::LParen) {
                        // Swallow the length argument(s).
                        while !self.eat_symbol(Symbol::RParen) {
                            self.bump();
                        }
                    }
                }
                let mut def = ColumnDef {
                    name: col_name,
                    ctype: if type_name.is_empty() {
                        ColumnType::Text
                    } else {
                        ColumnType::from_name(type_name.trim())
                    },
                    primary_key: false,
                    not_null: false,
                    unique: false,
                };
                loop {
                    if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                        def.primary_key = true;
                        self.eat_kw("autoincrement");
                    } else if self.eat_kw("not") {
                        self.expect_kw("null")?;
                        def.not_null = true;
                    } else if self.eat_kw("unique") {
                        def.unique = true;
                    } else {
                        break;
                    }
                }
                columns.push(def);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            Ok(Statement::CreateTable(CreateTable {
                name,
                columns,
                if_not_exists,
            }))
        } else if self.eat_kw("index") {
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                columns,
                unique,
                if_not_exists,
            }))
        } else {
            Err(Error::Parse("expected TABLE or INDEX after CREATE".into()))
        }
    }

    fn parse_if_not_exists(&mut self) -> Result<bool> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol(Symbol::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(a)) = self.peek() {
            // A bare identifier that is not a clause keyword is an alias.
            if !is_clause_kw(a) {
                let a = a.clone();
                self.bump();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// Parses the body of a SELECT (callable recursively if subqueries were
    /// supported; kept separate for clarity).
    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                // A clause keyword here means the select list is missing
                // ("SELECT FROM t"); without this check the keyword would be
                // misparsed as a column reference named e.g. "from".
                if let Some(Token::Ident(a)) = self.peek() {
                    if is_clause_kw(a) && !a.eq_ignore_ascii_case("not") {
                        return Err(Error::Parse(format!(
                            "expected select item, found keyword '{a}'"
                        )));
                    }
                }
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(a)) = self.peek() {
                    if !is_clause_kw(a) {
                        let a = a.clone();
                        self.bump();
                        Some(a)
                    } else {
                        None
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }

        let from = if self.eat_kw("from") {
            let base = self.parse_table_ref()?;
            let mut joins = Vec::new();
            loop {
                if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                } else if !self.eat_kw("join") {
                    if self.eat_symbol(Symbol::Comma) {
                        // Comma join = cross join; the predicate goes in WHERE.
                        let table = self.parse_table_ref()?;
                        joins.push(Join { table, on: None });
                        continue;
                    }
                    break;
                }
                let table = self.parse_table_ref()?;
                let on = if self.eat_kw("on") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                joins.push(Join { table, on });
            }
            Some(FromClause { base, joins })
        } else {
            None
        };

        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("limit") {
            limit = Some(self.parse_u64()?);
            if self.eat_kw("offset") {
                offset = Some(self.parse_u64()?);
            }
        }

        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
            offset,
            distinct,
        })
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.bump() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as u64),
            other => Err(Error::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            let expr = self.parse_expr()?;
            assignments.push((col, expr));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ----- expressions (precedence climbing) -----

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if matches!(self.peek(), Some(t) if t.is_kw("not")) {
            // Only treat NOT as a prefix of IN/BETWEEN/LIKE here.
            let next = self.tokens.get(self.pos + 1);
            if matches!(next, Some(t) if t.is_kw("in") || t.is_kw("between") || t.is_kw("like")) {
                self.bump();
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let right = self.parse_additive()?;
            let like = Expr::Binary {
                op: BinOp::Like,
                left: Box::new(left),
                right: Box::new(right),
            };
            return Ok(if negated {
                Expr::Not(Box::new(like))
            } else {
                like
            });
        }

        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                Some(Token::Symbol(Symbol::Concat)) => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Real(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Symbol(Symbol::Question)) => Ok(Expr::Param(self.params.anon()?)),
            Some(Token::NumberedParam(n)) => Ok(Expr::Param(self.params.numbered(n)?)),
            Some(Token::NamedParam(name)) => Ok(Expr::Param(self.params.named(&name)?)),
            Some(Token::Symbol(Symbol::LParen)) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) | Some(Token::QuotedIdent(name)) => {
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Value::Int(1)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Value::Int(0)));
                }
                // Function call?
                if self.eat_symbol(Symbol::LParen) {
                    let fname = name.to_ascii_uppercase();
                    if self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Function {
                            name: fname,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_symbol(Symbol::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: fname,
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(Error::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

fn is_column_constraint_kw(s: &str) -> bool {
    [
        "primary",
        "not",
        "null",
        "unique",
        "references",
        "default",
        "check",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

fn is_clause_kw(s: &str) -> bool {
    [
        "from", "where", "group", "order", "limit", "offset", "join", "inner", "on", "as", "set",
        "values", "and", "or", "not", "having", "desc", "asc", "union",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse(
            "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, age INT, bio VARCHAR(100))",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "users");
                assert_eq!(ct.columns.len(), 4);
                assert!(ct.columns[0].primary_key);
                assert_eq!(ct.columns[0].ctype, ColumnType::Integer);
                assert!(ct.columns[1].not_null);
                assert_eq!(ct.columns[3].ctype, ColumnType::Text);
                assert!(!ct.if_not_exists);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn create_index_unique_and_if_not_exists() {
        match parse("CREATE UNIQUE INDEX IF NOT EXISTS idx_name ON users (name, age)").unwrap() {
            Statement::CreateIndex(ci) => {
                assert!(ci.unique);
                assert!(ci.if_not_exists);
                assert_eq!(ci.columns, vec!["name".to_string(), "age".to_string()]);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        match parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(ins) => {
                assert_eq!(ins.columns, vec!["a".to_string(), "b".to_string()]);
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.rows[1][0], Expr::int(2));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn select_with_everything() {
        let sql = "SELECT u.name AS n, COUNT(*) FROM users u JOIN orders o ON u.id = o.user_id \
                   WHERE u.age >= 18 AND o.total > 10.5 GROUP BY u.name \
                   ORDER BY n DESC LIMIT 10 OFFSET 5";
        match parse(sql).unwrap() {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                let from = sel.from.unwrap();
                assert_eq!(from.base.name, "users");
                assert_eq!(from.base.alias.as_deref(), Some("u"));
                assert_eq!(from.joins.len(), 1);
                assert!(from.joins[0].on.is_some());
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.limit, Some(10));
                assert_eq!(sel.offset, Some(5));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn select_expression_only() {
        match parse("SELECT 1 + 2 * 3").unwrap() {
            Statement::Select(sel) => {
                assert!(sel.from.is_none());
                assert_eq!(sel.items.len(), 1);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        match parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 7").unwrap() {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.where_clause.is_some());
            }
            other => panic!("wrong statement {other:?}"),
        }
        match parse("DELETE FROM t WHERE id IN (1, 2, 3)").unwrap() {
            Statement::Delete(d) => assert!(d.where_clause.is_some()),
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn predicates() {
        let sql = "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL \
                   AND c LIKE 'ab%' AND d NOT IN (1, 2) OR NOT e = 1";
        assert!(parse(sql).is_ok());
    }

    #[test]
    fn params_are_numbered() {
        match parse("SELECT * FROM t WHERE a = ? AND b = ?").unwrap() {
            Statement::Select(sel) => {
                let w = format!("{:?}", sel.where_clause.unwrap());
                assert!(w.contains("Param(0)"));
                assert!(w.contains("Param(1)"));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn named_and_numbered_params_resolve_to_slots() {
        // Numbered placeholders bind out of order.
        let (stmt, info) = parse_with_params("SELECT * FROM t WHERE a = ?2 AND b = ?1").unwrap();
        assert_eq!(info.len(), 2);
        let w = format!("{stmt:?}");
        assert!(w.contains("Param(1)") && w.contains("Param(0)"), "{w}");

        // A repeated :name shares one slot.
        let (stmt, info) =
            parse_with_params("SELECT * FROM t WHERE a = :x AND b = :y AND c = :x").unwrap();
        assert_eq!(info.len(), 2);
        assert_eq!(info.name_of(0), Some("x"));
        assert_eq!(info.name_of(1), Some("y"));
        let w = format!("{stmt:?}");
        assert_eq!(w.matches("Param(0)").count(), 2, "{w}");

        // EXPLAIN shares the inner statement's parameter table.
        let (_, info) = parse_with_params("EXPLAIN SELECT * FROM t WHERE a = :x").unwrap();
        assert_eq!(info.len(), 1);
    }

    #[test]
    fn mixing_placeholder_kinds_is_a_bind_error() {
        for sql in [
            "SELECT * FROM t WHERE a = ? AND b = :x",
            "SELECT * FROM t WHERE a = :x AND b = ?",
            "SELECT * FROM t WHERE a = :x AND b = ?2",
        ] {
            let err = parse(sql).unwrap_err();
            assert!(
                matches!(err, yesquel_common::Error::Bind(_)),
                "{sql}: {err}"
            );
        }
        // Anonymous and numbered positional placeholders may mix.
        let (_, info) = parse_with_params("SELECT * FROM t WHERE a = ?2 AND b = ?").unwrap();
        assert_eq!(info.len(), 3);
    }

    #[test]
    fn transactions() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK;").unwrap(), Statement::Rollback);
    }

    #[test]
    fn drop_table() {
        assert_eq!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                name: "t".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELEC 1").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("CREATE VIEW v AS SELECT 1").is_err());
        assert!(parse("SELECT 1 extra garbage (").is_err());
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        match parse("SELECT 1 + 2 * 3").unwrap() {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr {
                    expr:
                        Expr::Binary {
                            op: BinOp::Add,
                            right,
                            ..
                        },
                    ..
                } => {
                    assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("wrong parse {other:?}"),
            },
            other => panic!("wrong statement {other:?}"),
        }
    }
}
