//! Typed client-side access: [`ToValue`] for binding parameters, the
//! [`params!`] macro, and the [`Row`] type with [`FromValue`]-typed getters.
//!
//! These are the rusqlite-style ergonomics of the prepared-statement API:
//! callers write `prep.execute(params![title, views])?` instead of
//! hand-wrapping `Value::Text(...)`, and read results with
//! `row.get::<i64>("views")?` instead of indexing `rows[0][2]` by a magic
//! column position.  Typed reads are strict — an `i64` getter on a TEXT
//! value is an [`Error::Bind`] naming the column, not a silent coercion —
//! because the misread, not the conversion, is the bug worth surfacing.
//!
//! [`params!`]: crate::params!

use std::fmt;
use std::sync::Arc;

use yesquel_common::{Error, Result};

use crate::types::Value;

// ---------------------------------------------------------------------------
// Parameter binding
// ---------------------------------------------------------------------------

/// A Rust value that can be bound as a SQL parameter.
pub trait ToValue {
    /// The SQL value to bind.
    fn to_value(&self) -> Value;
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for &Value {
    fn to_value(&self) -> Value {
        (*self).clone()
    }
}

macro_rules! to_value_int {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
to_value_int!(i8, i16, i32, i64, u8, u16, u32);

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Int(i64::from(*self))
    }
}

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Real(*self)
    }
}

impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Real(f64::from(*self))
    }
}

impl ToValue for &str {
    fn to_value(&self) -> Value {
        Value::Text((*self).to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::Text(self.clone())
    }
}

impl ToValue for &[u8] {
    fn to_value(&self) -> Value {
        Value::Blob(self.to_vec())
    }
}

impl ToValue for Vec<u8> {
    fn to_value(&self) -> Value {
        Value::Blob(self.clone())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

/// Builds the positional parameter slice of one statement execution from
/// plain Rust values: `prep.execute(params![title, views])?`.  Each argument
/// is converted through [`ToValue`]; an empty invocation binds nothing.
#[macro_export]
macro_rules! params {
    () => {
        &[] as &[$crate::types::Value]
    };
    ($($p:expr),+ $(,)?) => {
        &[$($crate::typed::ToValue::to_value(&$p)),+] as &[$crate::types::Value]
    };
}

// ---------------------------------------------------------------------------
// Typed row access
// ---------------------------------------------------------------------------

/// A Rust type a result [`Value`] can be read as.  The lifetime lets
/// borrowing reads (`&str`, `&[u8]`) hand out slices of the row instead of
/// allocating.
pub trait FromValue<'a>: Sized {
    /// Converts the value, or reports why it does not fit.
    fn from_value(v: &'a Value) -> Result<Self>;
}

fn type_err(want: &str, got: &Value) -> Error {
    Error::Bind(format!("expected {want}, got {got:?}"))
}

impl<'a> FromValue<'a> for i64 {
    fn from_value(v: &'a Value) -> Result<Self> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(type_err("an INTEGER", other)),
        }
    }
}

impl<'a> FromValue<'a> for i32 {
    fn from_value(v: &'a Value) -> Result<Self> {
        let i = i64::from_value(v)?;
        i32::try_from(i).map_err(|_| Error::Bind(format!("integer {i} does not fit in i32")))
    }
}

impl<'a> FromValue<'a> for bool {
    fn from_value(v: &'a Value) -> Result<Self> {
        Ok(i64::from_value(v)? != 0)
    }
}

impl<'a> FromValue<'a> for f64 {
    fn from_value(v: &'a Value) -> Result<Self> {
        match v {
            Value::Real(r) => Ok(*r),
            Value::Int(i) => Ok(*i as f64),
            other => Err(type_err("a number", other)),
        }
    }
}

impl<'a> FromValue<'a> for &'a str {
    fn from_value(v: &'a Value) -> Result<Self> {
        match v {
            Value::Text(s) => Ok(s.as_str()),
            other => Err(type_err("TEXT", other)),
        }
    }
}

impl<'a> FromValue<'a> for String {
    fn from_value(v: &'a Value) -> Result<Self> {
        <&str>::from_value(v).map(str::to_string)
    }
}

impl<'a> FromValue<'a> for &'a [u8] {
    fn from_value(v: &'a Value) -> Result<Self> {
        match v {
            Value::Blob(b) => Ok(b.as_slice()),
            other => Err(type_err("a BLOB", other)),
        }
    }
}

impl<'a> FromValue<'a> for Vec<u8> {
    fn from_value(v: &'a Value) -> Result<Self> {
        <&[u8]>::from_value(v).map(<[u8]>::to_vec)
    }
}

impl<'a> FromValue<'a> for Value {
    fn from_value(v: &'a Value) -> Result<Self> {
        Ok(v.clone())
    }
}

impl<'a> FromValue<'a> for &'a Value {
    fn from_value(v: &'a Value) -> Result<Self> {
        Ok(v)
    }
}

impl<'a, T: FromValue<'a>> FromValue<'a> for Option<T> {
    fn from_value(v: &'a Value) -> Result<Self> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

/// One result row with its column header: values are read by name or
/// position through [`FromValue`], so application code never indexes by a
/// magic column number.
///
/// The header is an `Arc<[String]>` shared by every row of one result — a
/// row costs its values plus one reference-count bump, whether it came from
/// the streaming `Rows` iterator or from a materialised `ResultSet`.
#[derive(Clone, PartialEq)]
pub struct Row {
    header: Arc<[String]>,
    values: Vec<Value>,
}

impl Row {
    /// Assembles a row from a shared header and its values.
    pub fn new(header: Arc<[String]>, values: Vec<Value>) -> Row {
        Row { header, values }
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.header
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-column row.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Position of the named column (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.header
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Reads the named column as `T`.  Unknown names and type mismatches are
    /// [`Error::Bind`]s naming the column.
    pub fn get<'a, T: FromValue<'a>>(&'a self, name: &str) -> Result<T> {
        let i = self
            .column_index(name)
            .ok_or_else(|| Error::Bind(format!("no such column in result: {name}")))?;
        let v = self.values.get(i).ok_or_else(|| {
            Error::Bind(format!(
                "column {name}: row has no value at slot {i} (header wider than row)"
            ))
        })?;
        T::from_value(v).map_err(|e| Error::Bind(format!("column {name}: {}", bind_msg(e))))
    }

    /// Reads column `i` (0-based) as `T`.
    pub fn get_at<'a, T: FromValue<'a>>(&'a self, i: usize) -> Result<T> {
        let v = self.values.get(i).ok_or_else(|| {
            Error::Bind(format!(
                "column index {i} out of range (result has {} columns)",
                self.values.len()
            ))
        })?;
        T::from_value(v).map_err(|e| Error::Bind(format!("column {i}: {}", bind_msg(e))))
    }

    /// The raw values of the row.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row into its values (the pre-typed-API row shape).
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

/// The message of a bind error (other variants pass through [`fmt::Display`]).
fn bind_msg(e: Error) -> String {
    match e {
        Error::Bind(m) => m,
        other => other.to_string(),
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (c, v) in self.header.iter().zip(&self.values) {
            m.entry(c, v);
        }
        m.finish()
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        let header: Arc<[String]> = Arc::from(vec![
            "id".to_string(),
            "name".to_string(),
            "score".to_string(),
            "tag".to_string(),
        ]);
        Row::new(
            header,
            vec![
                Value::Int(7),
                Value::Text("alice".into()),
                Value::Real(2.5),
                Value::Null,
            ],
        )
    }

    #[test]
    fn typed_gets_by_name_and_position() {
        let row = sample();
        assert_eq!(row.get::<i64>("id").unwrap(), 7);
        assert_eq!(
            row.get::<i64>("ID").unwrap(),
            7,
            "names are case-insensitive"
        );
        assert_eq!(row.get::<&str>("name").unwrap(), "alice");
        assert_eq!(row.get::<String>("name").unwrap(), "alice");
        assert_eq!(row.get::<f64>("score").unwrap(), 2.5);
        assert_eq!(row.get::<f64>("id").unwrap(), 7.0, "ints read as f64");
        assert_eq!(row.get_at::<i64>(0).unwrap(), 7);
        assert_eq!(row.get_at::<&str>(1).unwrap(), "alice");
        assert_eq!(row[1], Value::Text("alice".into()));
    }

    #[test]
    fn nulls_and_options() {
        let row = sample();
        assert_eq!(row.get::<Option<String>>("tag").unwrap(), None);
        assert_eq!(row.get::<Option<i64>>("id").unwrap(), Some(7));
        assert_eq!(row.get::<Value>("tag").unwrap(), Value::Null);
        // A non-optional getter on NULL is a bind error.
        assert!(matches!(row.get::<i64>("tag"), Err(Error::Bind(_))));
    }

    #[test]
    fn mismatches_are_bind_errors_naming_the_column() {
        let row = sample();
        let err = row.get::<i64>("name").unwrap_err();
        match &err {
            Error::Bind(m) => assert!(m.contains("name") && m.contains("INTEGER"), "{m}"),
            other => panic!("expected Bind, got {other:?}"),
        }
        assert!(matches!(row.get::<i64>("missing"), Err(Error::Bind(_))));
        assert!(matches!(row.get_at::<i64>(9), Err(Error::Bind(_))));
        assert!(matches!(row.get::<&str>("id"), Err(Error::Bind(_))));
        // A header wider than the row errors instead of panicking.
        let short = Row::new(
            Arc::from(vec!["a".to_string(), "b".to_string()]),
            vec![Value::Int(1)],
        );
        assert!(matches!(short.get::<i64>("b"), Err(Error::Bind(_))));
        assert_eq!(short.get::<i64>("a").unwrap(), 1);
    }

    #[test]
    fn params_macro_converts_rust_values() {
        let name = String::from("bob");
        let maybe: Option<i64> = None;
        let bound: &[Value] = params![1i64, 2i32, 2.5f64, "x", name, true, maybe];
        assert_eq!(
            bound,
            &[
                Value::Int(1),
                Value::Int(2),
                Value::Real(2.5),
                Value::Text("x".into()),
                Value::Text("bob".into()),
                Value::Int(1),
                Value::Null,
            ]
        );
        let empty: &[Value] = params![];
        assert!(empty.is_empty());
        // Values and references pass through.
        let v = Value::Blob(vec![1, 2]);
        assert_eq!(params![&v][0], v);
    }

    #[test]
    fn row_debug_shows_names() {
        let s = format!("{:?}", sample());
        assert!(s.contains("\"name\"") && s.contains("alice"), "{s}");
    }
}
