//! Yesquel's SQL layer: tokenizer, parser, expression evaluation, typed
//! rows, and the catalog mapping tables and indexes onto distributed
//! balanced trees.
//!
//! The layering follows Figure 1 of the paper: the SQL layer compiles
//! statements into operations on DBTs (`yesquel-ydbt`), which in turn run
//! inside the distributed transactions of the key-value store
//! (`yesquel-kv`).  Every table is one DBT keyed by rowid; every secondary
//! index is another DBT keyed by the order-preserving encoding of the
//! indexed columns (see [`row`]).

pub mod ast;
pub mod catalog;
pub mod expr;
pub mod parser;
pub mod row;
pub mod token;
pub mod types;

pub use ast::Statement;
pub use catalog::Catalog;
pub use parser::{parse, parse_script};
pub use token::tokenize;
pub use types::{ColumnType, Value};
