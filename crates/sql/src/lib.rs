//! Yesquel's SQL layer: tokenizer, parser, expression evaluation, typed
//! rows, the catalog mapping tables and indexes onto distributed balanced
//! trees, and the query processor ([`plan`] + [`exec`]) compiling
//! statements into DBT operations.
//!
//! The layering follows Figure 1 of the paper: the SQL layer compiles
//! statements into operations on DBTs (`yesquel-ydbt`), which in turn run
//! inside the distributed transactions of the key-value store
//! (`yesquel-kv`).  Every table is one DBT keyed by rowid; every secondary
//! index is another DBT keyed by the order-preserving encoding of the
//! indexed columns (see [`row`]).  The planner binds a parsed statement
//! against the catalog into one of a small set of physical plan shapes
//! (point lookup, bounded index/rowid range scan, full scan); the executor
//! runs the plan inside a caller-supplied transaction, maintaining every
//! secondary index on DML.

pub mod ast;
pub mod catalog;
pub mod exec;
pub mod expr;
pub mod params;
pub mod parser;
pub mod plan;
pub mod row;
pub mod token;
pub mod typed;
pub mod types;

pub use ast::Statement;
pub use catalog::{Catalog, SqlCounters};
pub use exec::{
    execute, execute_plan, open_stream, ExecCtx, ResultRows, ResultSet, RowSource, RowStream,
};
pub use params::ParamInfo;
pub use parser::{parse, parse_script, parse_with_params};
pub use plan::{plan_statement, AccessPath, AggFunc, AggStrategy, Plan};
pub use token::tokenize;
pub use typed::{FromValue, Row, ToValue};
pub use types::{ColumnType, Value};
