//! Abstract syntax tree for the supported SQL subset.

use crate::types::{ColumnType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [constraints], ...)`
    CreateTable(CreateTable),
    /// `CREATE [UNIQUE] INDEX name ON table (col, ...)`
    CreateIndex(CreateIndex),
    /// `DROP TABLE name`
    DropTable {
        /// Table to drop.
        name: String,
        /// Do not error if it does not exist.
        if_exists: bool,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`
    Insert(Insert),
    /// `SELECT ...`
    Select(Select),
    /// `UPDATE table SET col = expr, ... [WHERE ...]`
    Update(Update),
    /// `DELETE FROM table [WHERE ...]`
    Delete(Delete),
    /// `EXPLAIN <statement>`: plan the inner statement and return its
    /// one-line description instead of executing it.
    Explain(Box<Statement>),
    /// `EXPLAIN ANALYZE <statement>`: actually execute the inner statement
    /// (discarding its result rows) and return per-operator row counts, KV
    /// fetch counts and elapsed times.
    ExplainAnalyze(Box<Statement>),
    /// `BEGIN [TRANSACTION]`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

/// Column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ctype: ColumnType,
    /// `PRIMARY KEY` was declared on this column.
    pub primary_key: bool,
    /// `NOT NULL` was declared.
    pub not_null: bool,
    /// `UNIQUE` was declared.
    pub unique: bool,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// `IF NOT EXISTS` was given.
    pub if_not_exists: bool,
}

/// `CREATE INDEX` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Table the index is on.
    pub table: String,
    /// Indexed columns, in order.
    pub columns: Vec<String>,
    /// `UNIQUE` index.
    pub unique: bool,
    /// `IF NOT EXISTS` was given.
    pub if_not_exists: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (empty = all columns in schema order).
    pub columns: Vec<String>,
    /// Rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

/// A term in the SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// FROM clause: a base table plus zero or more inner joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// First table.
    pub base: TableRef,
    /// `JOIN table ON cond` clauses, applied left to right.
    pub joins: Vec<Join>,
}

/// One join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Join condition (`ON ...`); `None` for a cross join.
    pub on: Option<Expr>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause; `None` for expression-only selects (`SELECT 1+1`).
    pub from: Option<FromClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// OFFSET.
    pub offset: Option<u64>,
    /// DISTINCT.
    pub distinct: bool,
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET column = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `||`
    Concat,
    /// `LIKE`
    Like,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified by table name or alias.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A positional parameter (`?`), 0-based.
    Param(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v, v, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// Function call (aggregates and a few scalar functions).
    Function {
        /// Function name, uppercased.
        name: String,
        /// Arguments (`COUNT(*)` has an empty list and `star = true`).
        args: Vec<Expr>,
        /// True for `COUNT(*)`.
        star: bool,
    },
    /// Direct reference to a slot of the current row, bypassing name
    /// resolution.  Never produced by the parser: the planner rewrites
    /// aggregate-query expressions into slot references over the
    /// post-aggregation row layout (`[group keys..., aggregates...]`).
    Slot(usize),
}

impl Expr {
    /// Convenience constructor for column references.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for integer literals.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// True if the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } => {
                matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![],
            star: true,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::int(1)),
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
        let scalar_fn = Expr::Function {
            name: "LENGTH".into(),
            args: vec![Expr::col("a")],
            star: false,
        };
        assert!(!scalar_fn.contains_aggregate());
    }

    #[test]
    fn helpers() {
        assert_eq!(Expr::int(3), Expr::Literal(Value::Int(3)));
        assert_eq!(
            Expr::col("x"),
            Expr::Column {
                table: None,
                name: "x".into()
            }
        );
    }
}
