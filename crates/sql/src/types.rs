//! SQL values and column types.

use std::cmp::Ordering;
use std::fmt;

use yesquel_common::{Error, Result};

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Real,
    /// UTF-8 string.
    Text,
    /// Arbitrary bytes.
    Blob,
}

impl ColumnType {
    /// Parses a SQL type name (liberally, like SQLite's type affinity).
    pub fn from_name(name: &str) -> ColumnType {
        let up = name.to_ascii_uppercase();
        if up.contains("INT") {
            ColumnType::Integer
        } else if up.contains("CHAR") || up.contains("TEXT") || up.contains("CLOB") {
            ColumnType::Text
        } else if up.contains("BLOB") {
            ColumnType::Blob
        } else if up.contains("REAL") || up.contains("FLOA") || up.contains("DOUB") {
            ColumnType::Real
        } else {
            ColumnType::Text
        }
    }

    /// SQL name of the type.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnType::Integer => "INTEGER",
            ColumnType::Real => "REAL",
            ColumnType::Text => "TEXT",
            ColumnType::Blob => "BLOB",
        }
    }
}

/// A SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Floating point.
    Real(f64),
    /// Text.
    Text(String),
    /// Bytes.
    Blob(Vec<u8>),
}

impl Value {
    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: NULL and zero are false, everything else true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Text(s) => !s.is_empty() && s != "0",
            Value::Blob(b) => !b.is_empty(),
        }
    }

    /// Returns the integer value, coercing reals and numeric text.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Real(r) => Ok(*r as i64),
            Value::Text(s) => s
                .trim()
                .parse()
                .map_err(|_| Error::Type(format!("'{s}' is not an integer"))),
            Value::Null => Err(Error::Type("NULL is not an integer".into())),
            Value::Blob(_) => Err(Error::Type("blob is not an integer".into())),
        }
    }

    /// Returns the float value, coercing integers and numeric text.
    pub fn as_real(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Real(r) => Ok(*r),
            Value::Text(s) => s
                .trim()
                .parse()
                .map_err(|_| Error::Type(format!("'{s}' is not a number"))),
            Value::Null => Err(Error::Type("NULL is not a number".into())),
            Value::Blob(_) => Err(Error::Type("blob is not a number".into())),
        }
    }

    /// Returns the text value (numbers are formatted).
    pub fn as_text(&self) -> Result<String> {
        match self {
            Value::Text(s) => Ok(s.clone()),
            Value::Int(i) => Ok(i.to_string()),
            Value::Real(r) => Ok(r.to_string()),
            Value::Null => Err(Error::Type("NULL is not text".into())),
            Value::Blob(b) => Ok(String::from_utf8_lossy(b).into_owned()),
        }
    }

    /// Coerces the value to a column's declared type for storage (SQLite-
    /// style soft typing: a failed coercion stores the value as given).
    /// NaN becomes NULL whatever the column type, as in SQLite — so stored
    /// rows and index entries never contain NaN.
    pub fn coerce(self, ty: ColumnType) -> Value {
        if matches!(self, Value::Real(r) if r.is_nan()) {
            return Value::Null;
        }
        match (ty, &self) {
            (ColumnType::Integer, Value::Text(s)) => {
                s.trim().parse::<i64>().map(Value::Int).unwrap_or(self)
            }
            (ColumnType::Integer, Value::Real(r)) if r.fract() == 0.0 => Value::Int(*r as i64),
            (ColumnType::Real, Value::Int(i)) => Value::Real(*i as f64),
            (ColumnType::Real, Value::Text(s)) => {
                s.trim().parse::<f64>().map(Value::Real).unwrap_or(self)
            }
            (ColumnType::Text, Value::Int(i)) => Value::Text(i.to_string()),
            (ColumnType::Text, Value::Real(r)) => Value::Text(r.to_string()),
            _ => self,
        }
    }

    /// Rank used to order values of different storage classes, as SQL does:
    /// NULL < numbers < text < blob.
    fn class_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Real(_) => 1,
            Value::Text(_) => 2,
            Value::Blob(_) => 3,
        }
    }

    /// Total ordering over values (used by ORDER BY, GROUP BY and index
    /// keys): NULLs first, then numbers by numeric value, then text, then
    /// blobs.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.class_rank(), other.class_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if ra == 1 => {
                let fa = a.as_real().unwrap_or(0.0);
                let fb = b.as_real().unwrap_or(0.0);
                match fa.partial_cmp(&fb) {
                    Some(o) => o,
                    // NaN sorts below every other number and equal to
                    // itself, keeping this a total order (an inconsistent
                    // comparator would also break sorts and the index-key
                    // encoding, which must agree with this ordering).
                    None => match (fa.is_nan(), fb.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Less,
                        (false, true) => Ordering::Greater,
                        (false, false) => unreachable!("partial_cmp is None only with NaN"),
                    },
                }
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Blob(a), Value::Blob(b)) => a.cmp(b),
            _ => Ordering::Equal,
        }
    }

    /// SQL three-valued comparison: returns `None` if either side is NULL.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sort_cmp(other))
    }

    /// SQL equality (`=`), NULL-propagating.
    pub fn sql_eq(&self, other: &Value) -> Value {
        match self.compare(other) {
            None => Value::Null,
            Some(Ordering::Equal) => Value::Int(1),
            Some(_) => Value::Int(0),
        }
    }

    /// Arithmetic addition with numeric coercion; NULL-propagating.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtraction.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division; division by zero yields NULL (SQLite semantics).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => {
                let b = other.as_real()?;
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Real(self.as_real()? / b))
                }
            }
        }
    }

    /// Remainder; zero divisor yields NULL.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let a = self.as_int()?;
        let b = other.as_int()?;
        if b == 0 {
            Ok(Value::Null)
        } else {
            Ok(Value::Int(a % b))
        }
    }

    /// String concatenation (`||`); NULL-propagating.
    pub fn concat(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Text(format!(
            "{}{}",
            self.as_text()?,
            other.as_text()?
        )))
    }

    /// SQL `LIKE` with `%` and `_` wildcards, case-insensitive for ASCII.
    pub fn like(&self, pattern: &Value) -> Result<Value> {
        if self.is_null() || pattern.is_null() {
            return Ok(Value::Null);
        }
        let text = self.as_text()?.to_ascii_lowercase();
        let pat = pattern.as_text()?.to_ascii_lowercase();
        Ok(Value::Int(
            like_match(text.as_bytes(), pat.as_bytes()) as i64
        ))
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    real_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match int_op(*x, *y) {
            Some(v) => Ok(Value::Int(v)),
            None => Ok(Value::Real(real_op(*x as f64, *y as f64))),
        },
        _ => Ok(Value::Real(real_op(a.as_real()?, b.as_real()?))),
    }
}

/// Recursive `LIKE` matcher.
fn like_match(text: &[u8], pat: &[u8]) -> bool {
    match pat.first() {
        None => text.is_empty(),
        Some(b'%') => (0..=text.len()).any(|i| like_match(&text[i..], &pat[1..])),
        Some(b'_') => !text.is_empty() && like_match(&text[1..], &pat[1..]),
        Some(c) => text.first() == Some(c) && like_match(&text[1..], &pat[1..]),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Blob(b) => write!(
                f,
                "x'{}'",
                b.iter().map(|c| format!("{c:02x}")).collect::<String>()
            ),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_type_affinity() {
        assert_eq!(ColumnType::from_name("INTEGER"), ColumnType::Integer);
        assert_eq!(ColumnType::from_name("int"), ColumnType::Integer);
        assert_eq!(ColumnType::from_name("BIGINT"), ColumnType::Integer);
        assert_eq!(ColumnType::from_name("VARCHAR(30)"), ColumnType::Text);
        assert_eq!(ColumnType::from_name("TEXT"), ColumnType::Text);
        assert_eq!(ColumnType::from_name("DOUBLE"), ColumnType::Real);
        assert_eq!(ColumnType::from_name("BLOB"), ColumnType::Blob);
        assert_eq!(ColumnType::Integer.name(), "INTEGER");
    }

    #[test]
    fn null_propagation() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Value::Null);
        assert!(Value::Null.compare(&Value::Int(1)).is_none());
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).mul(&Value::Real(1.5)).unwrap(),
            Value::Real(3.0)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).div(&Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(Value::Int(7).rem(&Value::Int(4)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)).unwrap(),
            Value::Real(i64::MAX as f64 + 1.0)
        );
        assert_eq!(
            Value::Text("a".into()).concat(&Value::Int(3)).unwrap(),
            Value::Text("a3".into())
        );
    }

    #[test]
    fn comparisons_and_sorting() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).compare(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        // Cross-class ordering: numbers sort before text.
        assert_eq!(
            Value::Int(99).sort_cmp(&Value::Text("1".into())),
            Ordering::Less
        );
        assert_eq!(Value::Null.sort_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Value::Int(1));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Value::Int(0));
    }

    #[test]
    fn nan_total_order_and_storage() {
        // NaN is a consistent total order: below every number, equal to
        // itself (an inconsistent comparator would corrupt sorts and the
        // index-key encoding).
        let nan = Value::Real(f64::NAN);
        assert_eq!(nan.sort_cmp(&Value::Real(f64::NAN)), Ordering::Equal);
        assert_eq!(
            nan.sort_cmp(&Value::Real(f64::NEG_INFINITY)),
            Ordering::Less
        );
        assert_eq!(Value::Int(0).sort_cmp(&nan), Ordering::Greater);
        assert_eq!(nan.sort_cmp(&Value::Text(String::new())), Ordering::Less);
        assert_eq!(Value::Null.sort_cmp(&nan), Ordering::Less);
        // Storage coercion turns NaN into NULL (SQLite semantics), for any
        // declared type.
        assert_eq!(Value::Real(f64::NAN).coerce(ColumnType::Real), Value::Null);
        assert_eq!(Value::Real(f64::NAN).coerce(ColumnType::Text), Value::Null);
        // -0.0 compares equal to 0.0 across classes.
        assert_eq!(Value::Real(-0.0).sort_cmp(&Value::Int(0)), Ordering::Equal);
    }

    #[test]
    fn coercion_on_store() {
        assert_eq!(
            Value::Text("42".into()).coerce(ColumnType::Integer),
            Value::Int(42)
        );
        assert_eq!(
            Value::Text("x".into()).coerce(ColumnType::Integer),
            Value::Text("x".into())
        );
        assert_eq!(Value::Int(3).coerce(ColumnType::Real), Value::Real(3.0));
        assert_eq!(
            Value::Int(3).coerce(ColumnType::Text),
            Value::Text("3".into())
        );
        assert_eq!(
            Value::Real(2.5).coerce(ColumnType::Integer),
            Value::Real(2.5)
        );
        assert_eq!(Value::Real(2.0).coerce(ColumnType::Integer), Value::Int(2));
    }

    #[test]
    fn like_patterns() {
        let t = |s: &str, p: &str| {
            Value::Text(s.into()).like(&Value::Text(p.into())).unwrap() == Value::Int(1)
        };
        assert!(t("hello", "hello"));
        assert!(t("hello", "he%"));
        assert!(t("hello", "%llo"));
        assert!(t("hello", "h_llo"));
        assert!(t("HELLO", "hello"));
        assert!(!t("hello", "h_y%"));
        assert!(t("", "%"));
        assert!(!t("abc", ""));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Text(" 7 ".into()).as_int().unwrap(), 7);
        assert!(Value::Text("abc".into()).as_int().is_err());
        assert_eq!(Value::Int(3).as_text().unwrap(), "3");
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(format!("{}", Value::Blob(vec![0xab])), "x'ab'");
    }
}
