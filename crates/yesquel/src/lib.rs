//! Top-level facade of the Yesquel reproduction.
//!
//! Re-exports the public surface of every layer so applications (and the
//! workspace's integration tests and examples) can depend on one crate:
//!
//! * [`KvDatabase`] / [`KvClient`] — the transactional key-value deployment;
//! * [`DbtEngine`] / [`Dbt`] — the distributed balanced tree;
//! * [`sql`] — the SQL front end (parser, catalog, planner, executor);
//! * [`baselines`] — single-node comparison stores.
//!
//! The application-facing shape is [`Yesquel::execute`]: SQL text in,
//! [`ResultSet`] out, with the statement compiled onto DBT operations that
//! run inside a distributed transaction (Figure 1 of the paper).  A
//! [`Session`] holds the per-connection state — the schema cache and the
//! explicit transaction opened by `BEGIN`, if any.

pub use yesquel_baselines as baselines;
pub use yesquel_common as common;
pub use yesquel_kv as kv;
pub use yesquel_rpc as rpc;
pub use yesquel_sql as sql;
pub use yesquel_ydbt as ydbt;

pub use yesquel_common::{DbtConfig, Error, KvConfig, NetConfig, ObjectId, Result, YesquelConfig};
pub use yesquel_kv::{KvClient, KvDatabase, Txn};
pub use yesquel_sql::{ResultSet, Value};
pub use yesquel_ydbt::{Dbt, DbtEngine};

use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_sql::ast::Statement;
use yesquel_sql::Catalog;

/// One SQL connection: the catalog (schema cache) plus the explicit
/// transaction opened by `BEGIN`, if any.
///
/// Outside an explicit transaction every statement autocommits: it runs in
/// its own snapshot-isolated transaction, retried on write-write conflicts.
/// Inside `BEGIN`…`COMMIT` all statements share one transaction and a
/// commit-time conflict surfaces as [`Error::Conflict`] from `COMMIT`.
pub struct Session {
    client: KvClient,
    catalog: Arc<Catalog>,
    current: Mutex<Option<Txn>>,
}

impl Session {
    /// Opens a session over a client-side DBT engine (bootstrapping the
    /// catalog tree on first use of the deployment).
    pub fn new(engine: Arc<DbtEngine>) -> Result<Session> {
        let client = engine.kv().clone();
        let catalog = Arc::new(Catalog::open(engine)?);
        Ok(Session {
            client,
            catalog,
            current: Mutex::new(None),
        })
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// True while an explicit transaction (`BEGIN`) is open.
    pub fn in_transaction(&self) -> bool {
        self.current.lock().is_some()
    }

    /// Parses and executes one statement.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        let stmt = yesquel_sql::parse(sql_text)?;
        self.execute_statement(&stmt, params)
    }

    /// Executes every statement of a semicolon-separated script, returning
    /// the result of each.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        let stmts = yesquel_sql::parse_script(sql_text)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt, &[])?);
        }
        Ok(out)
    }

    /// Executes one parsed statement.
    pub fn execute_statement(&self, stmt: &Statement, params: &[Value]) -> Result<ResultSet> {
        match stmt {
            Statement::Begin => {
                let mut cur = self.current.lock();
                if cur.is_some() {
                    return Err(Error::InvalidArgument(
                        "cannot BEGIN: a transaction is already open".into(),
                    ));
                }
                *cur = Some(self.client.begin());
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot COMMIT: no open transaction".into())
                })?;
                match txn.commit() {
                    Ok(_) => Ok(ResultSet::default()),
                    Err(e) => {
                        // The transaction is gone; any DDL it performed must
                        // not survive in the schema cache.
                        self.catalog.invalidate_all();
                        Err(e)
                    }
                }
            }
            Statement::Rollback => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot ROLLBACK: no open transaction".into())
                })?;
                txn.abort();
                self.catalog.invalidate_all();
                Ok(ResultSet::default())
            }
            other => self.execute_dml(other, params),
        }
    }

    fn execute_dml(&self, stmt: &Statement, params: &[Value]) -> Result<ResultSet> {
        // Explicit transaction: run the statement inside it.  Planning
        // errors (parse/schema/unsupported) write nothing and leave the
        // transaction usable; an execution error may have buffered partial
        // writes, so the whole transaction is aborted (statement-level
        // rollback is not implemented).
        let mut cur = self.current.lock();
        if let Some(txn) = cur.as_ref() {
            let plan = yesquel_sql::plan_statement(&self.catalog, txn, stmt)?;
            return match yesquel_sql::execute_plan(&self.catalog, txn, &plan, params) {
                Ok(rs) => Ok(rs),
                Err(e) => {
                    if let Some(txn) = cur.take() {
                        txn.abort();
                    }
                    self.catalog.invalidate_all();
                    Err(e)
                }
            };
        }
        drop(cur);

        // Autocommit: one transaction per statement, retried on conflicts
        // (the documented recovery strategy under snapshot isolation).  A
        // failed attempt may have cached schemas from its aborted writes,
        // so the schema cache is dropped before every retry.
        const MAX_ATTEMPTS: usize = 24;
        let mut last_err = Error::Internal("statement retry limit reached".into());
        for attempt in 0..MAX_ATTEMPTS {
            let txn = self.client.begin();
            let result = yesquel_sql::execute(&self.catalog, &txn, stmt, params);
            match result {
                Ok(rs) => match txn.commit() {
                    Ok(_) => return Ok(rs),
                    Err(e) if e.is_retryable() => {
                        self.catalog.invalidate_all();
                        last_err = e;
                    }
                    Err(e) => {
                        self.catalog.invalidate_all();
                        return Err(e);
                    }
                },
                Err(e) if e.is_retryable() => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    last_err = e;
                }
                Err(e) => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    return Err(e);
                }
            }
            if attempt > 2 {
                std::thread::sleep(std::time::Duration::from_micros(50 * attempt as u64));
            }
        }
        Err(last_err)
    }
}

/// A whole Yesquel deployment plus one client-side DBT engine and a default
/// SQL session — the shape an embedding application uses: open, `execute`
/// SQL, or drop down to trees and raw transactions.
pub struct Yesquel {
    db: KvDatabase,
    engine: Arc<DbtEngine>,
    session: Session,
}

impl Yesquel {
    /// Opens an in-process deployment with `num_servers` storage servers and
    /// default configuration.
    pub fn open(num_servers: usize) -> Self {
        Self::open_with(YesquelConfig::with_servers(num_servers))
    }

    /// Opens a deployment from an explicit configuration.
    pub fn open_with(config: YesquelConfig) -> Self {
        let dbt_cfg = config.dbt.clone();
        let db = KvDatabase::new(config);
        let engine = DbtEngine::new(db.client(), dbt_cfg);
        let session = Session::new(Arc::clone(&engine)).expect("catalog bootstrap cannot fail");
        Yesquel {
            db,
            engine,
            session,
        }
    }

    /// The key-value deployment.
    pub fn db(&self) -> &KvDatabase {
        &self.db
    }

    /// This client's DBT engine (cache, splitter, allocator).
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// The default SQL session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Opens an additional, independent SQL session (its own schema cache
    /// and transaction state) over the same deployment.
    pub fn new_session(&self) -> Result<Session> {
        Session::new(Arc::clone(&self.engine))
    }

    /// Parses and executes one SQL statement on the default session.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        self.session.execute(sql_text, params)
    }

    /// Executes a semicolon-separated SQL script on the default session.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        self.session.execute_script(sql_text)
    }

    /// Starts a key-value transaction.
    pub fn begin(&self) -> Txn {
        self.db.client().begin()
    }

    /// Creates a tree (table/index) and returns a handle to it.
    pub fn create_tree(&self, tree: u64) -> Result<Dbt> {
        self.engine.create_tree(tree)?;
        Ok(self.engine.tree(tree))
    }

    /// Opens a handle to an existing tree.
    pub fn tree(&self, tree: u64) -> Dbt {
        self.engine.tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_create_put_get() {
        let y = Yesquel::open(3);
        let t = y.create_tree(1).unwrap();
        let txn = y.begin();
        t.insert(&txn, b"k", b"v").unwrap();
        assert_eq!(t.lookup(&txn, b"k").unwrap().as_deref(), Some(&b"v"[..]));
        txn.commit().unwrap();
    }

    #[test]
    fn execute_sql_end_to_end() {
        let y = Yesquel::open(3);
        y.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let ins = y
            .execute(
                "INSERT INTO kv (v) VALUES (?), (?)",
                &["a".into(), "b".into()],
            )
            .unwrap();
        assert_eq!(ins.rows_affected, 2);
        assert_eq!(ins.last_rowid, Some(2));
        let rs = y
            .execute("SELECT v FROM kv WHERE id = ?", &[Value::Int(2)])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("b".into())]]);
    }

    #[test]
    fn explicit_transactions_roll_back() {
        let y = Yesquel::open(2);
        y.execute("CREATE TABLE t (a INT)", &[]).unwrap();
        y.execute_script("BEGIN; INSERT INTO t VALUES (1); ROLLBACK")
            .unwrap();
        assert!(y.execute("SELECT * FROM t", &[]).unwrap().rows.is_empty());
        y.execute_script("BEGIN; INSERT INTO t VALUES (2); COMMIT")
            .unwrap();
        assert_eq!(y.execute("SELECT * FROM t", &[]).unwrap().rows.len(), 1);
        assert!(!y.session().in_transaction());
    }
}
