//! Top-level facade of the Yesquel reproduction.
//!
//! Re-exports the public surface of every layer so applications (and the
//! workspace's integration tests and examples) can depend on one crate:
//!
//! * [`KvDatabase`] / [`KvClient`] — the transactional key-value deployment;
//! * [`DbtEngine`] / [`Dbt`] — the distributed balanced tree;
//! * [`sql`] — the SQL front end (parser, catalog, rows);
//! * [`baselines`] — single-node comparison stores.

pub use yesquel_baselines as baselines;
pub use yesquel_common as common;
pub use yesquel_kv as kv;
pub use yesquel_rpc as rpc;
pub use yesquel_sql as sql;
pub use yesquel_ydbt as ydbt;

pub use yesquel_common::{DbtConfig, Error, KvConfig, NetConfig, ObjectId, Result, YesquelConfig};
pub use yesquel_kv::{KvClient, KvDatabase, Txn};
pub use yesquel_ydbt::{Dbt, DbtEngine};

use std::sync::Arc;

/// A whole Yesquel deployment plus one client-side DBT engine — the shape an
/// embedding application uses: open, create trees, run transactions.
pub struct Yesquel {
    db: KvDatabase,
    engine: Arc<DbtEngine>,
}

impl Yesquel {
    /// Opens an in-process deployment with `num_servers` storage servers and
    /// default configuration.
    pub fn open(num_servers: usize) -> Self {
        Self::open_with(YesquelConfig::with_servers(num_servers))
    }

    /// Opens a deployment from an explicit configuration.
    pub fn open_with(config: YesquelConfig) -> Self {
        let dbt_cfg = config.dbt.clone();
        let db = KvDatabase::new(config);
        let engine = DbtEngine::new(db.client(), dbt_cfg);
        Yesquel { db, engine }
    }

    /// The key-value deployment.
    pub fn db(&self) -> &KvDatabase {
        &self.db
    }

    /// This client's DBT engine (cache, splitter, allocator).
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// Starts a key-value transaction.
    pub fn begin(&self) -> Txn {
        self.db.client().begin()
    }

    /// Creates a tree (table/index) and returns a handle to it.
    pub fn create_tree(&self, tree: u64) -> Result<Dbt> {
        self.engine.create_tree(tree)?;
        Ok(self.engine.tree(tree))
    }

    /// Opens a handle to an existing tree.
    pub fn tree(&self, tree: u64) -> Dbt {
        self.engine.tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_create_put_get() {
        let y = Yesquel::open(3);
        let t = y.create_tree(1).unwrap();
        let txn = y.begin();
        t.insert(&txn, b"k", b"v").unwrap();
        assert_eq!(t.lookup(&txn, b"k").unwrap().as_deref(), Some(&b"v"[..]));
        txn.commit().unwrap();
    }
}
