//! Top-level facade of the Yesquel reproduction.
//!
//! Re-exports the public surface of every layer so applications (and the
//! workspace's integration tests and examples) can depend on one crate:
//!
//! * [`KvDatabase`] / [`KvClient`] — the transactional key-value deployment;
//! * [`DbtEngine`] / [`Dbt`] — the distributed balanced tree;
//! * [`sql`] — the SQL front end (parser, catalog, planner, executor);
//! * [`baselines`] — single-node comparison stores.
//!
//! The application-facing shape is [`Yesquel::execute`]: SQL text in,
//! [`ResultSet`] out, with the statement compiled onto DBT operations that
//! run inside a distributed transaction (Figure 1 of the paper).  A
//! [`Session`] holds the per-connection state — the schema cache and the
//! explicit transaction opened by `BEGIN`, if any.

pub use yesquel_baselines as baselines;
pub use yesquel_common as common;
pub use yesquel_kv as kv;
pub use yesquel_rpc as rpc;
pub use yesquel_sql as sql;
pub use yesquel_ydbt as ydbt;

pub use yesquel_common::{DbtConfig, Error, KvConfig, NetConfig, ObjectId, Result, YesquelConfig};
pub use yesquel_kv::{KvClient, KvDatabase, Txn};
pub use yesquel_sql::{ResultSet, Value};
pub use yesquel_ydbt::{Dbt, DbtEngine};

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_sql::ast::Statement;
use yesquel_sql::{Catalog, ExecCtx, Plan, RowStream};

/// Capacity of the per-session statement cache (parsed + planned statements
/// keyed by SQL text).  Web workloads repeat a small set of statement
/// shapes, so a small LRU captures nearly all of the parse/plan cost.
const STMT_CACHE_CAP: usize = 128;

/// One cached statement: its plan and the catalog generation it was planned
/// under (a generation mismatch — any DDL or schema-cache invalidation —
/// forces a replan).
struct CachedStmt {
    plan: Arc<Plan>,
    generation: u64,
    last_used: u64,
}

/// The per-session LRU of planned statements.
#[derive(Default)]
struct StmtCache {
    map: HashMap<String, CachedStmt>,
    tick: u64,
}

/// One SQL connection: the catalog (schema cache), the statement cache, and
/// the explicit transaction opened by `BEGIN`, if any.
///
/// Outside an explicit transaction every statement autocommits: it runs in
/// its own snapshot-isolated transaction, retried on write-write conflicts.
/// Inside `BEGIN`…`COMMIT` all statements share one transaction and a
/// commit-time conflict surfaces as [`Error::Conflict`] from `COMMIT`.
pub struct Session {
    client: KvClient,
    catalog: Arc<Catalog>,
    current: Mutex<Option<Txn>>,
    stmt_cache: Mutex<StmtCache>,
}

impl Session {
    /// Opens a session over a client-side DBT engine (bootstrapping the
    /// catalog tree on first use of the deployment).
    pub fn new(engine: Arc<DbtEngine>) -> Result<Session> {
        let client = engine.kv().clone();
        let catalog = Arc::new(Catalog::open(engine)?);
        Ok(Session {
            client,
            catalog,
            current: Mutex::new(None),
            stmt_cache: Mutex::new(StmtCache::default()),
        })
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// True while an explicit transaction (`BEGIN`) is open.
    pub fn in_transaction(&self) -> bool {
        self.current.lock().is_some()
    }

    /// Parses and executes one statement.
    ///
    /// Statements are planned through the session's statement cache: the
    /// second execution of the same SQL text skips both the parse and the
    /// plan (parameters still bind per execution).  Cached plans are keyed
    /// by the catalog generation and replanned after any DDL or schema-
    /// cache invalidation.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        if let Some(plan) = self.cached_plan(sql_text) {
            // Transaction-control statements are never cached, so a hit
            // means a plain planned statement.
            return self.execute_planned(Some(sql_text), None, Some(plan), params);
        }
        let stmt = yesquel_sql::parse(sql_text)?;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                self.execute_statement(&stmt, params)
            }
            other => self.execute_planned(Some(sql_text), Some(&other), None, params),
        }
    }

    /// Opens a statement as a pulling [`Rows`] iterator instead of
    /// materialising a [`ResultSet`].
    ///
    /// Only query statements (SELECT, EXPLAIN) can stream.  In autocommit
    /// mode the iterator owns its read-only transaction and commits it when
    /// the stream is drained (or abandons it on drop — read-only
    /// transactions hold no server-side state).  Inside an explicit
    /// transaction the result is materialised eagerly (the session's
    /// transaction must stay available to subsequent statements) and the
    /// iterator merely replays it.
    pub fn query(&self, sql_text: &str, params: &[Value]) -> Result<Rows> {
        {
            let mut cur = self.current.lock();
            if cur.is_some() {
                let plan = {
                    let txn = cur.as_ref().expect("checked above");
                    self.plan_for(txn, Some(sql_text), None, true)?
                };
                Self::require_query_plan(&plan)?;
                let txn = cur.as_ref().expect("checked above");
                // Same failure policy as execute(): an execution error may
                // have buffered partial state, so the transaction aborts.
                let rs = match yesquel_sql::execute_plan(&self.catalog, txn, &plan, params) {
                    Ok(rs) => rs,
                    Err(e) => {
                        if let Some(txn) = cur.take() {
                            txn.abort();
                        }
                        self.catalog.invalidate_all();
                        return Err(e);
                    }
                };
                return Ok(Rows {
                    catalog: Arc::clone(&self.catalog),
                    params: params.to_vec(),
                    state: RowsState::Collected {
                        columns: rs.columns,
                        iter: rs.rows.into_iter(),
                    },
                });
            }
        }
        let txn = self.client.begin();
        let plan = self.plan_for(&txn, Some(sql_text), None, true)?;
        if let Err(e) = Self::require_query_plan(&plan) {
            txn.abort();
            return Err(e);
        }
        let stream = yesquel_sql::open_stream(&self.catalog, &txn, &plan, params)?;
        Ok(Rows {
            catalog: Arc::clone(&self.catalog),
            params: params.to_vec(),
            state: RowsState::Streaming {
                txn: Some(txn),
                stream,
                finished: false,
            },
        })
    }

    /// Rejects non-query plans handed to [`Session::query`].
    fn require_query_plan(plan: &Plan) -> Result<()> {
        if matches!(
            plan,
            Plan::Select(_) | Plan::ConstSelect(_) | Plan::Explain(_)
        ) {
            Ok(())
        } else {
            Err(Error::InvalidArgument(
                "query() streams SELECT/EXPLAIN statements; use execute() for DML/DDL".into(),
            ))
        }
    }

    /// Looks `sql` up in the statement cache, counting the hit or miss; a
    /// hit requires the catalog generation the plan was built under to
    /// still be current.  Callers that miss go on to plan fresh (and must
    /// not probe again on the same call chain).
    fn cached_plan(&self, sql: &str) -> Option<Arc<Plan>> {
        let generation = self.catalog.generation();
        let mut cache = self.stmt_cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        let hit = match cache.map.get_mut(sql) {
            Some(e) if e.generation == generation => {
                e.last_used = tick;
                Some(Arc::clone(&e.plan))
            }
            Some(_) => {
                cache.map.remove(sql);
                None
            }
            None => None,
        };
        drop(cache);
        let counters = self.catalog.counters();
        if hit.is_some() {
            counters.stmt_cache_hits.inc();
        } else {
            counters.stmt_cache_misses.inc();
        }
        hit
    }

    /// Caches a freshly built plan (planned statements only — DDL mutates
    /// the schema it would be keyed under, and transaction control never
    /// reaches the planner).
    fn cache_plan(&self, sql: &str, plan: &Arc<Plan>, generation: u64) {
        if !matches!(
            &**plan,
            Plan::Select(_)
                | Plan::ConstSelect(_)
                | Plan::Insert(_)
                | Plan::Update(_)
                | Plan::Delete(_)
                | Plan::Explain(_)
        ) {
            return;
        }
        let mut cache = self.stmt_cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        cache.map.insert(
            sql.to_string(),
            CachedStmt {
                plan: Arc::clone(plan),
                generation,
                last_used: tick,
            },
        );
        if cache.map.len() > STMT_CACHE_CAP {
            if let Some(evict) = cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                cache.map.remove(&evict);
            }
        }
    }

    /// Produces the plan for one statement: from the cache when `probe` is
    /// set and `sql_text` hits, otherwise by parsing (if needed) and
    /// planning inside `txn`, populating the cache on the way out.  Callers
    /// that already probed the cache themselves pass `probe = false`.
    fn plan_for(
        &self,
        txn: &Txn,
        sql_text: Option<&str>,
        stmt: Option<&Statement>,
        probe: bool,
    ) -> Result<Arc<Plan>> {
        if probe {
            if let Some(text) = sql_text {
                if let Some(plan) = self.cached_plan(text) {
                    return Ok(plan);
                }
            }
        }
        let parsed;
        let stmt = match stmt {
            Some(s) => s,
            None => {
                parsed = yesquel_sql::parse(sql_text.expect("plan_for needs text or statement"))?;
                &parsed
            }
        };
        // Captured before planning: if a concurrent invalidation bumps the
        // generation mid-plan, the cached entry is already stale and the
        // next lookup replans.
        let generation = self.catalog.generation();
        let plan = Arc::new(yesquel_sql::plan_statement(&self.catalog, txn, stmt)?);
        if let Some(text) = sql_text {
            self.cache_plan(text, &plan, generation);
        }
        Ok(plan)
    }

    /// Executes every statement of a semicolon-separated script, returning
    /// the result of each.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        let stmts = yesquel_sql::parse_script(sql_text)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt, &[])?);
        }
        Ok(out)
    }

    /// Executes one parsed statement.
    pub fn execute_statement(&self, stmt: &Statement, params: &[Value]) -> Result<ResultSet> {
        match stmt {
            Statement::Begin => {
                let mut cur = self.current.lock();
                if cur.is_some() {
                    return Err(Error::InvalidArgument(
                        "cannot BEGIN: a transaction is already open".into(),
                    ));
                }
                *cur = Some(self.client.begin());
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot COMMIT: no open transaction".into())
                })?;
                match txn.commit() {
                    Ok(_) => Ok(ResultSet::default()),
                    Err(e) => {
                        // The transaction is gone; any DDL it performed must
                        // not survive in the schema cache.
                        self.catalog.invalidate_all();
                        Err(e)
                    }
                }
            }
            Statement::Rollback => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot ROLLBACK: no open transaction".into())
                })?;
                txn.abort();
                self.catalog.invalidate_all();
                Ok(ResultSet::default())
            }
            other => self.execute_planned(None, Some(other), None, params),
        }
    }

    /// Plans (through the cache, when the SQL text is available) and
    /// executes one non-transaction-control statement.  `first_plan` is a
    /// plan the caller already pulled from the cache — used for the first
    /// attempt so the cache is not consulted twice; retries always replan
    /// (the conflict handler invalidates the schema cache, which also
    /// stales the statement cache).
    fn execute_planned(
        &self,
        sql_text: Option<&str>,
        stmt: Option<&Statement>,
        first_plan: Option<Arc<Plan>>,
        params: &[Value],
    ) -> Result<ResultSet> {
        // Explicit transaction: run the statement inside it.  Planning
        // errors (parse/schema/unsupported) write nothing and leave the
        // transaction usable; an execution error may have buffered partial
        // writes, so the whole transaction is aborted (statement-level
        // rollback is not implemented).
        let mut cur = self.current.lock();
        if let Some(txn) = cur.as_ref() {
            let plan = match first_plan {
                Some(p) => p,
                None => self.plan_for(txn, sql_text, stmt, false)?,
            };
            return match yesquel_sql::execute_plan(&self.catalog, txn, &plan, params) {
                Ok(rs) => Ok(rs),
                Err(e) => {
                    if let Some(txn) = cur.take() {
                        txn.abort();
                    }
                    self.catalog.invalidate_all();
                    Err(e)
                }
            };
        }
        drop(cur);

        // Autocommit: one transaction per statement, retried on conflicts
        // (the documented recovery strategy under snapshot isolation).  A
        // failed attempt may have cached schemas from its aborted writes,
        // so the schema cache is dropped before every retry — which bumps
        // the catalog generation, so the retry also replans.
        const MAX_ATTEMPTS: usize = 24;
        let mut last_err = Error::Internal("statement retry limit reached".into());
        for attempt in 0..MAX_ATTEMPTS {
            let txn = self.client.begin();
            let plan = match (&first_plan, attempt) {
                (Some(p), 0) => Ok(Arc::clone(p)),
                _ => self.plan_for(&txn, sql_text, stmt, false),
            };
            let result =
                plan.and_then(|plan| yesquel_sql::execute_plan(&self.catalog, &txn, &plan, params));
            match result {
                Ok(rs) => match txn.commit() {
                    Ok(_) => return Ok(rs),
                    Err(e) if e.is_retryable() => {
                        self.catalog.invalidate_all();
                        last_err = e;
                    }
                    Err(e) => {
                        self.catalog.invalidate_all();
                        return Err(e);
                    }
                },
                Err(e) if e.is_retryable() => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    last_err = e;
                }
                Err(e) => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    return Err(e);
                }
            }
            if attempt > 2 {
                std::thread::sleep(std::time::Duration::from_micros(50 * attempt as u64));
            }
        }
        Err(last_err)
    }
}

/// How an open [`Rows`] iterator produces its rows.
enum RowsState {
    /// Pulling straight out of the operator pipeline, inside an iterator-
    /// owned autocommit transaction.
    Streaming {
        txn: Option<Txn>,
        stream: RowStream,
        finished: bool,
    },
    /// Materialised up front (queries inside an explicit transaction).
    Collected {
        columns: Vec<String>,
        iter: std::vec::IntoIter<Vec<Value>>,
    },
}

/// A pulling result iterator returned by [`Session::query`]: rows stream
/// one at a time out of the executor's operator stack, so abandoning the
/// iterator early leaves unvisited rows unread (a `LIMIT`-less query you
/// stop consuming costs only what you consumed).
///
/// Yields `Result<Vec<Value>>`; the first error ends the stream.  When the
/// stream is drained the owned read-only transaction commits (a local
/// no-op that cannot conflict); dropping the iterator mid-stream simply
/// drops the transaction (client-buffered, no server-side state).
pub struct Rows {
    catalog: Arc<Catalog>,
    params: Vec<Value>,
    state: RowsState,
}

impl Rows {
    /// Column headers of the result.
    pub fn columns(&self) -> &[String] {
        match &self.state {
            RowsState::Streaming { stream, .. } => stream.columns(),
            RowsState::Collected { columns, .. } => columns,
        }
    }

    /// Drains the remaining rows into a [`ResultSet`] (the collect-all
    /// convenience the executor's `ResultSet` path is itself built on).
    pub fn into_result_set(mut self) -> Result<ResultSet> {
        let columns = self.columns().to_vec();
        let mut rows = Vec::new();
        for row in &mut self {
            rows.push(row?);
        }
        Ok(ResultSet {
            columns,
            rows,
            rows_affected: 0,
            last_rowid: None,
        })
    }
}

impl Iterator for Rows {
    type Item = Result<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            RowsState::Collected { iter, .. } => iter.next().map(Ok),
            RowsState::Streaming {
                txn,
                stream,
                finished,
            } => {
                if *finished {
                    return None;
                }
                let cx = ExecCtx {
                    catalog: &self.catalog,
                    txn: txn.as_ref().expect("transaction lives until finish"),
                    params: &self.params,
                };
                match stream.next_row(&cx) {
                    Ok(Some(row)) => Some(Ok(row)),
                    Ok(None) => {
                        *finished = true;
                        if let Some(t) = txn.take() {
                            if let Err(e) = t.commit() {
                                return Some(Err(e));
                            }
                        }
                        None
                    }
                    Err(e) => {
                        *finished = true;
                        if let Some(t) = txn.take() {
                            t.abort();
                        }
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

/// A whole Yesquel deployment plus one client-side DBT engine and a default
/// SQL session — the shape an embedding application uses: open, `execute`
/// SQL, or drop down to trees and raw transactions.
pub struct Yesquel {
    db: KvDatabase,
    engine: Arc<DbtEngine>,
    session: Session,
}

impl Yesquel {
    /// Opens an in-process deployment with `num_servers` storage servers and
    /// default configuration.
    pub fn open(num_servers: usize) -> Self {
        Self::open_with(YesquelConfig::with_servers(num_servers))
    }

    /// Opens a deployment from an explicit configuration.
    pub fn open_with(config: YesquelConfig) -> Self {
        let dbt_cfg = config.dbt.clone();
        let db = KvDatabase::new(config);
        let engine = DbtEngine::new(db.client(), dbt_cfg);
        let session = Session::new(Arc::clone(&engine)).expect("catalog bootstrap cannot fail");
        Yesquel {
            db,
            engine,
            session,
        }
    }

    /// The key-value deployment.
    pub fn db(&self) -> &KvDatabase {
        &self.db
    }

    /// This client's DBT engine (cache, splitter, allocator).
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// The default SQL session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Opens an additional, independent SQL session (its own schema cache
    /// and transaction state) over the same deployment.
    pub fn new_session(&self) -> Result<Session> {
        Session::new(Arc::clone(&self.engine))
    }

    /// Parses and executes one SQL statement on the default session.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        self.session.execute(sql_text, params)
    }

    /// Executes a semicolon-separated SQL script on the default session.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        self.session.execute_script(sql_text)
    }

    /// Opens a SELECT as a pulling [`Rows`] iterator on the default session.
    pub fn query(&self, sql_text: &str, params: &[Value]) -> Result<Rows> {
        self.session.query(sql_text, params)
    }

    /// Starts a key-value transaction.
    pub fn begin(&self) -> Txn {
        self.db.client().begin()
    }

    /// Creates a tree (table/index) and returns a handle to it.
    pub fn create_tree(&self, tree: u64) -> Result<Dbt> {
        self.engine.create_tree(tree)?;
        Ok(self.engine.tree(tree))
    }

    /// Opens a handle to an existing tree.
    pub fn tree(&self, tree: u64) -> Dbt {
        self.engine.tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_create_put_get() {
        let y = Yesquel::open(3);
        let t = y.create_tree(1).unwrap();
        let txn = y.begin();
        t.insert(&txn, b"k", b"v").unwrap();
        assert_eq!(t.lookup(&txn, b"k").unwrap().as_deref(), Some(&b"v"[..]));
        txn.commit().unwrap();
    }

    #[test]
    fn execute_sql_end_to_end() {
        let y = Yesquel::open(3);
        y.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let ins = y
            .execute(
                "INSERT INTO kv (v) VALUES (?), (?)",
                &["a".into(), "b".into()],
            )
            .unwrap();
        assert_eq!(ins.rows_affected, 2);
        assert_eq!(ins.last_rowid, Some(2));
        let rs = y
            .execute("SELECT v FROM kv WHERE id = ?", &[Value::Int(2)])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("b".into())]]);
    }

    #[test]
    fn explicit_transactions_roll_back() {
        let y = Yesquel::open(2);
        y.execute("CREATE TABLE t (a INT)", &[]).unwrap();
        y.execute_script("BEGIN; INSERT INTO t VALUES (1); ROLLBACK")
            .unwrap();
        assert!(y.execute("SELECT * FROM t", &[]).unwrap().rows.is_empty());
        y.execute_script("BEGIN; INSERT INTO t VALUES (2); COMMIT")
            .unwrap();
        assert_eq!(y.execute("SELECT * FROM t", &[]).unwrap().rows.len(), 1);
        assert!(!y.session().in_transaction());
    }
}
