//! Top-level facade of the Yesquel reproduction.
//!
//! Re-exports the public surface of every layer so applications (and the
//! workspace's integration tests and examples) can depend on one crate:
//!
//! * [`KvDatabase`] / [`KvClient`] — the transactional key-value deployment;
//! * [`DbtEngine`] / [`Dbt`] — the distributed balanced tree;
//! * [`sql`] — the SQL front end (parser, catalog, planner, executor);
//! * [`baselines`] — single-node comparison stores.
//!
//! The application-facing shape is the prepared-statement API: a
//! [`Session`] [`prepare`]s a statement once — parsed, bound against the
//! catalog, the plan pinned in the returned [`Prepared`] handle — and then
//! re-executes it with fresh parameters millions of times, paying zero
//! parse and zero plan work per call.  Parameters bind positionally (`?`,
//! `?NNN`) or by name (`:name`) through the [`params!`] macro and
//! [`Prepared::execute_named`]; results come back as typed [`Row`]s
//! (`row.get::<i64>("views")?`).  [`Yesquel::execute`] remains the ad-hoc
//! entry point — SQL text in, [`ResultSet`] out, through a per-session
//! statement cache — built on the same machinery.
//!
//! [`prepare`]: Session::prepare

pub use yesquel_baselines as baselines;
pub use yesquel_common as common;
pub use yesquel_kv as kv;
pub use yesquel_rpc as rpc;
pub use yesquel_sql as sql;
pub use yesquel_wal as wal;
pub use yesquel_ydbt as ydbt;

pub use yesquel_common::{DbtConfig, Error, KvConfig, NetConfig, ObjectId, Result, YesquelConfig};
pub use yesquel_kv::{KvClient, KvDatabase, Txn};
pub use yesquel_sql::{params, FromValue, ParamInfo, ResultSet, Row, ToValue, Value};
pub use yesquel_ydbt::{Dbt, DbtEngine};

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_sql::ast::Statement;
use yesquel_sql::{Catalog, ExecCtx, Plan, RowStream};

/// Capacity of the per-session statement cache (parsed + planned statements
/// keyed by SQL text).  Web workloads repeat a small set of statement
/// shapes, so a small LRU captures nearly all of the parse/plan cost.
const STMT_CACHE_CAP: usize = 128;

/// One cached statement: its plan, its parameter table, and the catalog
/// generation it was planned under (a generation mismatch — any DDL or
/// schema-cache invalidation — forces a replan).
struct CachedStmt {
    plan: Arc<Plan>,
    info: Arc<ParamInfo>,
    generation: u64,
    last_used: u64,
}

/// The per-session LRU of planned statements.
#[derive(Default)]
struct StmtCache {
    map: HashMap<String, CachedStmt>,
    tick: u64,
    /// Catalog generation the cache was last swept against; when the
    /// catalog moves past it, every resident entry is dead and gets evicted
    /// in one pass on the next probe.
    generation: u64,
}

/// One SQL connection: the catalog (schema cache), the statement cache, and
/// the explicit transaction opened by `BEGIN`, if any.
///
/// Outside an explicit transaction every statement autocommits: it runs in
/// its own snapshot-isolated transaction, retried on write-write conflicts.
/// Inside `BEGIN`…`COMMIT` all statements share one transaction and a
/// commit-time conflict surfaces as [`Error::Conflict`] from `COMMIT`.
pub struct Session {
    client: KvClient,
    catalog: Arc<Catalog>,
    current: Mutex<Option<Txn>>,
    stmt_cache: Mutex<StmtCache>,
}

impl Session {
    /// Opens a session over a client-side DBT engine (bootstrapping the
    /// catalog tree on first use of the deployment).
    pub fn new(engine: Arc<DbtEngine>) -> Result<Session> {
        let client = engine.kv().clone();
        let catalog = Arc::new(Catalog::open(engine)?);
        Ok(Session {
            client,
            catalog,
            current: Mutex::new(None),
            stmt_cache: Mutex::new(StmtCache::default()),
        })
    }

    /// The session's catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// True while an explicit transaction (`BEGIN`) is open.
    pub fn in_transaction(&self) -> bool {
        self.current.lock().is_some()
    }

    /// Number of statements resident in the statement cache (diagnostics).
    pub fn stmt_cache_len(&self) -> usize {
        self.stmt_cache.lock().map.len()
    }

    /// Prepares one statement for repeated execution: parses it, resolves
    /// its placeholders into a [`ParamInfo`] table, plans it against the
    /// catalog, and returns a [`Prepared`] handle that owns the plan.
    ///
    /// Re-executing the handle performs **zero** parse and **zero** plan
    /// work — no statement-cache text hash either; the plan is reached
    /// through the handle.  The pinned plan is revalidated against the
    /// catalog generation on every use, so DDL (here or on another session
    /// path that invalidates the schema cache) forces a replan from the
    /// retained AST, never a reparse.
    ///
    /// Transaction control (`BEGIN`/`COMMIT`/`ROLLBACK`) cannot be
    /// prepared; bind-time errors (arity, unknown names) surface as
    /// [`Error::Bind`] from the handle's execute/query calls.
    pub fn prepare(&self, sql_text: &str) -> Result<Prepared<'_>> {
        self.catalog.counters().parses.inc();
        let (stmt, info) = yesquel_sql::parse_with_params(sql_text)?;
        if matches!(
            stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Err(Error::InvalidArgument(
                "transaction control statements cannot be prepared".into(),
            ));
        }
        let (plan, generation) = self.replan(&stmt)?;
        Ok(Prepared {
            session: self,
            sql: sql_text.to_string(),
            stmt,
            info: Arc::new(info),
            state: Mutex::new((plan, generation)),
        })
    }

    /// Plans `stmt` inside the session's current transaction (or a
    /// throwaway read-only one), returning the plan and the catalog
    /// generation captured *before* planning — if a concurrent invalidation
    /// moves the generation mid-plan, the pin is already stale and the next
    /// use replans.
    fn replan(&self, stmt: &Statement) -> Result<(Arc<Plan>, u64)> {
        {
            let cur = self.current.lock();
            if let Some(txn) = cur.as_ref() {
                let generation = self.catalog.generation();
                let plan = Arc::new(yesquel_sql::plan_statement(&self.catalog, txn, stmt)?);
                return Ok((plan, generation));
            }
        }
        let txn = self.client.begin();
        let generation = self.catalog.generation();
        match yesquel_sql::plan_statement(&self.catalog, &txn, stmt) {
            Ok(plan) => {
                txn.commit()?;
                Ok((Arc::new(plan), generation))
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }

    /// Parses and executes one statement.
    ///
    /// Statements are planned through the session's statement cache: the
    /// second execution of the same SQL text skips both the parse and the
    /// plan (parameters still bind per execution, with bind-time arity
    /// checking).  Cached plans are keyed by the catalog generation and
    /// replanned after any DDL or schema-cache invalidation.  For a hot
    /// statement, [`Session::prepare`] skips the text hash too.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        if let Some((plan, info)) = self.cached_plan(sql_text) {
            // Transaction-control statements are never cached, so a hit
            // means a plain planned statement.
            if !matches!(&*plan, Plan::Explain(_)) {
                info.check_arity(params.len())?;
            }
            return self.execute_planned(Some(sql_text), None, None, Some(plan), params);
        }
        self.catalog.counters().parses.inc();
        let (stmt, info) = yesquel_sql::parse_with_params(sql_text)?;
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                self.execute_statement(&stmt, params)
            }
            other => {
                // EXPLAIN describes the plan without evaluating parameters,
                // so unbound placeholders are fine there.
                if !matches!(other, Statement::Explain(_)) {
                    info.check_arity(params.len())?;
                }
                self.execute_planned(
                    Some(sql_text),
                    Some(&other),
                    Some(Arc::new(info)),
                    None,
                    params,
                )
            }
        }
    }

    /// Opens a statement as a pulling [`Rows`] iterator instead of
    /// materialising a [`ResultSet`].
    ///
    /// Only query statements (SELECT, EXPLAIN) can stream.  In autocommit
    /// mode the iterator owns its read-only transaction and commits it when
    /// the stream is drained (or abandons it on drop — read-only
    /// transactions hold no server-side state).  Inside an explicit
    /// transaction the result is materialised eagerly (the session's
    /// transaction must stay available to subsequent statements) and the
    /// iterator merely replays it.
    pub fn query(&self, sql_text: &str, params: &[Value]) -> Result<Rows> {
        if let Some((plan, info)) = self.cached_plan(sql_text) {
            if !matches!(&*plan, Plan::Explain(_)) {
                info.check_arity(params.len())?;
            }
            return self.query_planned(Some(sql_text), None, None, Some(plan), params);
        }
        self.catalog.counters().parses.inc();
        let (stmt, info) = yesquel_sql::parse_with_params(sql_text)?;
        if matches!(
            stmt,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Err(Error::InvalidArgument(
                "query() streams SELECT/EXPLAIN statements; use execute() for transaction control"
                    .into(),
            ));
        }
        if !matches!(stmt, Statement::Explain(_)) {
            info.check_arity(params.len())?;
        }
        self.query_planned(
            Some(sql_text),
            Some(&stmt),
            Some(Arc::new(info)),
            None,
            params,
        )
    }

    /// Rejects non-query plans handed to [`Session::query`].
    fn require_query_plan(plan: &Plan) -> Result<()> {
        if matches!(
            plan,
            Plan::Select(_) | Plan::ConstSelect(_) | Plan::Explain(_) | Plan::ExplainAnalyze(_)
        ) {
            Ok(())
        } else {
            Err(Error::InvalidArgument(
                "query() streams SELECT/EXPLAIN statements; use execute() for DML/DDL".into(),
            ))
        }
    }

    /// Opens a query from whatever the caller already has — a cached or
    /// pinned plan (`first_plan`), a parsed statement, or SQL text — as a
    /// [`Rows`] iterator.  The shared tail of [`Session::query`] and
    /// [`Prepared::query`].
    fn query_planned(
        &self,
        sql_text: Option<&str>,
        stmt: Option<&Statement>,
        info: Option<Arc<ParamInfo>>,
        first_plan: Option<Arc<Plan>>,
        params: &[Value],
    ) -> Result<Rows> {
        // Sampled trace covering open + the eager (explicit-transaction)
        // execution; the streaming autocommit path finishes the trace when
        // the open returns, charging the per-row pulls to the caller's
        // iteration (which has no statement-shaped scope to trace).
        let _trace = self
            .catalog
            .engine()
            .stats()
            .obs()
            .maybe_trace(|| "sql.query".to_string());
        {
            let mut cur = self.current.lock();
            if cur.is_some() {
                let plan = match &first_plan {
                    Some(p) => Arc::clone(p),
                    None => {
                        let txn = cur.as_ref().expect("checked above");
                        self.plan_for(txn, sql_text, stmt, info)?
                    }
                };
                Self::require_query_plan(&plan)?;
                let txn = cur.as_ref().expect("checked above");
                // Same failure policy as execute(): an execution error may
                // have buffered partial state, so the transaction aborts.
                let rs = match yesquel_sql::execute_plan(&self.catalog, txn, &plan, params) {
                    Ok(rs) => rs,
                    Err(e) => {
                        if let Some(txn) = cur.take() {
                            txn.abort();
                        }
                        self.catalog.invalidate_all();
                        return Err(e);
                    }
                };
                return Ok(Rows {
                    catalog: Arc::clone(&self.catalog),
                    params: params.to_vec(),
                    header: Arc::from(rs.columns),
                    state: RowsState::Collected {
                        iter: rs.rows.into_iter(),
                    },
                });
            }
        }
        let txn = self.client.begin();
        let plan = match first_plan {
            Some(p) => p,
            None => match self.plan_for(&txn, sql_text, stmt, info) {
                Ok(p) => p,
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            },
        };
        if let Err(e) = Self::require_query_plan(&plan) {
            txn.abort();
            return Err(e);
        }
        let stream = match yesquel_sql::open_stream(&self.catalog, &txn, &plan, params) {
            Ok(s) => s,
            Err(e) => {
                txn.abort();
                return Err(e);
            }
        };
        Ok(Rows {
            catalog: Arc::clone(&self.catalog),
            params: params.to_vec(),
            header: Arc::from(stream.columns().to_vec()),
            state: RowsState::Streaming {
                txn: Some(txn),
                stream,
                finished: false,
            },
        })
    }

    /// Looks `sql` up in the statement cache, counting the hit or miss; a
    /// hit requires the catalog generation the plan was built under to
    /// still be current.  When the catalog has moved since the last probe,
    /// every resident entry planned under the old generation is dead and is
    /// evicted in one sweep (counted in `sql.stmt_cache_evictions`) instead
    /// of lingering until individually re-probed.  Callers that miss go on
    /// to plan fresh (and must not probe again on the same call chain).
    fn cached_plan(&self, sql: &str) -> Option<(Arc<Plan>, Arc<ParamInfo>)> {
        let generation = self.catalog.generation();
        let counters = self.catalog.counters();
        let mut cache = self.stmt_cache.lock();
        if cache.generation != generation {
            let before = cache.map.len();
            cache.map.retain(|_, e| e.generation == generation);
            let evicted = (before - cache.map.len()) as u64;
            if evicted > 0 {
                counters.stmt_cache_evictions.add(evicted);
            }
            cache.generation = generation;
        }
        cache.tick += 1;
        let tick = cache.tick;
        let hit = match cache.map.get_mut(sql) {
            Some(e) if e.generation == generation => {
                e.last_used = tick;
                Some((Arc::clone(&e.plan), Arc::clone(&e.info)))
            }
            // An entry that raced an invalidation while being planned can
            // still carry an older generation than the swept cache: evict
            // it on the spot.
            Some(_) => {
                cache.map.remove(sql);
                counters.stmt_cache_evictions.inc();
                None
            }
            None => None,
        };
        drop(cache);
        if hit.is_some() {
            counters.stmt_cache_hits.inc();
        } else {
            counters.stmt_cache_misses.inc();
        }
        hit
    }

    /// Caches a freshly built plan (planned statements only — DDL mutates
    /// the schema it would be keyed under, and transaction control never
    /// reaches the planner).
    fn cache_plan(&self, sql: &str, plan: &Arc<Plan>, info: Arc<ParamInfo>, generation: u64) {
        if !matches!(
            &**plan,
            Plan::Select(_)
                | Plan::ConstSelect(_)
                | Plan::Insert(_)
                | Plan::Update(_)
                | Plan::Delete(_)
                | Plan::Explain(_)
                | Plan::ExplainAnalyze(_)
        ) {
            return;
        }
        let mut cache = self.stmt_cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        cache.map.insert(
            sql.to_string(),
            CachedStmt {
                plan: Arc::clone(plan),
                info,
                generation,
                last_used: tick,
            },
        );
        if cache.map.len() > STMT_CACHE_CAP {
            if let Some(evict) = cache
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                cache.map.remove(&evict);
                self.catalog.counters().stmt_cache_evictions.inc();
            }
        }
    }

    /// Produces the plan for one statement: parses `sql_text` if no parsed
    /// statement was supplied, plans inside `txn`, and populates the cache
    /// on the way out (when the text — and hence a cache key — is known).
    /// Callers probe the cache themselves before getting here.
    fn plan_for(
        &self,
        txn: &Txn,
        sql_text: Option<&str>,
        stmt: Option<&Statement>,
        info: Option<Arc<ParamInfo>>,
    ) -> Result<Arc<Plan>> {
        let parsed;
        let (stmt, info) = match stmt {
            Some(s) => (s, info),
            None => {
                let text = sql_text.expect("plan_for needs text or statement");
                self.catalog.counters().parses.inc();
                let (s, i) = yesquel_sql::parse_with_params(text)?;
                parsed = s;
                (&parsed, Some(Arc::new(i)))
            }
        };
        // Captured before planning: if a concurrent invalidation bumps the
        // generation mid-plan, the cached entry is already stale and the
        // next lookup replans.
        let generation = self.catalog.generation();
        let plan = Arc::new(yesquel_sql::plan_statement(&self.catalog, txn, stmt)?);
        if let (Some(text), Some(info)) = (sql_text, info) {
            self.cache_plan(text, &plan, info, generation);
        }
        Ok(plan)
    }

    /// Executes every statement of a semicolon-separated script, returning
    /// the result of each.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        let stmts = yesquel_sql::parse_script(sql_text)?;
        self.catalog.counters().parses.add(stmts.len() as u64);
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt, &[])?);
        }
        Ok(out)
    }

    /// Executes one parsed statement.
    pub fn execute_statement(&self, stmt: &Statement, params: &[Value]) -> Result<ResultSet> {
        match stmt {
            Statement::Begin => {
                let mut cur = self.current.lock();
                if cur.is_some() {
                    return Err(Error::InvalidArgument(
                        "cannot BEGIN: a transaction is already open".into(),
                    ));
                }
                *cur = Some(self.client.begin());
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot COMMIT: no open transaction".into())
                })?;
                match txn.commit() {
                    Ok(_) => Ok(ResultSet::default()),
                    Err(e) => {
                        // The transaction is gone; any DDL it performed must
                        // not survive in the schema cache.
                        self.catalog.invalidate_all();
                        Err(e)
                    }
                }
            }
            Statement::Rollback => {
                let txn = self.current.lock().take().ok_or_else(|| {
                    Error::InvalidArgument("cannot ROLLBACK: no open transaction".into())
                })?;
                txn.abort();
                self.catalog.invalidate_all();
                Ok(ResultSet::default())
            }
            other => self.execute_planned(None, Some(other), None, None, params),
        }
    }

    /// Plans (through the cache, when the SQL text is available) and
    /// executes one non-transaction-control statement.  `first_plan` is a
    /// plan the caller already holds — a cache hit or a prepared pin — used
    /// for the first attempt; retries always replan (the conflict handler
    /// invalidates the schema cache, which also stales the statement cache).
    fn execute_planned(
        &self,
        sql_text: Option<&str>,
        stmt: Option<&Statement>,
        info: Option<Arc<ParamInfo>>,
        first_plan: Option<Arc<Plan>>,
        params: &[Value],
    ) -> Result<ResultSet> {
        // Sampled op-scoped trace (1-in-N; one relaxed load when off).  The
        // guard spans the whole statement, so span timings and trace
        // counters from every layer beneath attribute to it.
        let _trace = self
            .catalog
            .engine()
            .stats()
            .obs()
            .maybe_trace(|| "sql.execute".to_string());
        // Explicit transaction: run the statement inside it.  Planning
        // errors (parse/schema/unsupported) write nothing and leave the
        // transaction usable; an execution error may have buffered partial
        // writes, so the whole transaction is aborted (statement-level
        // rollback is not implemented).
        let mut cur = self.current.lock();
        if let Some(txn) = cur.as_ref() {
            let plan = match first_plan {
                Some(p) => p,
                None => self.plan_for(txn, sql_text, stmt, info)?,
            };
            return match yesquel_sql::execute_plan(&self.catalog, txn, &plan, params) {
                Ok(rs) => Ok(rs),
                Err(e) => {
                    if let Some(txn) = cur.take() {
                        txn.abort();
                    }
                    self.catalog.invalidate_all();
                    Err(e)
                }
            };
        }
        drop(cur);

        // Autocommit: one transaction per statement, retried on conflicts
        // and availability failures (RPC timeout, server temporarily down)
        // — the documented recovery strategy under snapshot isolation with
        // an unreliable network.  A failed attempt may have cached schemas
        // from its aborted writes, so the schema cache is dropped before
        // every retry — which bumps the catalog generation, so the retry
        // also replans.
        const MAX_ATTEMPTS: usize = 24;
        let cfg = self.client.config().clone();
        let mut last_err = None;
        for attempt in 0..MAX_ATTEMPTS {
            let txn = self.client.begin();
            let plan = match (&first_plan, attempt) {
                (Some(p), 0) => Ok(Arc::clone(p)),
                _ => self.plan_for(&txn, sql_text, stmt, info.clone()),
            };
            let result =
                plan.and_then(|plan| yesquel_sql::execute_plan(&self.catalog, &txn, &plan, params));
            match result {
                Ok(rs) => match txn.commit() {
                    Ok(_) => return Ok(rs),
                    Err(e) if e.is_retryable() => {
                        self.catalog.invalidate_all();
                        last_err = Some(e);
                    }
                    Err(e) => {
                        self.catalog.invalidate_all();
                        return Err(e);
                    }
                },
                Err(e) if e.is_retryable() => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    last_err = Some(e);
                }
                Err(e) => {
                    txn.abort();
                    self.catalog.invalidate_all();
                    return Err(e);
                }
            }
            // Conflicts back off only once retries repeat (the first two
            // immediate retries usually win); availability failures back
            // off from the first retry to let the server recover.
            let availability = last_err.as_ref().is_some_and(Error::is_availability);
            if availability || attempt > 2 {
                yesquel_common::timeutil::sleep_backoff(
                    attempt,
                    cfg.rpc_backoff_us.max(50),
                    cfg.rpc_backoff_cap_us,
                    0x5a1_u64 ^ attempt as u64,
                );
            }
        }
        // Exhausted.  Availability failures degrade to a clean "service
        // unavailable" the application can act on; everything else keeps
        // the full retry context.
        let last = last_err.expect("exhaustion implies a retryable error occurred");
        if last.is_availability() {
            Err(Error::Unavailable(format!(
                "statement gave up after {MAX_ATTEMPTS} attempts: {last}"
            )))
        } else {
            Err(Error::RetriesExhausted {
                attempts: MAX_ATTEMPTS,
                last: Box::new(last),
            })
        }
    }
}

/// A prepared statement: the parsed AST, its parameter table, and the
/// pinned [`Plan`], owned by the handle and re-executable with fresh
/// parameters.
///
/// The handle holds its plan directly — re-execution performs **zero**
/// parse and **zero** plan work, and never re-hashes the SQL text through
/// the session's statement cache.  Before every use the pin is revalidated
/// against the catalog generation: DDL or a schema-cache invalidation makes
/// it stale, and the next call replans from the retained AST (still zero
/// parse) and re-pins.
///
/// Binding is checked before execution: a positional arity mismatch or an
/// unknown `:name` is an [`Error::Bind`], not a runtime expression error
/// deep in the scan.
pub struct Prepared<'s> {
    session: &'s Session,
    sql: String,
    stmt: Statement,
    info: Arc<ParamInfo>,
    /// The pinned plan and the catalog generation it was planned under.
    state: Mutex<(Arc<Plan>, u64)>,
}

impl std::fmt::Debug for Prepared<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("sql", &self.sql)
            .field("params", &self.info.len())
            .finish_non_exhaustive()
    }
}

impl Prepared<'_> {
    /// The SQL text the statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The statement's parameter table.
    pub fn param_info(&self) -> &ParamInfo {
        &self.info
    }

    /// Number of parameters the statement takes.
    pub fn param_count(&self) -> usize {
        self.info.len()
    }

    /// The planner's one-line description of the currently pinned plan
    /// (what `EXPLAIN` would print), revalidating first — after a
    /// `CREATE INDEX` this reflects the replanned access path.
    pub fn describe(&self) -> Result<String> {
        Ok(self.current_plan()?.describe())
    }

    /// The pinned plan if still current, else a fresh replan from the
    /// retained AST (no parse), re-pinned for the next call.
    fn current_plan(&self) -> Result<Arc<Plan>> {
        let generation = self.session.catalog.generation();
        {
            let state = self.state.lock();
            if state.1 == generation {
                return Ok(Arc::clone(&state.0));
            }
        }
        let (plan, generation) = self.session.replan(&self.stmt)?;
        *self.state.lock() = (Arc::clone(&plan), generation);
        Ok(plan)
    }

    /// Checks positional arity (EXPLAIN statements are exempt — they
    /// describe the plan without evaluating parameters).
    fn check_arity(&self, supplied: usize) -> Result<()> {
        if matches!(self.stmt, Statement::Explain(_)) {
            Ok(())
        } else {
            self.info.check_arity(supplied)
        }
    }

    /// Resolves named pairs into the positional array.  The EXPLAIN
    /// exemption matches [`Prepared::check_arity`]: unknown names and
    /// double binds still error (they are mistakes), but unbound slots are
    /// filled with NULL because EXPLAIN never evaluates them.
    fn bind_named(&self, pairs: &[(&str, Value)]) -> Result<Vec<Value>> {
        if matches!(self.stmt, Statement::Explain(_)) {
            self.info.bind_named_lenient(pairs)
        } else {
            self.info.bind_named(pairs)
        }
    }

    /// Executes the statement with positional parameters (see [`params!`]),
    /// checking arity at bind time.
    pub fn execute(&self, params: &[Value]) -> Result<ResultSet> {
        self.check_arity(params.len())?;
        let plan = self.current_plan()?;
        self.session
            .execute_planned(None, Some(&self.stmt), None, Some(plan), params)
    }

    /// Executes the statement with named parameters:
    /// `prep.execute_named(&[(":title", title.into())])?`.  Every pair must
    /// match a `:name` placeholder and every placeholder must be bound.
    pub fn execute_named(&self, params: &[(&str, Value)]) -> Result<ResultSet> {
        let values = self.bind_named(params)?;
        let plan = self.current_plan()?;
        self.session
            .execute_planned(None, Some(&self.stmt), None, Some(plan), &values)
    }

    /// Opens the statement (SELECT/EXPLAIN) as a pulling [`Rows`] iterator
    /// of typed [`Row`]s.
    pub fn query(&self, params: &[Value]) -> Result<Rows> {
        self.check_arity(params.len())?;
        let plan = self.current_plan()?;
        self.session
            .query_planned(None, Some(&self.stmt), None, Some(plan), params)
    }

    /// [`Prepared::query`] with named parameters.
    pub fn query_named(&self, params: &[(&str, Value)]) -> Result<Rows> {
        let values = self.bind_named(params)?;
        let plan = self.current_plan()?;
        self.session
            .query_planned(None, Some(&self.stmt), None, Some(plan), &values)
    }

    /// Runs the query and maps every [`Row`] through `f`:
    ///
    /// ```ignore
    /// let titles: Vec<(String, i64)> =
    ///     top.query_map(params![10], |r| Ok((r.get("title")?, r.get("views")?)))?;
    /// ```
    pub fn query_map<T>(
        &self,
        params: &[Value],
        mut f: impl FnMut(&Row) -> Result<T>,
    ) -> Result<Vec<T>> {
        let rows = self.query(params)?;
        let mut out = Vec::new();
        for row in rows {
            out.push(f(&row?)?);
        }
        Ok(out)
    }
}

/// How an open [`Rows`] iterator produces its rows.
enum RowsState {
    /// Pulling straight out of the operator pipeline, inside an iterator-
    /// owned autocommit transaction.
    Streaming {
        txn: Option<Txn>,
        stream: RowStream,
        finished: bool,
    },
    /// Materialised up front (queries inside an explicit transaction).
    Collected {
        iter: std::vec::IntoIter<Vec<Value>>,
    },
}

/// A pulling result iterator returned by [`Session::query`] and
/// [`Prepared::query`]: rows stream one at a time out of the executor's
/// operator stack, so abandoning the iterator early leaves unvisited rows
/// unread (a `LIMIT`-less query you stop consuming costs only what you
/// consumed).
///
/// Yields `Result<Row>` — typed rows sharing one `Arc` column header, so
/// each item costs its values plus a reference-count bump.  The first error
/// ends the stream.  When the stream is drained the owned read-only
/// transaction commits (a local no-op that cannot conflict); dropping the
/// iterator mid-stream simply drops the transaction (client-buffered, no
/// server-side state).
pub struct Rows {
    catalog: Arc<Catalog>,
    params: Vec<Value>,
    header: Arc<[String]>,
    state: RowsState,
}

impl std::fmt::Debug for Rows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rows")
            .field("columns", &self.header)
            .finish_non_exhaustive()
    }
}

impl Rows {
    /// Column headers of the result.
    pub fn columns(&self) -> &[String] {
        &self.header
    }

    /// Drains the remaining rows into a [`ResultSet`] (the collect-all
    /// convenience the executor's `ResultSet` path is itself built on).
    pub fn into_result_set(mut self) -> Result<ResultSet> {
        let columns = self.header.to_vec();
        let mut rows = Vec::new();
        for row in &mut self {
            rows.push(row?.into_values());
        }
        Ok(ResultSet {
            columns,
            rows,
            rows_affected: 0,
            last_rowid: None,
        })
    }
}

impl Iterator for Rows {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.state {
            RowsState::Collected { iter } => iter
                .next()
                .map(|v| Ok(Row::new(Arc::clone(&self.header), v))),
            RowsState::Streaming {
                txn,
                stream,
                finished,
            } => {
                if *finished {
                    return None;
                }
                let cx = ExecCtx {
                    catalog: &self.catalog,
                    txn: txn.as_ref().expect("transaction lives until finish"),
                    params: &self.params,
                };
                match stream.next_row(&cx) {
                    Ok(Some(row)) => Some(Ok(Row::new(Arc::clone(&self.header), row))),
                    Ok(None) => {
                        *finished = true;
                        if let Some(t) = txn.take() {
                            if let Err(e) = t.commit() {
                                return Some(Err(e));
                            }
                        }
                        None
                    }
                    Err(e) => {
                        *finished = true;
                        if let Some(t) = txn.take() {
                            t.abort();
                        }
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

/// A whole Yesquel deployment plus one client-side DBT engine and a default
/// SQL session — the shape an embedding application uses: open, `prepare`
/// or `execute` SQL, or drop down to trees and raw transactions.
pub struct Yesquel {
    db: KvDatabase,
    engine: Arc<DbtEngine>,
    session: Session,
}

impl Yesquel {
    /// Opens an in-process deployment with `num_servers` storage servers and
    /// default configuration.
    pub fn open(num_servers: usize) -> Self {
        Self::open_with(YesquelConfig::with_servers(num_servers))
    }

    /// Opens a deployment from an explicit configuration.
    pub fn open_with(config: YesquelConfig) -> Self {
        Self::open_db(KvDatabase::new(config)).expect("catalog bootstrap cannot fail")
    }

    /// Opens the SQL stack over a pre-built key-value deployment.  This is
    /// the entry point for fault-injected deployments: build the database
    /// with [`KvDatabase::with_faults`], then open SQL on top.  Returns an
    /// error if the catalog bootstrap itself fails (possible when faults
    /// are already active during open).
    pub fn open_db(db: KvDatabase) -> Result<Self> {
        let dbt_cfg = db.config().dbt.clone();
        let engine = DbtEngine::new(db.client(), dbt_cfg);
        let session = Session::new(Arc::clone(&engine))?;
        Ok(Yesquel {
            db,
            engine,
            session,
        })
    }

    /// The key-value deployment.
    pub fn db(&self) -> &KvDatabase {
        &self.db
    }

    /// This client's DBT engine (cache, splitter, allocator).
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// The default SQL session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Opens an additional, independent SQL session (its own schema cache
    /// and transaction state) over the same deployment.
    pub fn new_session(&self) -> Result<Session> {
        Session::new(Arc::clone(&self.engine))
    }

    /// Prepares a statement on the default session (see
    /// [`Session::prepare`]).
    pub fn prepare(&self, sql_text: &str) -> Result<Prepared<'_>> {
        self.session.prepare(sql_text)
    }

    /// Parses and executes one SQL statement on the default session.
    pub fn execute(&self, sql_text: &str, params: &[Value]) -> Result<ResultSet> {
        self.session.execute(sql_text, params)
    }

    /// Executes a semicolon-separated SQL script on the default session.
    pub fn execute_script(&self, sql_text: &str) -> Result<Vec<ResultSet>> {
        self.session.execute_script(sql_text)
    }

    /// Opens a SELECT as a pulling [`Rows`] iterator on the default session.
    pub fn query(&self, sql_text: &str, params: &[Value]) -> Result<Rows> {
        self.session.query(sql_text, params)
    }

    /// Starts a key-value transaction.
    pub fn begin(&self) -> Txn {
        self.db.client().begin()
    }

    /// Creates a tree (table/index) and returns a handle to it.
    pub fn create_tree(&self, tree: u64) -> Result<Dbt> {
        self.engine.create_tree(tree)?;
        Ok(self.engine.tree(tree))
    }

    /// Opens a handle to an existing tree.
    pub fn tree(&self, tree: u64) -> Dbt {
        self.engine.tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_create_put_get() {
        let y = Yesquel::open(3);
        let t = y.create_tree(1).unwrap();
        let txn = y.begin();
        t.insert(&txn, b"k", b"v").unwrap();
        assert_eq!(t.lookup(&txn, b"k").unwrap().as_deref(), Some(&b"v"[..]));
        txn.commit().unwrap();
    }

    #[test]
    fn execute_sql_end_to_end() {
        let y = Yesquel::open(3);
        y.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let ins = y
            .execute(
                "INSERT INTO kv (v) VALUES (?), (?)",
                &["a".into(), "b".into()],
            )
            .unwrap();
        assert_eq!(ins.rows_affected, 2);
        assert_eq!(ins.last_rowid, Some(2));
        let rs = y
            .execute("SELECT v FROM kv WHERE id = ?", &[Value::Int(2)])
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("b".into())]]);
    }

    #[test]
    fn prepared_handles_bind_and_rebind() {
        let y = Yesquel::open(2);
        y.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let ins = y.prepare("INSERT INTO kv (v) VALUES (?)").unwrap();
        for word in ["a", "b", "c"] {
            ins.execute(params![word]).unwrap();
        }
        let get = y.prepare("SELECT v FROM kv WHERE id = :id").unwrap();
        let rs = get.execute_named(&[(":id", Value::Int(2))]).unwrap();
        let row = rs.iter().next().unwrap();
        assert_eq!(row.get::<&str>("v").unwrap(), "b");
        // Positional binding works against named slots too.
        let rows: Vec<String> = get.query_map(params![3], |r| r.get::<String>("v")).unwrap();
        assert_eq!(rows, vec!["c".to_string()]);
        // Arity is checked at bind time.
        assert!(matches!(get.execute(params![1, 2]), Err(Error::Bind(_))));
        assert!(matches!(
            get.execute_named(&[(":nope", Value::Null)]),
            Err(Error::Bind(_))
        ));
        // Transaction control cannot be prepared.
        assert!(y.prepare("BEGIN").is_err());
    }

    #[test]
    fn autocommit_degrades_to_unavailable_and_recovers() {
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv = KvConfig::impatient();
        let db = KvDatabase::with_faults(cfg, rpc::TransportKind::Direct, vec![]);
        let y = Yesquel::open_db(db).unwrap();
        y.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        y.execute("INSERT INTO t VALUES (1, 'a')", &[]).unwrap();

        let faults = Arc::clone(y.db().faults().expect("fault-injected deployment"));
        faults.crash(0);
        faults.crash(1);
        match y.execute("SELECT v FROM t WHERE id = 1", &[]) {
            Err(Error::Unavailable(msg)) => {
                assert!(msg.contains("attempts"), "degradation message: {msg}")
            }
            other => panic!("expected clean Unavailable, got {other:?}"),
        }

        // Service resumes transparently once the servers come back.
        faults.restart(0);
        faults.restart(1);
        let rs = y.execute("SELECT v FROM t WHERE id = 1", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("a".into())]]);
    }

    #[test]
    fn autocommit_rides_out_transient_faults() {
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv = KvConfig::impatient();
        // Every server drops ~20% of requests and delays some others; the
        // retry stack must hide all of it from SQL callers.
        let plan = rpc::FaultPlan {
            seed: 7,
            drop_request: 0.15,
            drop_response: 0.05,
            transient_error: 0.05,
            ..rpc::FaultPlan::healthy()
        };
        let db = KvDatabase::with_faults(cfg, rpc::TransportKind::Direct, vec![plan.clone(), plan]);
        let y = Yesquel::open_db(db).unwrap();
        y.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INT)", &[])
            .unwrap();
        let ins = y.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        for i in 0..40i64 {
            ins.execute(params![i, i * 10]).unwrap();
        }
        let rs = y.execute("SELECT COUNT(*), SUM(n) FROM t", &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![
                Value::Int(40),
                Value::Int((0..40).map(|i| i * 10).sum())
            ]]
        );
        assert!(y.db().faults().unwrap().faults_injected() > 0);
    }

    #[test]
    fn explicit_transactions_roll_back() {
        let y = Yesquel::open(2);
        y.execute("CREATE TABLE t (a INT)", &[]).unwrap();
        y.execute_script("BEGIN; INSERT INTO t VALUES (1); ROLLBACK")
            .unwrap();
        assert!(y.execute("SELECT * FROM t", &[]).unwrap().rows.is_empty());
        y.execute_script("BEGIN; INSERT INTO t VALUES (2); COMMIT")
            .unwrap();
        assert_eq!(y.execute("SELECT * FROM t", &[]).unwrap().rows.len(), 1);
        assert!(!y.session().in_transaction());
    }
}
