//! Client-side transactions: snapshot reads, buffered writes, and the
//! two-phase-commit coordinator.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use yesquel_common::obs::clock;
use yesquel_common::obs::trace::{count, span, SpanKind, TraceCounter};
use yesquel_common::stats::{Counter, Histogram, StatsRegistry};
use yesquel_common::timeutil::sleep_backoff;
use yesquel_common::{CommitFanout, Error, KvConfig, ObjectId, Result, ServerId, Timestamp, TxnId};
use yesquel_rpc::Transport;

use crate::fanout::FanoutPool;
use crate::oracle::TimestampOracle;
use crate::protocol::{KvRequest, KvResponse, WriteOp};
use crate::server::KvServer;
use crate::snapshot::SnapshotTracker;

/// Pre-resolved statistics handles for the client's per-operation paths:
/// one registry lookup at client construction instead of a mutex acquisition
/// plus string allocation per call (the same discipline as the tree layer's
/// `HotCounters`).  Error- and retry-path counters stay as name lookups.
pub(crate) struct KvHot {
    pub(crate) txn_started: Arc<Counter>,
    pub(crate) get_rpcs: Arc<Counter>,
    pub(crate) readonly_commits: Arc<Counter>,
    pub(crate) txn_committed: Arc<Counter>,
    pub(crate) txn_conflicts: Arc<Counter>,
    pub(crate) commit_participants: Arc<Counter>,
    pub(crate) commit_1pc: Arc<Counter>,
    pub(crate) commit_2pc: Arc<Counter>,
    /// Commit-phase latencies, recorded only while `Obs::timing_on`:
    /// `prepare` is the whole phase-one round, `decide` the commit-point RPC
    /// at the primary (1PC charges its single round here too), `apply` the
    /// best-effort secondary fan-out.
    pub(crate) commit_prepare_us: Arc<Histogram>,
    pub(crate) commit_decide_us: Arc<Histogram>,
    pub(crate) commit_apply_us: Arc<Histogram>,
}

impl KvHot {
    pub(crate) fn resolve(stats: &StatsRegistry) -> Self {
        KvHot {
            txn_started: stats.counter("kv.txn_started"),
            get_rpcs: stats.counter("kv.get_rpcs"),
            readonly_commits: stats.counter("kv.readonly_commits"),
            txn_committed: stats.counter("kv.txn_committed"),
            txn_conflicts: stats.counter("kv.txn_conflicts"),
            commit_participants: stats.counter("kv.commit_participants"),
            commit_1pc: stats.counter("kv.commit_1pc"),
            commit_2pc: stats.counter("kv.commit_2pc"),
            commit_prepare_us: stats.histogram("kv.commit_prepare_us"),
            commit_decide_us: stats.histogram("kv.commit_decide_us"),
            commit_apply_us: stats.histogram("kv.commit_apply_us"),
        }
    }
}

/// Internals shared by a [`crate::KvClient`] and every transaction it
/// creates.
pub(crate) struct ClientCore {
    pub(crate) transport: Arc<dyn Transport<KvServer>>,
    pub(crate) oracle: TimestampOracle,
    pub(crate) snapshots: SnapshotTracker,
    pub(crate) cfg: KvConfig,
    pub(crate) stats: StatsRegistry,
    pub(crate) hot: KvHot,
    /// Monotone salt for retry-backoff jitter, so concurrent RPCs from one
    /// client spread out while staying deterministic per deployment.
    pub(crate) retry_salt: AtomicU64,
    /// Worker pool for the coordinator's parallel RPC rounds; lazy, so it
    /// costs nothing until the first parallel fan-out.
    pub(crate) fanout: FanoutPool,
}

impl ClientCore {
    pub(crate) fn num_servers(&self) -> usize {
        self.transport.num_servers()
    }

    /// Home server of an object in this deployment.
    pub(crate) fn home(&self, obj: ObjectId) -> ServerId {
        obj.home_server(self.num_servers())
    }

    /// Issues one RPC with a deadline-and-retry policy: availability-class
    /// failures ([`Error::Timeout`], [`Error::Unavailable`]) are retried up
    /// to `max_attempts` times with exponential backoff and jitter; every
    /// other error propagates immediately.
    ///
    /// Retrying is safe for every request in the protocol: reads, GC and
    /// status queries are idempotent, allocation merely skips ids, and
    /// prepare / commit / abort are deduplicated server-side by transaction
    /// id.  On exhaustion, if *any* attempt timed out the returned error is
    /// a `Timeout` (the operation may have been applied — a commit path must
    /// escalate to [`Error::Indeterminate`]); otherwise the operation was
    /// definitely not applied and the last `Unavailable` is returned.
    pub(crate) fn call_retry(
        &self,
        server: ServerId,
        req: KvRequest,
        max_attempts: usize,
    ) -> Result<KvResponse> {
        let _rpc_span = span(SpanKind::Rpc);
        count(TraceCounter::Rpcs, 1);
        let max = max_attempts.max(1);
        let mut salt: Option<u64> = None;
        let mut saw_timeout = false;
        let mut last: Option<Error> = None;
        let mut req = Some(req);
        for attempt in 0..max {
            // The final attempt consumes the request; earlier ones clone it.
            let this_req = if attempt + 1 < max {
                req.clone()
                    .expect("request present until the final attempt")
            } else {
                req.take().expect("request present until the final attempt")
            };
            match self.transport.call(server, this_req) {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_availability() => {
                    if matches!(e, Error::Timeout(_)) {
                        saw_timeout = true;
                        self.stats.counter("rpc.timeouts").inc();
                    }
                    last = Some(e);
                    if attempt + 1 < max {
                        self.stats.counter("rpc.retries").inc();
                        count(TraceCounter::Retries, 1);
                        // Drawn lazily: the fault-free fast path never
                        // touches the shared salt counter.
                        let salt = *salt
                            .get_or_insert_with(|| self.retry_salt.fetch_add(1, Ordering::Relaxed));
                        sleep_backoff(
                            attempt,
                            self.cfg.rpc_backoff_us,
                            self.cfg.rpc_backoff_cap_us,
                            salt,
                        );
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let last = last.expect("loop ran at least once and only exits retryably");
        if saw_timeout && !matches!(last, Error::Timeout(_)) {
            // An earlier attempt may have been applied even though the final
            // one failed differently; report the in-doubt flavour.
            Err(Error::Timeout(format!(
                "server {server}: {last} (an earlier attempt timed out)"
            )))
        } else {
            Err(last)
        }
    }

    /// Whether a coordinator round over `participants` servers should fan
    /// out concurrently: the configuration decides, with `Auto` delegating
    /// to the transport's own judgement of whether independent calls
    /// actually overlap (see [`yesquel_rpc::Transport::fanout_profitable`]).
    pub(crate) fn parallel_fanout(&self, participants: usize) -> bool {
        participants > 1
            && match self.cfg.commit_fanout {
                CommitFanout::Serial => false,
                CommitFanout::Parallel => true,
                CommitFanout::Auto => self.transport.fanout_profitable(),
            }
    }
}

/// Issues one `(server, request)` RPC per entry concurrently: all but the
/// last are handed to the fan-out pool, the last runs on the calling thread
/// (so a round never needs more worker threads than it has peers), and the
/// call returns once every result is in, sorted by server id.
///
/// If a pool worker dies mid-round (a panic in the transport stack) its
/// entry is simply missing from the result; callers that need every
/// participant accounted for must check the length.
pub(crate) fn fanout_calls(
    core: &Arc<ClientCore>,
    reqs: Vec<(ServerId, KvRequest)>,
    max_attempts: usize,
) -> Vec<(ServerId, Result<KvResponse>)> {
    let n = reqs.len();
    let (tx, rx) = bounded::<(ServerId, Result<KvResponse>)>(n);
    let mut reqs = reqs.into_iter();
    let Some((last_server, last_req)) = reqs.next_back() else {
        return Vec::new();
    };
    for (server, req) in reqs {
        let job_core = Arc::clone(core);
        let tx = tx.clone();
        core.fanout.submit(Box::new(move || {
            let resp = job_core.call_retry(server, req, max_attempts);
            let _ = tx.send((server, resp));
        }));
    }
    drop(tx);
    let mut out = Vec::with_capacity(n);
    out.push((
        last_server,
        core.call_retry(last_server, last_req, max_attempts),
    ));
    while let Ok(pair) = rx.recv() {
        out.push(pair);
    }
    out.sort_by_key(|(s, _)| *s);
    out
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Still accepting reads and writes.
    Active,
    /// Successfully committed.
    Committed,
    /// Aborted (explicitly, or after a failed commit).
    Aborted,
}

/// A transaction with snapshot-isolation semantics.
///
/// Reads observe the snapshot defined by the start timestamp plus the
/// transaction's own buffered writes; writes are buffered locally and sent
/// to the storage servers only at commit.
///
/// All access methods take `&self`: the write buffer is internally
/// synchronized so that the layers above (tree cursors, SQL operators) can
/// hold several references to the same transaction.  A `Txn` is nevertheless
/// meant to be driven by one thread at a time, as in the real client
/// library.
pub struct Txn {
    core: Arc<ClientCore>,
    id: TxnId,
    start_ts: Timestamp,
    state: Mutex<TxnState>,
    writes: Mutex<BTreeMap<ObjectId, Option<Bytes>>>,
    /// Number of Get RPCs issued (used by the latency-table experiment).
    read_rpcs: AtomicU64,
    snapshot_registered: Mutex<bool>,
}

impl Txn {
    pub(crate) fn begin(core: Arc<ClientCore>) -> Self {
        let id = core.oracle.next_txn_id();
        let start_ts = core.oracle.next_timestamp();
        core.snapshots.register(start_ts);
        core.hot.txn_started.inc();
        Txn {
            core,
            id,
            start_ts,
            state: Mutex::new(TxnState::Active),
            writes: Mutex::new(BTreeMap::new()),
            read_rpcs: AtomicU64::new(0),
            snapshot_registered: Mutex::new(true),
        }
    }

    /// The transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot timestamp this transaction reads at.
    pub fn start_ts(&self) -> Timestamp {
        self.start_ts
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TxnState {
        *self.state.lock()
    }

    /// True if the transaction has not written anything (such transactions
    /// commit without any communication).
    pub fn is_read_only(&self) -> bool {
        self.writes.lock().is_empty()
    }

    /// Number of objects written so far.
    pub fn write_count(&self) -> usize {
        self.writes.lock().len()
    }

    /// Number of read RPCs issued so far (diagnostics; reads served from the
    /// local write buffer do not count).
    pub fn read_rpcs(&self) -> u64 {
        self.read_rpcs.load(Ordering::Relaxed)
    }

    fn check_active(&self) -> Result<()> {
        match self.state() {
            TxnState::Active => Ok(()),
            TxnState::Committed => Err(Error::InvalidArgument(
                "transaction already committed".into(),
            )),
            TxnState::Aborted => Err(Error::Aborted("transaction already aborted".into())),
        }
    }

    /// Reads `obj` at this transaction's snapshot (observing its own writes).
    pub fn get(&self, obj: ObjectId) -> Result<Option<Bytes>> {
        self.check_active()?;
        if let Some(v) = self.writes.lock().get(&obj) {
            return Ok(v.clone());
        }
        let _get_span = span(SpanKind::KvGet);
        let server = self.core.home(obj);
        let mut attempts = 0usize;
        loop {
            self.read_rpcs.fetch_add(1, Ordering::Relaxed);
            self.core.hot.get_rpcs.inc();
            match self.core.call_retry(
                server,
                KvRequest::Get {
                    obj,
                    ts: self.start_ts,
                },
                self.core.cfg.rpc_max_attempts,
            )? {
                KvResponse::Value(v) => return Ok(v),
                KvResponse::Locked => {
                    attempts += 1;
                    self.core.stats.counter("kv.get_lock_retries").inc();
                    if attempts > self.core.cfg.lock_acquire_retries {
                        return Err(Error::LockTimeout(format!(
                            "object {obj} still locked after {attempts} read attempts"
                        )));
                    }
                    backoff(self.core.cfg.lock_backoff_us, attempts);
                }
                KvResponse::ServerError { message } => return Err(Error::Io(message)),
                other => {
                    return Err(Error::Internal(format!(
                        "unexpected Get response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Buffers a write of `value` to `obj`.
    pub fn put(&self, obj: ObjectId, value: impl Into<Bytes>) -> Result<()> {
        self.check_active()?;
        self.writes.lock().insert(obj, Some(value.into()));
        Ok(())
    }

    /// Buffers a write of the same `value` to every object in `objs` — the
    /// write-all primitive behind replicated objects.  The payload is shared
    /// (`Bytes` is reference-counted), so the per-copy cost is one buffered
    /// entry, and commit fans the copies out through the ordinary 1PC/2PC
    /// path: either every copy becomes visible or none does.
    pub fn put_many(&self, objs: impl IntoIterator<Item = ObjectId>, value: Bytes) -> Result<()> {
        self.check_active()?;
        let mut writes = self.writes.lock();
        for obj in objs {
            writes.insert(obj, Some(value.clone()));
        }
        Ok(())
    }

    /// Buffers a deletion of `obj`.
    pub fn delete(&self, obj: ObjectId) -> Result<()> {
        self.check_active()?;
        self.writes.lock().insert(obj, None);
        Ok(())
    }

    /// Commits the transaction, returning its commit timestamp.
    ///
    /// Read-only transactions commit locally with no communication.  Single-
    /// participant transactions use one-phase commit (one RPC); multi-
    /// participant transactions use two-phase commit (one prepare RPC and
    /// one commit RPC per participant).
    pub fn commit(self) -> Result<Timestamp> {
        self.check_active()?;
        self.release_snapshot();

        let writes = std::mem::take(&mut *self.writes.lock());
        if writes.is_empty() {
            *self.state.lock() = TxnState::Committed;
            self.core.hot.readonly_commits.inc();
            return Ok(self.start_ts);
        }
        let _commit_span = span(SpanKind::KvCommit);
        // Phase timing is pay-as-you-go: no clock is read unless the
        // deployment turned `Obs::timing_on`.
        let timing = self.core.stats.obs().timing_on();

        // Group writes by participant server, preserving ObjectId order so
        // that servers acquire locks in a deterministic order.
        let mut by_server: BTreeMap<ServerId, Vec<WriteOp>> = BTreeMap::new();
        for (obj, value) in &writes {
            by_server
                .entry(self.core.home(*obj))
                .or_default()
                .push(WriteOp {
                    obj: *obj,
                    value: value.clone(),
                });
        }
        let participants: Vec<ServerId> = by_server.keys().copied().collect();
        self.core
            .hot
            .commit_participants
            .add(participants.len() as u64);

        // One-phase commit when a single server holds every written object.
        // Retries are deduplicated server-side, so a lost response does not
        // double-apply; only full exhaustion with a possible application
        // (timeout) escalates to `Indeterminate`.
        if participants.len() == 1 && self.core.cfg.one_phase_commit {
            let (server, writes) = by_server.into_iter().next().expect("one participant");
            self.core.hot.commit_1pc.inc();
            let t0 = timing.then(clock::now);
            let resp = self
                .core
                .call_retry(
                    server,
                    KvRequest::CommitOnePhase {
                        txn: self.id,
                        start_ts: self.start_ts,
                        writes,
                    },
                    self.core.cfg.rpc_max_attempts,
                )
                .map_err(|e| {
                    if matches!(e, Error::Timeout(_)) {
                        self.core.stats.counter("kv.commit_indeterminate").inc();
                        Error::Indeterminate(format!(
                            "one-phase commit of txn {} to server {server}: {e}",
                            self.id
                        ))
                    } else {
                        e
                    }
                })?;
            if let Some(t0) = t0 {
                self.core.hot.commit_decide_us.record(clock::elapsed_us(t0));
            }
            return match resp {
                KvResponse::Committed { commit_ts } => {
                    *self.state.lock() = TxnState::Committed;
                    self.core.hot.txn_committed.inc();
                    Ok(commit_ts)
                }
                KvResponse::Conflict { reason } => {
                    *self.state.lock() = TxnState::Aborted;
                    self.core.hot.txn_conflicts.inc();
                    count(TraceCounter::Conflicts, 1);
                    Err(Error::Conflict(reason))
                }
                KvResponse::ServerError { message } => {
                    // The server's log-before-apply ordering guarantees the
                    // commit was not applied; this is a definite abort, not
                    // an in-doubt outcome.
                    *self.state.lock() = TxnState::Aborted;
                    Err(Error::Io(message))
                }
                other => Err(Error::Internal(format!(
                    "unexpected 1PC response: {other:?}"
                ))),
            };
        }

        // Phase one: prepare at every participant.  The lowest-numbered
        // participant is the primary — the 2PC commit point the reaper
        // protocol revolves around (see `crate::server`).
        self.core.hot.commit_2pc.inc();
        let prepare_t0 = timing.then(clock::now);
        let primary = participants[0];
        let parallel = self.core.parallel_fanout(participants.len());
        let prepare_req = |writes: Vec<WriteOp>| KvRequest::Prepare {
            txn: self.id,
            start_ts: self.start_ts,
            writes,
            primary,
            lease_us: self.core.cfg.prepare_lease_us,
        };
        let outcomes: Vec<(ServerId, Result<KvResponse>)> = if parallel {
            // All prepares in flight at once; the round costs its slowest
            // participant instead of the sum.  Server-side nothing changes:
            // each participant still validates, locks, and leases its own
            // slice exactly as in the sequential round.
            self.core.stats.counter("kv.prepare_parallel_fanouts").inc();
            let reqs = by_server
                .into_iter()
                .map(|(server, ws)| (server, prepare_req(ws)))
                .collect();
            fanout_calls(&self.core, reqs, self.core.cfg.rpc_max_attempts)
        } else {
            // Sequential round, stopping at the first failure so later
            // participants are never locked for a doomed transaction.
            let mut outcomes = Vec::with_capacity(by_server.len());
            for (server, ws) in by_server {
                let resp =
                    self.core
                        .call_retry(server, prepare_req(ws), self.core.cfg.rpc_max_attempts);
                let failed = !matches!(resp, Ok(KvResponse::Prepared));
                outcomes.push((server, resp));
                if failed {
                    break;
                }
            }
            outcomes
        };
        if let Some(t0) = prepare_t0 {
            self.core
                .hot
                .commit_prepare_us
                .record(clock::elapsed_us(t0));
        }
        // Judge the round in server order, so the reported failure matches
        // what the sequential round would have surfaced first.
        let all_prepared = outcomes.len() == participants.len()
            && outcomes
                .iter()
                .all(|(_, r)| matches!(r, Ok(KvResponse::Prepared)));
        if !all_prepared {
            for (server, resp) in outcomes {
                match resp {
                    Ok(KvResponse::Prepared) => {}
                    Ok(KvResponse::Conflict { reason }) => {
                        self.abort_participants(&participants);
                        *self.state.lock() = TxnState::Aborted;
                        self.core.hot.txn_conflicts.inc();
                        count(TraceCounter::Conflicts, 1);
                        return Err(Error::Conflict(reason));
                    }
                    Ok(KvResponse::ServerError { message }) => {
                        // The participant could not make the prepare durable,
                        // so it holds no locks for us; nothing can have
                        // committed.
                        self.abort_participants(&participants);
                        *self.state.lock() = TxnState::Aborted;
                        return Err(Error::Io(message));
                    }
                    Ok(other) => {
                        self.abort_participants(&participants);
                        *self.state.lock() = TxnState::Aborted;
                        return Err(Error::Internal(format!(
                            "unexpected prepare response: {other:?}"
                        )));
                    }
                    Err(e) => {
                        // Coordinator deadline: a participant stayed
                        // unreachable through the retry budget.  No commit
                        // was sent, so the transaction cannot have committed
                        // anywhere — abort the others (best-effort; the
                        // reaper collects whatever the aborts miss) and
                        // report a clean retryable failure.
                        self.abort_participants(&participants);
                        *self.state.lock() = TxnState::Aborted;
                        self.core.stats.counter("kv.prepare_deadline_aborts").inc();
                        return Err(if e.is_availability() {
                            Error::Unavailable(format!(
                                "prepare of txn {} at server {server} failed ({e}); \
                                 transaction aborted",
                                self.id
                            ))
                        } else {
                            e
                        });
                    }
                }
            }
            // Every collected outcome was `Prepared`, yet a participant is
            // missing (a fan-out worker died): the transaction's locks may
            // be partially held, so abort cleanly.
            self.abort_participants(&participants);
            *self.state.lock() = TxnState::Aborted;
            return Err(Error::Internal(format!(
                "prepare round of txn {} lost a participant outcome",
                self.id
            )));
        }

        // All participants prepared: the transaction is committed as soon as
        // its commit timestamp is fixed *at the primary*.
        let commit_ts = self.core.oracle.next_timestamp();

        // Phase two, commit point: the primary, with the larger resolve
        // budget — once everyone is prepared, pounding on the primary is far
        // cheaper than surfacing an indeterminate commit.
        let decide_t0 = timing.then(clock::now);
        let decide_resp = self.core.call_retry(
            primary,
            KvRequest::Commit {
                txn: self.id,
                commit_ts,
            },
            self.core.cfg.commit_resolve_attempts,
        );
        if let Some(t0) = decide_t0 {
            self.core.hot.commit_decide_us.record(clock::elapsed_us(t0));
        }
        let commit_ts = match decide_resp {
            Ok(KvResponse::Committed { commit_ts }) => commit_ts,
            Ok(KvResponse::Aborted) => {
                // The primary's reaper presumed abort before our commit
                // arrived (lease expired).  Nothing committed anywhere:
                // secondaries never commit before the primary.
                self.abort_participants(&participants);
                *self.state.lock() = TxnState::Aborted;
                self.core.hot.txn_conflicts.inc();
                count(TraceCounter::Conflicts, 1);
                return Err(Error::Conflict(format!(
                    "txn {} aborted by the prepare-lease reaper before commit reached \
                     the primary",
                    self.id
                )));
            }
            Ok(KvResponse::ServerError { message }) => {
                // The primary could not log the commit decision, so it was
                // not applied (log-before-apply); the transaction is still
                // merely prepared.  Abort it cleanly rather than leave it to
                // the reaper's lease expiry.
                self.abort_participants(&participants);
                *self.state.lock() = TxnState::Aborted;
                return Err(Error::Io(message));
            }
            Ok(other) => {
                *self.state.lock() = TxnState::Aborted;
                return Err(Error::Internal(format!(
                    "unexpected commit response: {other:?}"
                )));
            }
            Err(e) => {
                // The commit decision is in flight but unconfirmed: the
                // primary may have installed it, or its reaper may abort it.
                // Only the primary knows; blindly retrying the transaction
                // could double-apply, so surface the in-doubt state.
                self.core.stats.counter("kv.commit_indeterminate").inc();
                return Err(Error::Indeterminate(format!(
                    "commit of txn {} unconfirmed by primary server {primary}: {e}",
                    self.id
                )));
            }
        };

        // Phase two, secondaries: best-effort, fanned out concurrently when
        // the prepares were (the outcome no longer depends on these calls).
        // The transaction is durably committed at the primary; a secondary
        // that misses its commit will adopt it from the primary through the
        // reaper.
        let secondary_commits: Vec<(ServerId, KvRequest)> = participants
            .iter()
            .filter(|&&s| s != primary)
            .map(|&s| {
                (
                    s,
                    KvRequest::Commit {
                        txn: self.id,
                        commit_ts,
                    },
                )
            })
            .collect();
        let apply_t0 = timing.then(clock::now);
        let results = if parallel && secondary_commits.len() > 1 {
            fanout_calls(
                &self.core,
                secondary_commits,
                self.core.cfg.rpc_max_attempts,
            )
        } else {
            secondary_commits
                .into_iter()
                .map(|(s, req)| {
                    (
                        s,
                        self.core.call_retry(s, req, self.core.cfg.rpc_max_attempts),
                    )
                })
                .collect()
        };
        if let Some(t0) = apply_t0 {
            self.core.hot.commit_apply_us.record(clock::elapsed_us(t0));
        }
        for (_, resp) in results {
            if !matches!(resp, Ok(KvResponse::Committed { .. })) {
                // Lost or refused: the reaper will converge this
                // participant.  The commit itself already succeeded.
                self.core
                    .stats
                    .counter("kv.commit_lagging_participants")
                    .inc();
            }
        }
        *self.state.lock() = TxnState::Committed;
        self.core.hot.txn_committed.inc();
        Ok(commit_ts)
    }

    /// Best-effort abort fan-out used when a prepare round fails.  Abort is
    /// idempotent and deduplicated server-side, and participants that miss
    /// the message are cleaned up by the prepare-lease reaper.  Fanned out
    /// concurrently on transports where calls block (a failed prepare round
    /// under faults would otherwise serialise several full retry budgets).
    fn abort_participants(&self, participants: &[ServerId]) {
        let abort = |s: ServerId| (s, KvRequest::Abort { txn: self.id });
        if self.core.parallel_fanout(participants.len()) {
            let reqs = participants.iter().map(|&s| abort(s)).collect();
            let _ = fanout_calls(&self.core, reqs, self.core.cfg.rpc_max_attempts);
        } else {
            for &s in participants {
                let (s, req) = abort(s);
                let _ = self.core.call_retry(s, req, self.core.cfg.rpc_max_attempts);
            }
        }
    }

    /// Aborts the transaction, discarding its buffered writes.
    ///
    /// Because writes are buffered at the client until commit, aborting an
    /// active transaction requires no communication.
    pub fn abort(self) {
        if self.state() == TxnState::Active {
            *self.state.lock() = TxnState::Aborted;
            self.core.stats.counter("kv.txn_user_aborts").inc();
        }
        self.release_snapshot();
    }

    fn release_snapshot(&self) {
        let mut registered = self.snapshot_registered.lock();
        if *registered {
            self.core.snapshots.unregister(self.start_ts);
            *registered = false;
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        // A dropped active transaction holds no server-side state (writes
        // are buffered locally and locks only exist during commit), so only
        // the snapshot registration needs cleaning up.
        self.release_snapshot();
    }
}

/// Exponential-ish backoff between lock retries.
fn backoff(base_us: u64, attempt: usize) {
    if base_us == 0 {
        std::thread::yield_now();
    } else {
        let us = base_us.saturating_mul(attempt.min(16) as u64);
        std::thread::sleep(Duration::from_micros(us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::KvDatabase;

    #[test]
    fn methods_take_shared_reference() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let t = client.begin();
        let r1 = &t;
        let r2 = &t;
        r1.put(ObjectId::new(1, 1), Bytes::from_static(b"a"))
            .unwrap();
        assert_eq!(
            r2.get(ObjectId::new(1, 1)).unwrap().as_deref(),
            Some(&b"a"[..])
        );
        assert_eq!(t.write_count(), 1);
        t.commit().unwrap();
    }

    #[test]
    fn use_after_commit_rejected() {
        let db = KvDatabase::with_servers(1);
        let client = db.client();
        let t = client.begin();
        t.put(ObjectId::new(1, 1), Bytes::from_static(b"a"))
            .unwrap();
        // `commit` consumes the transaction, so using it afterwards is a
        // compile error; the runtime guard is exercised through `state`.
        assert_eq!(t.state(), TxnState::Active);
        t.commit().unwrap();
    }

    #[test]
    fn read_rpcs_counted() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let t = client.begin();
        let _ = t.get(ObjectId::new(1, 1)).unwrap();
        let _ = t.get(ObjectId::new(1, 2)).unwrap();
        t.put(ObjectId::new(1, 3), Bytes::from_static(b"x"))
            .unwrap();
        let _ = t.get(ObjectId::new(1, 3)).unwrap(); // served from write buffer
        assert_eq!(t.read_rpcs(), 2);
        t.commit().unwrap();
    }
}
