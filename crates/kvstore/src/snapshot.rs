//! Tracking of active snapshots, used to bound garbage collection.
//!
//! Every running transaction registers its start timestamp here; the
//! garbage collector may only reclaim versions that no registered snapshot
//! (and no future snapshot) can read.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_common::Timestamp;

/// Shared registry of active snapshot timestamps.
#[derive(Clone, Default)]
pub struct SnapshotTracker {
    inner: Arc<Mutex<BTreeMap<Timestamp, usize>>>,
}

impl SnapshotTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an active snapshot at `ts`.
    pub fn register(&self, ts: Timestamp) {
        *self.inner.lock().entry(ts).or_insert(0) += 1;
    }

    /// Unregisters a snapshot previously registered at `ts`.
    pub fn unregister(&self, ts: Timestamp) {
        let mut g = self.inner.lock();
        if let Some(c) = g.get_mut(&ts) {
            *c -= 1;
            if *c == 0 {
                g.remove(&ts);
            }
        }
    }

    /// The oldest active snapshot timestamp, or `fallback` if no snapshot is
    /// active (callers pass the oracle's latest timestamp, meaning "any
    /// version older than now is collectable subject to keep_versions").
    pub fn min_active(&self, fallback: Timestamp) -> Timestamp {
        self.inner.lock().keys().next().copied().unwrap_or(fallback)
    }

    /// Number of active snapshots (diagnostics).
    pub fn active_count(&self) -> usize {
        self.inner.lock().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_unregister_min() {
        let t = SnapshotTracker::new();
        assert_eq!(t.min_active(42), 42);
        t.register(10);
        t.register(20);
        t.register(10);
        assert_eq!(t.min_active(42), 10);
        assert_eq!(t.active_count(), 3);
        t.unregister(10);
        assert_eq!(t.min_active(42), 10);
        t.unregister(10);
        assert_eq!(t.min_active(42), 20);
        t.unregister(20);
        assert_eq!(t.min_active(42), 42);
        assert_eq!(t.active_count(), 0);
    }

    #[test]
    fn unregister_unknown_is_harmless() {
        let t = SnapshotTracker::new();
        t.unregister(5);
        assert_eq!(t.min_active(1), 1);
    }
}
