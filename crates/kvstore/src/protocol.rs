//! Wire protocol between key-value clients and storage servers.
//!
//! The messages mirror what the real system would put on the network.  The
//! transport delivers them in-process, but every `call` still counts as one
//! RPC round trip for the network model, and the wire-size estimators below
//! feed the bandwidth model.

use bytes::Bytes;
use yesquel_common::{ObjectId, ServerId, Timestamp, TxnId};

/// A buffered write shipped to a participant at prepare time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp {
    /// Object being written.
    pub obj: ObjectId,
    /// New value, or `None` to delete the object.
    pub value: Option<Bytes>,
}

impl WriteOp {
    /// Approximate number of bytes this write occupies on the wire.
    pub fn wire_size(&self) -> usize {
        16 + self.value.as_ref().map(|v| v.len()).unwrap_or(0)
    }
}

/// Requests a client can send to one storage server.
#[derive(Debug, Clone)]
pub enum KvRequest {
    /// Read the newest version of `obj` with timestamp ≤ `ts`.
    Get {
        /// Object to read.
        obj: ObjectId,
        /// Snapshot timestamp of the reading transaction.
        ts: Timestamp,
    },
    /// Phase one of two-phase commit: validate and lock `writes`.
    Prepare {
        /// Transaction id (used to identify the lock owner).
        txn: TxnId,
        /// Snapshot timestamp of the transaction (for first-committer-wins
        /// validation).
        start_ts: Timestamp,
        /// Writes destined for objects homed at this server.
        writes: Vec<WriteOp>,
        /// The transaction's primary participant — the 2PC commit point.  A
        /// participant whose prepare lease expires resolves the transaction
        /// by asking the primary (see [`KvRequest::TxnStatus`]); the primary
        /// itself may unilaterally presume abort.
        primary: ServerId,
        /// Coordinator lease in microseconds: how long this participant
        /// holds the prepare locks before presuming the coordinator dead.
        lease_us: u64,
    },
    /// Phase two of two-phase commit: install the versions staged by
    /// `Prepare` at `commit_ts` and release the locks.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Commit timestamp chosen by the coordinator.
        commit_ts: Timestamp,
    },
    /// One-phase commit for transactions whose writes all live on this
    /// server: validate, assign a commit timestamp server-side, install.
    CommitOnePhase {
        /// Transaction id.
        txn: TxnId,
        /// Snapshot timestamp of the transaction.
        start_ts: Timestamp,
        /// All writes of the transaction.
        writes: Vec<WriteOp>,
    },
    /// Abort: release this transaction's locks and discard staged writes.
    Abort {
        /// Transaction id.
        txn: TxnId,
    },
    /// Atomically add `delta` to the non-transactional counter stored at
    /// `obj` and return the pre-increment value.  Used to allocate node ids
    /// and row ids without transactional conflicts.
    Allocate {
        /// Counter object.
        obj: ObjectId,
        /// Amount to add (the caller receives a block of this many ids).
        delta: u64,
    },
    /// Trim versions that no active snapshot can read: every version older
    /// than the newest version with timestamp ≤ `min_active_ts` is dropped,
    /// except that at least `keep_versions` committed versions are retained.
    Gc {
        /// Lower bound on the start timestamp of any active transaction.
        min_active_ts: Timestamp,
        /// Minimum number of committed versions to retain per object.
        keep_versions: usize,
    },
    /// Load a value directly with a given timestamp, bypassing concurrency
    /// control.  Only used to bulk-load initial data before serving begins
    /// (the benchmark harness and tests use this; the SQL layer does not).
    LoadUnchecked {
        /// Object to write.
        obj: ObjectId,
        /// Version timestamp to install.
        ts: Timestamp,
        /// Value to install.
        value: Bytes,
    },
    /// Ask this server (as a transaction's primary participant) what it
    /// knows about the transaction's fate.  Sent server-to-server by the
    /// prepare-lease reaper on a secondary participant.
    TxnStatus {
        /// Transaction being resolved.
        txn: TxnId,
    },
    /// Return this server's operation statistics (diagnostics).
    Stats,
    /// Several requests coalesced into one frame by the batching transport
    /// (`yesquel_rpc::BatchingTransport`).  The server answers with a
    /// [`KvResponse::Batch`] of the same length and order.  Nested batches
    /// never occur: only the transport layer builds envelopes.
    Batch(Vec<KvRequest>),
}

/// What a server knows about a transaction's fate, in response to
/// [`KvRequest::TxnStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatusKind {
    /// The transaction committed at this timestamp.
    Committed(Timestamp),
    /// The transaction aborted (explicitly or by presumed abort).
    Aborted,
    /// The transaction is still prepared here; its lease has not expired.
    /// The asking participant should keep waiting.
    Pending,
    /// Nothing is known about the transaction.  Under presumed abort this
    /// reads as "aborted": the primary records every commit in its outcome
    /// table, so an unknown transaction never committed (or committed so
    /// long ago that the record was evicted, which the generous retention
    /// bound makes unreachable while any participant is still prepared).
    Unknown,
}

/// Responses from a storage server.
#[derive(Debug, Clone)]
pub enum KvResponse {
    /// Result of a `Get`: the value, or `None` if the object has no visible
    /// version (never written, or deleted) at the snapshot.
    Value(Option<Bytes>),
    /// The object is currently locked by a preparing transaction; the
    /// client should retry the read shortly.
    Locked,
    /// Prepare succeeded; locks are held until `Commit` or `Abort`.
    Prepared,
    /// Prepare or one-phase commit failed validation (write-write conflict
    /// or lock conflict); the transaction must abort.
    Conflict {
        /// Human-readable reason, used in error messages and abort stats.
        reason: String,
    },
    /// Commit applied.  For one-phase commit carries the server-assigned
    /// commit timestamp.
    Committed {
        /// Commit timestamp of the transaction.
        commit_ts: Timestamp,
    },
    /// Abort processed — or, in response to a `Commit`, the transaction was
    /// already aborted here (its prepare lease expired and the reaper
    /// presumed abort), so the commit could not be applied.
    Aborted,
    /// Response to [`KvRequest::TxnStatus`].
    TxnOutcome {
        /// What this server knows about the transaction.
        status: TxnStatusKind,
    },
    /// Result of `Allocate`: the first id of the allocated block.
    Allocated {
        /// Pre-increment counter value.
        start: u64,
    },
    /// Generic acknowledgement (GC, bulk load).
    Ok,
    /// The server failed to process the request for a non-protocol reason —
    /// in practice a write-ahead-log append or fsync failure.  Nothing was
    /// applied or acknowledged (the log is written before any state
    /// change); the client surfaces this as a typed I/O error.
    ServerError {
        /// Rendered error (includes the failing path and the OS error).
        message: String,
    },
    /// Responses to a [`KvRequest::Batch`], in request order.
    Batch(Vec<KvResponse>),
    /// Server statistics.
    Stats {
        /// Number of objects stored.
        objects: u64,
        /// Total number of committed versions stored.
        versions: u64,
        /// Number of `Get` requests served.
        gets: u64,
        /// Number of prepares served.
        prepares: u64,
        /// Number of commits applied (either phase-two or one-phase).
        commits: u64,
        /// Number of validation failures reported.
        conflicts: u64,
    },
}

impl KvRequest {
    /// Approximate wire size of the request in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            KvRequest::Get { .. } => 32,
            KvRequest::Prepare { writes, .. } => {
                32 + writes.iter().map(WriteOp::wire_size).sum::<usize>()
            }
            KvRequest::Commit { .. } => 24,
            KvRequest::CommitOnePhase { writes, .. } => {
                32 + writes.iter().map(WriteOp::wire_size).sum::<usize>()
            }
            KvRequest::Abort { .. } => 16,
            KvRequest::Allocate { .. } => 28,
            KvRequest::Gc { .. } => 24,
            KvRequest::LoadUnchecked { value, .. } => 28 + value.len(),
            KvRequest::TxnStatus { .. } => 16,
            KvRequest::Stats => 8,
            // One frame header plus every enclosed request: batching saves
            // round trips, not payload bytes.
            KvRequest::Batch(reqs) => 8 + reqs.iter().map(KvRequest::wire_size).sum::<usize>(),
        }
    }
}

impl KvResponse {
    /// Approximate wire size of the response in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            KvResponse::Value(v) => 16 + v.as_ref().map(|b| b.len()).unwrap_or(0),
            KvResponse::Conflict { reason } => 16 + reason.len(),
            KvResponse::ServerError { message } => 16 + message.len(),
            KvResponse::Stats { .. } => 64,
            KvResponse::Batch(resps) => 8 + resps.iter().map(KvResponse::wire_size).sum::<usize>(),
            _ => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = KvRequest::Get {
            obj: ObjectId::new(1, 2),
            ts: 3,
        };
        let w = WriteOp {
            obj: ObjectId::new(1, 2),
            value: Some(Bytes::from(vec![0u8; 1000])),
        };
        let big = KvRequest::Prepare {
            txn: 1,
            start_ts: 1,
            writes: vec![w],
            primary: 0,
            lease_us: 500_000,
        };
        assert!(big.wire_size() > small.wire_size() + 900);

        let rv = KvResponse::Value(Some(Bytes::from(vec![0u8; 500])));
        assert!(rv.wire_size() >= 500);
        assert!(KvResponse::Ok.wire_size() < 64);
    }

    #[test]
    fn write_op_delete_is_small() {
        let del = WriteOp {
            obj: ObjectId::new(1, 2),
            value: None,
        };
        assert_eq!(del.wire_size(), 16);
    }
}
