//! Construction of a whole key-value deployment: servers, cluster, oracle.

use std::sync::Arc;

use yesquel_common::stats::StatsRegistry;
use yesquel_common::{Result, YesquelConfig};
use yesquel_rpc::{
    BatchingTransport, Cluster, ClusterBuilder, FaultPlan, FaultyTransport, Transport,
    TransportKind,
};
use yesquel_wal::Wal;

use crate::client::KvClient;
use crate::oracle::TimestampOracle;
use crate::server::KvServer;
use crate::snapshot::SnapshotTracker;

/// A complete transactional key-value deployment: `num_servers` storage
/// servers, the timestamp oracle, the snapshot tracker and the cluster
/// transport.  This is what the higher layers (YDBT, SQL) and the benchmark
/// harness instantiate.
pub struct KvDatabase {
    cluster: Cluster<KvServer>,
    /// The transport clients (and the server-to-server reaper) actually use:
    /// the cluster transport, optionally wrapped in a [`FaultyTransport`].
    client_transport: Arc<dyn Transport<KvServer>>,
    faults: Option<Arc<FaultyTransport<KvServer>>>,
    oracle: TimestampOracle,
    snapshots: SnapshotTracker,
    config: YesquelConfig,
    stats: StatsRegistry,
}

impl KvDatabase {
    /// Creates a deployment from a configuration, using the direct (same
    /// thread) transport.  Panics if `KvConfig::wal_dir` is set and a log
    /// cannot be opened; durability-aware callers use [`KvDatabase::try_new`].
    pub fn new(config: YesquelConfig) -> Self {
        Self::with_transport(config, TransportKind::Direct)
    }

    /// Fallible variant of [`KvDatabase::new`]: opening or recovering a
    /// per-server write-ahead log surfaces as a typed error instead of a
    /// panic.
    pub fn try_new(config: YesquelConfig) -> Result<Self> {
        Self::build(config, TransportKind::Direct, None)
    }

    /// Creates a deployment with an explicit transport choice.
    pub fn with_transport(config: YesquelConfig, transport: TransportKind) -> Self {
        Self::build(config, transport, None).expect("failed to open write-ahead logs")
    }

    /// Creates a deployment whose transport injects faults according to
    /// `plans` (one [`FaultPlan`] per server; missing entries are healthy).
    /// Everything — client RPCs and the server-to-server transaction-status
    /// traffic of the prepare-lease reaper — goes through the faulty
    /// transport, so crashes partition a server from its peers too.  When a
    /// plan has [`FaultPlan::amnesia`] set, restarting that crashed server
    /// wipes its volatile state and recovers from its write-ahead log (or
    /// comes back empty without one).
    pub fn with_faults(
        config: YesquelConfig,
        transport: TransportKind,
        plans: Vec<FaultPlan>,
    ) -> Self {
        Self::build(config, transport, Some(plans)).expect("failed to open write-ahead logs")
    }

    /// Fallible variant of [`KvDatabase::with_faults`].
    pub fn try_with_faults(
        config: YesquelConfig,
        transport: TransportKind,
        plans: Vec<FaultPlan>,
    ) -> Result<Self> {
        Self::build(config, transport, Some(plans))
    }

    fn build(
        config: YesquelConfig,
        transport: TransportKind,
        plans: Option<Vec<FaultPlan>>,
    ) -> Result<Self> {
        assert!(
            config.num_servers > 0,
            "deployment needs at least one storage server"
        );
        let stats = StatsRegistry::new();
        stats.obs().set_timing(config.obs.timing);
        stats.obs().set_sample_every(config.obs.trace_sample_every);
        stats
            .obs()
            .set_slow_threshold_us(config.obs.slow_threshold_us);
        let oracle = TimestampOracle::new();
        let servers = match &config.kv.wal_dir {
            None => KvServer::make_servers_with(config.num_servers, &oracle, &config.kv),
            Some(dir) => {
                // One log per server, under `<wal_dir>/server-<i>`; opening
                // a log also recovers it, so building a deployment over an
                // existing directory restores the previous incarnation.
                let mut servers = Vec::with_capacity(config.num_servers);
                for id in 0..config.num_servers {
                    let wal = Wal::open(
                        dir.join(format!("server-{id}")),
                        config.kv.wal_fsync,
                        &stats,
                    )?;
                    servers.push(Arc::new(KvServer::with_wal(
                        id,
                        oracle.clone(),
                        &config.kv,
                        Some(Arc::new(wal)),
                    )?));
                }
                // Recovered versions carry timestamps issued by the previous
                // incarnation's oracle; move this one past them so fresh
                // snapshots can see them and ids are never reissued.
                for srv in &servers {
                    let (ts, txn) = srv.store().high_water();
                    oracle.advance_past(ts);
                    oracle.advance_txn_past(txn);
                }
                servers
            }
        };
        let cluster = ClusterBuilder::new(servers)
            .transport(transport)
            .network(config.net.clone())
            .stats(stats.clone())
            .build();
        // Batching sits directly above the wire: requests that survive the
        // fault injector coalesce into multi-request frames, so chaos plans
        // and the network model keep seeing (and charging) logical messages
        // while the frame saves transport round trips.
        let wire: Arc<dyn Transport<KvServer>> = match config.rpc_batch {
            None => cluster.transport(),
            Some(batch) => Arc::new(BatchingTransport::new(cluster.transport(), batch, &stats)),
        };
        let mut faults = None;
        let client_transport: Arc<dyn Transport<KvServer>> = match plans {
            None => wire,
            Some(plans) => {
                let faulty = Arc::new(FaultyTransport::new(wire, plans, stats.clone()));
                // A restart of a crashed server under an amnesia plan kills
                // the "process": volatile state is dropped and the store is
                // rebuilt from the write-ahead log before any request gets
                // through.
                for (id, srv) in cluster.servers().iter().enumerate() {
                    let srv = Arc::clone(srv);
                    faulty.set_restart_hook(id, move || {
                        srv.amnesia_restart()
                            .expect("amnesia recovery from the write-ahead log failed");
                    });
                }
                faults = Some(Arc::clone(&faulty));
                faulty
            }
        };
        for srv in cluster.servers() {
            srv.set_peer_transport(&client_transport);
        }
        Ok(KvDatabase {
            cluster,
            client_transport,
            faults,
            oracle,
            snapshots: SnapshotTracker::new(),
            config,
            stats,
        })
    }

    /// Convenience constructor: `n` servers, everything else default.
    pub fn with_servers(n: usize) -> Self {
        Self::new(YesquelConfig::with_servers(n))
    }

    /// Creates a client handle.  Every application thread typically has its
    /// own clone of a client.
    pub fn client(&self) -> KvClient {
        KvClient::new(
            Arc::clone(&self.client_transport),
            self.oracle.clone(),
            self.snapshots.clone(),
            self.config.kv.clone(),
            self.stats.clone(),
        )
    }

    /// The fault-injection layer, when this deployment was built with
    /// [`KvDatabase::with_faults`].  Tests use it to crash and restart
    /// servers or rewrite fault plans mid-run.
    pub fn faults(&self) -> Option<&Arc<FaultyTransport<KvServer>>> {
        self.faults.as_ref()
    }

    /// Forces a reaper pass on every server, resolving any prepared
    /// transaction whose lease has expired.  Tests call this after healing
    /// faults instead of waiting for request traffic to trigger the
    /// piggybacked reaper.
    pub fn reap_all(&self) {
        for srv in self.cluster.servers() {
            srv.reap();
        }
    }

    /// Checkpoints every server's store into a fresh write-ahead-log
    /// segment, truncating the old ones (no-op for servers without a log).
    pub fn checkpoint_all(&self) -> Result<()> {
        for srv in self.cluster.servers() {
            srv.checkpoint()?;
        }
        Ok(())
    }

    /// Total number of prepared (in-doubt) transactions across all servers.
    pub fn prepared_total(&self) -> usize {
        self.cluster
            .servers()
            .iter()
            .map(|s| s.store().prepared_count())
            .sum()
    }

    /// Number of storage servers.
    pub fn num_servers(&self) -> usize {
        self.cluster.num_servers()
    }

    /// The configuration this deployment was built with.
    pub fn config(&self) -> &YesquelConfig {
        &self.config
    }

    /// The shared statistics registry (RPC counts, transaction counters).
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// The timestamp oracle (exposed for tests and the GC driver).
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Direct access to the underlying cluster (tests, experiments).
    pub fn cluster(&self) -> &Cluster<KvServer> {
        &self.cluster
    }

    /// Runs one round of garbage collection across all servers.
    pub fn run_gc(&self) -> Result<()> {
        self.client().run_gc()
    }

    /// Total number of committed versions across all servers (diagnostics).
    pub fn total_versions(&self) -> u64 {
        self.cluster
            .servers()
            .iter()
            .map(|s| s.store().version_count())
            .sum()
    }

    /// Total number of stored objects across all servers (diagnostics).
    pub fn total_objects(&self) -> u64 {
        self.cluster
            .servers()
            .iter()
            .map(|s| s.store().object_count())
            .sum()
    }

    /// Per-server request counts observed by the transport, for load-
    /// imbalance reports.
    pub fn per_server_requests(&self) -> Vec<u64> {
        (0..self.num_servers())
            .map(|i| {
                self.stats
                    .counter(&format!("rpc.server.{i}.requests"))
                    .get()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use yesquel_common::{Error, ObjectId};

    #[test]
    fn put_get_commit_across_servers() {
        let db = KvDatabase::with_servers(4);
        let client = db.client();

        let t = client.begin();
        for oid in 0..20u64 {
            t.put(ObjectId::new(1, oid), Bytes::from(format!("value-{oid}")))
                .unwrap();
        }
        assert_eq!(t.write_count(), 20);
        let commit_ts = t.commit().unwrap();
        assert!(commit_ts > 0);

        let t2 = client.begin();
        for oid in 0..20u64 {
            let v = t2.get(ObjectId::new(1, oid)).unwrap().expect("value");
            assert_eq!(&v[..], format!("value-{oid}").as_bytes());
        }
        assert!(t2.is_read_only());
        t2.commit().unwrap();
        assert!(db.total_objects() >= 20);
    }

    #[test]
    fn snapshot_isolation_reads_old_version() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let obj = ObjectId::new(3, 1);

        let t1 = client.begin();
        t1.put(obj, Bytes::from_static(b"v1")).unwrap();
        t1.commit().unwrap();

        // Reader starts now; a later writer must not be visible to it.
        let reader = client.begin();
        let before = reader.get(obj).unwrap();
        assert_eq!(before.as_deref(), Some(&b"v1"[..]));

        let writer = client.begin();
        writer.put(obj, Bytes::from_static(b"v2")).unwrap();
        writer.commit().unwrap();

        let after = reader.get(obj).unwrap();
        assert_eq!(after.as_deref(), Some(&b"v1"[..]), "snapshot must not move");
        reader.commit().unwrap();

        let fresh = client.begin();
        assert_eq!(fresh.get(obj).unwrap().as_deref(), Some(&b"v2"[..]));
        fresh.commit().unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_second_committer() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let obj = ObjectId::new(4, 1);

        let a = client.begin();
        let b = client.begin();
        a.put(obj, Bytes::from_static(b"a")).unwrap();
        b.put(obj, Bytes::from_static(b"b")).unwrap();
        a.commit().unwrap();
        match b.commit() {
            Err(Error::Conflict(_)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }

        let check = client.begin();
        assert_eq!(check.get(obj).unwrap().as_deref(), Some(&b"a"[..]));
        check.commit().unwrap();
    }

    #[test]
    fn multi_server_transaction_is_atomic() {
        let db = KvDatabase::with_servers(8);
        let client = db.client();

        // Write enough objects that multiple servers participate.
        let t = client.begin();
        for oid in 0..32u64 {
            t.put(ObjectId::new(9, oid), Bytes::from_static(b"x"))
                .unwrap();
        }
        let stats_before = db.stats().counter("kv.commit_2pc").get();
        t.commit().unwrap();
        assert_eq!(db.stats().counter("kv.commit_2pc").get(), stats_before + 1);

        // All or nothing: every object is visible.
        let r = client.begin();
        for oid in 0..32u64 {
            assert!(r.get(ObjectId::new(9, oid)).unwrap().is_some());
        }
        r.commit().unwrap();
    }

    #[test]
    fn readonly_commit_needs_no_rpcs() {
        let db = KvDatabase::with_servers(4);
        let client = db.client();
        let t = client.begin();
        let _ = t.get(ObjectId::new(1, 1)).unwrap();
        let rpcs_before = db.stats().counter("rpc.calls").get();
        t.commit().unwrap();
        assert_eq!(db.stats().counter("rpc.calls").get(), rpcs_before);
        assert_eq!(db.stats().counter("kv.readonly_commits").get(), 1);
    }

    #[test]
    fn delete_then_read_none() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let obj = ObjectId::new(5, 5);
        let t = client.begin();
        t.put(obj, Bytes::from_static(b"x")).unwrap();
        t.commit().unwrap();
        let t = client.begin();
        t.delete(obj).unwrap();
        t.commit().unwrap();
        let t = client.begin();
        assert_eq!(t.get(obj).unwrap(), None);
        t.commit().unwrap();
    }

    #[test]
    fn abort_discards_writes() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let obj = ObjectId::new(6, 1);
        let t = client.begin();
        t.put(obj, Bytes::from_static(b"x")).unwrap();
        t.abort();
        let r = client.begin();
        assert_eq!(r.get(obj).unwrap(), None);
        r.commit().unwrap();
    }

    #[test]
    fn read_your_own_writes() {
        let db = KvDatabase::with_servers(2);
        let client = db.client();
        let obj = ObjectId::new(7, 1);
        let t = client.begin();
        assert_eq!(t.get(obj).unwrap(), None);
        t.put(obj, Bytes::from_static(b"mine")).unwrap();
        assert_eq!(t.get(obj).unwrap().as_deref(), Some(&b"mine"[..]));
        t.delete(obj).unwrap();
        assert_eq!(t.get(obj).unwrap(), None);
        t.abort();
    }

    #[test]
    fn allocate_blocks_are_disjoint() {
        let db = KvDatabase::with_servers(3);
        let client = db.client();
        let ctr = ObjectId::meta(12);
        let a = client.allocate(ctr, 100).unwrap();
        let b = client.allocate(ctr, 100).unwrap();
        assert_eq!(b, a + 100);
    }

    #[test]
    fn gc_trims_versions() {
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv.gc_keep_versions = 1;
        let db = KvDatabase::new(cfg);
        let client = db.client();
        let obj = ObjectId::new(8, 1);
        for i in 0..10 {
            let t = client.begin();
            t.put(obj, Bytes::from(format!("v{i}"))).unwrap();
            t.commit().unwrap();
        }
        assert!(db.total_versions() >= 10);
        db.run_gc().unwrap();
        assert_eq!(db.total_versions(), 1);
        let r = client.begin();
        assert_eq!(r.get(obj).unwrap().as_deref(), Some(&b"v9"[..]));
        r.commit().unwrap();
    }

    #[test]
    fn gc_preserves_active_snapshot_reads() {
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv.gc_keep_versions = 1;
        let db = KvDatabase::new(cfg);
        let client = db.client();
        let obj = ObjectId::new(8, 2);

        let t = client.begin();
        t.put(obj, Bytes::from_static(b"old")).unwrap();
        t.commit().unwrap();

        let reader = client.begin();
        assert_eq!(reader.get(obj).unwrap().as_deref(), Some(&b"old"[..]));

        for i in 0..5 {
            let w = client.begin();
            w.put(obj, Bytes::from(format!("new{i}"))).unwrap();
            w.commit().unwrap();
        }
        db.run_gc().unwrap();
        // The reader's snapshot predates the new versions; its value must
        // still be readable after GC.
        assert_eq!(reader.get(obj).unwrap().as_deref(), Some(&b"old"[..]));
        reader.commit().unwrap();
    }

    #[test]
    fn load_unchecked_visible_everywhere() {
        let db = KvDatabase::with_servers(4);
        let client = db.client();
        for oid in 0..10u64 {
            client
                .load_unchecked(ObjectId::new(2, oid), Bytes::from_static(b"seed"))
                .unwrap();
        }
        let t = client.begin();
        for oid in 0..10u64 {
            assert!(t.get(ObjectId::new(2, oid)).unwrap().is_some());
        }
        t.commit().unwrap();
    }

    #[test]
    fn durable_deployment_survives_rebuild() {
        let tmp = yesquel_common::tempdir::TempDir::new("kvdb-durable").unwrap();
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
        let obj = ObjectId::new(21, 1);
        let committed_ts;
        {
            let db = KvDatabase::new(cfg.clone());
            let client = db.client();
            let t = client.begin();
            t.put(obj, Bytes::from_static(b"persisted")).unwrap();
            committed_ts = t.commit().unwrap();
        }
        // A fresh deployment over the same directory recovers the commit and
        // advances its oracle past the previous incarnation's timestamps.
        let db = KvDatabase::new(cfg);
        assert!(db.oracle().last_timestamp() >= committed_ts);
        let client = db.client();
        let t = client.begin();
        assert_eq!(t.get(obj).unwrap().as_deref(), Some(&b"persisted"[..]));
        t.commit().unwrap();
        // A write in the second incarnation must win over the recovered one.
        let t = client.begin();
        t.put(obj, Bytes::from_static(b"newer")).unwrap();
        t.commit().unwrap();
        let t = client.begin();
        assert_eq!(t.get(obj).unwrap().as_deref(), Some(&b"newer"[..]));
        t.commit().unwrap();
    }

    #[test]
    fn amnesia_restart_recovers_acknowledged_commits() {
        let tmp = yesquel_common::tempdir::TempDir::new("kvdb-amnesia").unwrap();
        let mut cfg = YesquelConfig::with_servers(2);
        cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
        let plan = FaultPlan {
            amnesia: true,
            ..FaultPlan::healthy()
        };
        let db = KvDatabase::with_faults(cfg, TransportKind::Direct, vec![plan.clone(), plan]);
        let client = db.client();
        for oid in 0..16u64 {
            let t = client.begin();
            t.put(ObjectId::new(22, oid), Bytes::from(format!("v{oid}")))
                .unwrap();
            t.commit().unwrap();
        }
        let faults = db.faults().unwrap();
        for server in 0..2 {
            faults.crash(server);
            faults.restart(server);
        }
        // The restart wiped volatile memory; everything acknowledged must
        // still be readable because it was replayed from the log.
        let t = client.begin();
        for oid in 0..16u64 {
            assert_eq!(
                t.get(ObjectId::new(22, oid)).unwrap().as_deref(),
                Some(format!("v{oid}").as_bytes()),
                "object {oid} lost across amnesia restart"
            );
        }
        t.commit().unwrap();
        assert!(db.stats().counter("wal.recovered_txns").get() > 0);
    }

    #[test]
    fn amnesia_restart_without_wal_loses_everything() {
        let plan = FaultPlan {
            amnesia: true,
            ..FaultPlan::healthy()
        };
        let db = KvDatabase::with_faults(
            YesquelConfig::with_servers(1),
            TransportKind::Direct,
            vec![plan],
        );
        let client = db.client();
        let t = client.begin();
        t.put(ObjectId::new(23, 1), Bytes::from_static(b"volatile"))
            .unwrap();
        t.commit().unwrap();
        let faults = db.faults().unwrap();
        faults.crash(0);
        faults.restart(0);
        // No log: an amnesia crash is a disk-less process kill.
        let t = client.begin();
        assert_eq!(t.get(ObjectId::new(23, 1)).unwrap(), None);
        t.commit().unwrap();
    }

    #[test]
    fn per_server_requests_reported() {
        let db = KvDatabase::with_servers(4);
        let client = db.client();
        let t = client.begin();
        for oid in 0..64u64 {
            let _ = t.get(ObjectId::new(11, oid)).unwrap();
        }
        t.commit().unwrap();
        let per = db.per_server_requests();
        assert_eq!(per.len(), 4);
        assert_eq!(per.iter().sum::<u64>(), 64);
        assert!(
            per.iter().all(|&c| c > 0),
            "reads should spread over servers: {per:?}"
        );
    }
}
