//! Yesquel's transactional key-value storage system.
//!
//! This is the lowest layer of the Yesquel architecture (boxes 3 in Figure 1
//! of the paper): a distributed key-value store whose keys are
//! [`ObjectId`](yesquel_common::ObjectId)s, whose values are byte strings,
//! and which provides **distributed transactions with snapshot isolation**
//! implemented with multi-version concurrency control.  The distributed
//! balanced tree (`yesquel-ydbt`) stores every tree node as one key-value
//! pair in this store, and relies on these transactions for all of its
//! consistency — including atomically moving data between nodes when
//! splitting.
//!
//! ## Transaction protocol
//!
//! * Every transaction obtains a **start timestamp** from the timestamp
//!   oracle and reads the newest committed version of each object with
//!   timestamp ≤ start timestamp (its snapshot).
//! * Writes are **buffered at the client** until commit; reads observe the
//!   transaction's own buffered writes.
//! * Commit runs **two-phase commit** over the storage servers holding
//!   written objects: each participant validates (first-committer-wins:
//!   no committed version newer than the start timestamp) and locks the
//!   written objects; the coordinator then obtains a **commit timestamp**
//!   and tells participants to install the new versions and release locks.
//! * Transactions that wrote to a single server use one-phase commit (the
//!   server validates, assigns the commit timestamp and installs versions
//!   in one round trip).
//! * **Read-only transactions commit with no communication at all** — a
//!   property the paper calls out, and which the latency table experiment
//!   (T1 in DESIGN.md) checks.
//! * Readers that encounter an object locked by a preparing transaction
//!   retry briefly: the lock window only spans the coordinator's commit
//!   round trip.  This preserves snapshot correctness: if a transaction's
//!   commit timestamp precedes a reader's snapshot, its locks were already
//!   held when the reader started, so the reader cannot miss its writes.
//!
//! The isolation level is **snapshot isolation**, exactly as stated in the
//! paper (write-write conflicts abort; write skew is permitted).  The
//! `exp_si_semantics` experiment demonstrates both halves.
//!
//! ## Non-transactional helpers
//!
//! Two deliberately non-transactional operations exist because the layers
//! above need them: [`protocol::KvRequest::Allocate`] (a per-object atomic
//! counter used to allocate fresh tree-node ids and row ids without creating
//! write-write conflicts) and garbage collection of old versions.

pub mod client;
pub mod database;
pub(crate) mod fanout;
pub mod mvcc;
pub mod oracle;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod txn;

pub use client::KvClient;
pub use database::KvDatabase;
pub use oracle::TimestampOracle;
pub use protocol::{KvRequest, KvResponse, WriteOp};
pub use server::KvServer;
pub use txn::Txn;
