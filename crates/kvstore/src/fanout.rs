//! A small shared worker pool for the 2PC coordinator's parallel fan-outs.
//!
//! The commit path issues one prepare per participant, one best-effort
//! commit per secondary, and (on failure) one abort per participant.  Over a
//! transport where calls spend wall-clock time blocked — worker queues,
//! slept latency, injected faults — issuing those rounds from one thread
//! serialises the waits.  [`FanoutPool`] lets the coordinator overlap them:
//! all but one RPC of a round are handed to pool workers while the calling
//! thread issues the last one itself, so a round costs roughly its slowest
//! RPC instead of their sum.
//!
//! The pool is deliberately lazy: no thread exists until the first parallel
//! round, so deployments on the plain direct transport (every unit test,
//! every single-threaded benchmark) never pay for it.  Workers exit when the
//! owning client core is dropped (the job channel disconnects).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A unit of work: issue one RPC and deliver its result somewhere.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lazily-spawned fixed-size worker pool.
pub(crate) struct FanoutPool {
    workers: usize,
    tx: Mutex<Option<Sender<Job>>>,
}

impl FanoutPool {
    /// Creates an empty pool that will spawn `workers` threads on first use.
    pub(crate) fn new(workers: usize) -> Self {
        FanoutPool {
            workers: workers.max(1),
            tx: Mutex::new(None),
        }
    }

    /// Hands `job` to a worker, spawning the pool on first use.  Jobs are
    /// independent (none ever waits on another pool job), so a full pool
    /// only delays, never deadlocks.
    pub(crate) fn submit(&self, job: Job) {
        let mut guard = self.tx.lock();
        let tx = guard.get_or_insert_with(|| {
            let (tx, rx) = unbounded::<Job>();
            for w in 0..self.workers {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("yesquel-fanout-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn fan-out worker thread");
            }
            tx
        });
        assert!(tx.send(job).is_ok(), "fan-out workers outlive their pool");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_pool_is_lazy() {
        let pool = FanoutPool::new(4);
        assert!(pool.tx.lock().is_none(), "no threads before the first job");
        let counter = Arc::new(AtomicU64::new(0));
        let (done_tx, done_rx) = crossbeam::channel::bounded(64);
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let done = done_tx.clone();
            pool.submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(());
            }));
        }
        for _ in 0..64 {
            done_rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
