//! The key-value client library linked into every Yesquel client process.

use std::sync::Arc;

use bytes::Bytes;
use yesquel_common::stats::StatsRegistry;
use yesquel_common::{Error, KvConfig, ObjectId, Result, Timestamp};
use yesquel_rpc::Transport;

use crate::oracle::TimestampOracle;
use crate::protocol::{KvRequest, KvResponse};
use crate::server::KvServer;
use crate::snapshot::SnapshotTracker;
use crate::txn::{ClientCore, KvHot, Txn};

/// Client handle to a key-value deployment.  Cheap to clone; each clone can
/// be used from its own thread.
#[derive(Clone)]
pub struct KvClient {
    core: Arc<ClientCore>,
}

impl KvClient {
    /// Creates a client from the deployment's shared pieces.  Most callers
    /// obtain clients from [`crate::KvDatabase::client`] instead.
    pub fn new(
        transport: Arc<dyn Transport<KvServer>>,
        oracle: TimestampOracle,
        snapshots: SnapshotTracker,
        cfg: KvConfig,
        stats: StatsRegistry,
    ) -> Self {
        // Enough workers that one commit round can cover every peer (the
        // calling thread takes one participant itself), without letting a
        // wide deployment spawn an unbounded thread count.  Lazy: no thread
        // exists until the first parallel round.
        let fanout = crate::fanout::FanoutPool::new(transport.num_servers().clamp(1, 8));
        let hot = KvHot::resolve(&stats);
        KvClient {
            core: Arc::new(ClientCore {
                transport,
                oracle,
                snapshots,
                cfg,
                stats,
                hot,
                retry_salt: std::sync::atomic::AtomicU64::new(0),
                fanout,
            }),
        }
    }

    /// Starts a new transaction.
    pub fn begin(&self) -> Txn {
        Txn::begin(Arc::clone(&self.core))
    }

    /// Runs `body` inside a transaction, committing it afterwards, and
    /// retries the whole transaction (up to a bounded number of attempts)
    /// when it aborts for a retryable reason — a write-write conflict, a
    /// lock timeout, or an availability failure (RPC timeout / server
    /// temporarily unreachable).  This is the standard usage pattern under
    /// snapshot isolation and what the layers above use for auto-commit
    /// operations.
    ///
    /// On exhaustion the caller receives [`Error::RetriesExhausted`] with
    /// the attempt count and the error from the final attempt, so "retried
    /// conflicts until the limit" and "the cluster is down" stay
    /// distinguishable.
    pub fn run_txn<T>(&self, mut body: impl FnMut(&Txn) -> Result<T>) -> Result<T> {
        const MAX_ATTEMPTS: usize = 24;
        let mut last_err = None;
        for attempt in 0..MAX_ATTEMPTS {
            let txn = self.begin();
            match body(&txn) {
                Ok(value) => match txn.commit() {
                    Ok(_) => return Ok(value),
                    Err(e) if e.is_retryable() => {
                        self.core.stats.counter("kv.txn_retries").inc();
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() => {
                    txn.abort();
                    self.core.stats.counter("kv.txn_retries").inc();
                    last_err = Some(e);
                }
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            }
            // Back off so the conflicting transaction (or the recovering
            // server) gets a chance; availability failures wait from the
            // first retry, conflicts only once retries repeat.
            let availability = last_err.as_ref().is_some_and(Error::is_availability);
            if availability || attempt > 2 {
                yesquel_common::timeutil::sleep_backoff(
                    attempt,
                    self.core.cfg.rpc_backoff_us,
                    self.core.cfg.rpc_backoff_cap_us,
                    0x5eed ^ attempt as u64,
                );
            }
        }
        Err(Error::RetriesExhausted {
            attempts: MAX_ATTEMPTS,
            last: Box::new(last_err.expect("exhaustion implies a retryable error occurred")),
        })
    }

    /// Number of storage servers in the deployment.
    pub fn num_servers(&self) -> usize {
        self.core.num_servers()
    }

    /// The statistics registry shared with the transport.
    pub fn stats(&self) -> &StatsRegistry {
        &self.core.stats
    }

    /// The key-value configuration this client operates under (retry
    /// budgets, backoff parameters; read-only).
    pub fn config(&self) -> &KvConfig {
        &self.core.cfg
    }

    /// The deployment's timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.core.oracle
    }

    /// Atomically allocates a block of `count` ids from the non-
    /// transactional counter stored at `obj`, returning the first id.
    /// Retried on availability failures: a retry after a lost response
    /// wastes a block of ids but never hands the same id out twice.
    pub fn allocate(&self, obj: ObjectId, count: u64) -> Result<u64> {
        let server = obj.home_server(self.num_servers());
        match self.core.call_retry(
            server,
            KvRequest::Allocate { obj, delta: count },
            self.core.cfg.rpc_max_attempts,
        )? {
            KvResponse::Allocated { start } => Ok(start),
            KvResponse::ServerError { message } => Err(Error::Io(message)),
            other => Err(Error::Internal(format!(
                "unexpected Allocate response: {other:?}"
            ))),
        }
    }

    /// Installs `value` at `obj` with timestamp 0, bypassing concurrency
    /// control.  Only for bulk-loading initial data before serving starts.
    pub fn load_unchecked(&self, obj: ObjectId, value: impl Into<Bytes>) -> Result<()> {
        let server = obj.home_server(self.num_servers());
        match self.core.call_retry(
            server,
            KvRequest::LoadUnchecked {
                obj,
                ts: 0,
                value: value.into(),
            },
            self.core.cfg.rpc_max_attempts,
        )? {
            KvResponse::Ok => Ok(()),
            KvResponse::ServerError { message } => Err(Error::Io(message)),
            other => Err(Error::Internal(format!(
                "unexpected Load response: {other:?}"
            ))),
        }
    }

    /// Runs one round of multi-version garbage collection on every server,
    /// bounded by the oldest active snapshot.
    pub fn run_gc(&self) -> Result<()> {
        let min_active = self
            .core
            .snapshots
            .min_active(self.core.oracle.last_timestamp());
        let keep = self.core.cfg.gc_keep_versions;
        for server in 0..self.num_servers() {
            self.core.call_retry(
                server,
                KvRequest::Gc {
                    min_active_ts: min_active,
                    keep_versions: keep,
                },
                self.core.cfg.rpc_max_attempts,
            )?;
        }
        Ok(())
    }

    /// Fetches a server's statistics.
    pub fn server_stats(&self, server: usize) -> Result<KvResponse> {
        self.core
            .call_retry(server, KvRequest::Stats, self.core.cfg.rpc_max_attempts)
    }

    /// Oldest active snapshot (diagnostics; `fallback` is returned when no
    /// transaction is running).
    pub fn min_active_snapshot(&self, fallback: Timestamp) -> Timestamp {
        self.core.snapshots.min_active(fallback)
    }
}
