//! The key-value client library linked into every Yesquel client process.

use std::sync::Arc;

use bytes::Bytes;
use yesquel_common::stats::StatsRegistry;
use yesquel_common::{Error, KvConfig, ObjectId, Result, Timestamp};
use yesquel_rpc::Transport;

use crate::oracle::TimestampOracle;
use crate::protocol::{KvRequest, KvResponse};
use crate::server::KvServer;
use crate::snapshot::SnapshotTracker;
use crate::txn::{ClientCore, Txn};

/// Client handle to a key-value deployment.  Cheap to clone; each clone can
/// be used from its own thread.
#[derive(Clone)]
pub struct KvClient {
    core: Arc<ClientCore>,
}

impl KvClient {
    /// Creates a client from the deployment's shared pieces.  Most callers
    /// obtain clients from [`crate::KvDatabase::client`] instead.
    pub fn new(
        transport: Arc<dyn Transport<KvServer>>,
        oracle: TimestampOracle,
        snapshots: SnapshotTracker,
        cfg: KvConfig,
        stats: StatsRegistry,
    ) -> Self {
        KvClient {
            core: Arc::new(ClientCore {
                transport,
                oracle,
                snapshots,
                cfg,
                stats,
            }),
        }
    }

    /// Starts a new transaction.
    pub fn begin(&self) -> Txn {
        Txn::begin(Arc::clone(&self.core))
    }

    /// Runs `body` inside a transaction, committing it afterwards, and
    /// retries the whole transaction (up to a bounded number of attempts)
    /// when it aborts for a retryable reason — a write-write conflict or a
    /// lock timeout.  This is the standard usage pattern under snapshot
    /// isolation and what the layers above use for auto-commit operations.
    pub fn run_txn<T>(&self, mut body: impl FnMut(&Txn) -> Result<T>) -> Result<T> {
        const MAX_ATTEMPTS: usize = 24;
        let mut last_err = Error::Internal("transaction retry limit reached".into());
        for attempt in 0..MAX_ATTEMPTS {
            let txn = self.begin();
            match body(&txn) {
                Ok(value) => match txn.commit() {
                    Ok(_) => return Ok(value),
                    Err(e) if e.is_retryable() => {
                        self.core.stats.counter("kv.txn_retries").inc();
                        last_err = e;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() => {
                    txn.abort();
                    self.core.stats.counter("kv.txn_retries").inc();
                    last_err = e;
                }
                Err(e) => {
                    txn.abort();
                    return Err(e);
                }
            }
            // Brief backoff to let the conflicting transaction finish.
            if attempt > 2 {
                std::thread::sleep(std::time::Duration::from_micros(50 * attempt as u64));
            }
        }
        Err(last_err)
    }

    /// Number of storage servers in the deployment.
    pub fn num_servers(&self) -> usize {
        self.core.num_servers()
    }

    /// The statistics registry shared with the transport.
    pub fn stats(&self) -> &StatsRegistry {
        &self.core.stats
    }

    /// The deployment's timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.core.oracle
    }

    /// Atomically allocates a block of `count` ids from the non-
    /// transactional counter stored at `obj`, returning the first id.
    pub fn allocate(&self, obj: ObjectId, count: u64) -> Result<u64> {
        let server = obj.home_server(self.num_servers());
        match self
            .core
            .transport
            .call(server, KvRequest::Allocate { obj, delta: count })?
        {
            KvResponse::Allocated { start } => Ok(start),
            other => Err(Error::Internal(format!(
                "unexpected Allocate response: {other:?}"
            ))),
        }
    }

    /// Installs `value` at `obj` with timestamp 0, bypassing concurrency
    /// control.  Only for bulk-loading initial data before serving starts.
    pub fn load_unchecked(&self, obj: ObjectId, value: impl Into<Bytes>) -> Result<()> {
        let server = obj.home_server(self.num_servers());
        match self.core.transport.call(
            server,
            KvRequest::LoadUnchecked {
                obj,
                ts: 0,
                value: value.into(),
            },
        )? {
            KvResponse::Ok => Ok(()),
            other => Err(Error::Internal(format!(
                "unexpected Load response: {other:?}"
            ))),
        }
    }

    /// Runs one round of multi-version garbage collection on every server,
    /// bounded by the oldest active snapshot.
    pub fn run_gc(&self) -> Result<()> {
        let min_active = self
            .core
            .snapshots
            .min_active(self.core.oracle.last_timestamp());
        let keep = self.core.cfg.gc_keep_versions;
        for server in 0..self.num_servers() {
            self.core.transport.call(
                server,
                KvRequest::Gc {
                    min_active_ts: min_active,
                    keep_versions: keep,
                },
            )?;
        }
        Ok(())
    }

    /// Fetches a server's statistics.
    pub fn server_stats(&self, server: usize) -> Result<KvResponse> {
        self.core.transport.call(server, KvRequest::Stats)
    }

    /// Oldest active snapshot (diagnostics; `fallback` is returned when no
    /// transaction is running).
    pub fn min_active_snapshot(&self, fallback: Timestamp) -> Timestamp {
        self.core.snapshots.min_active(fallback)
    }
}
