//! Per-server multi-version storage with prepare locks.
//!
//! Each storage server owns one [`ServerStore`]: a map from [`ObjectId`] to
//! the object's committed [`VersionChain`] plus, while a transaction is
//! between its prepare and commit phases, a **prepare lock** holding the
//! staged new value.  The store also owns the server's non-transactional
//! allocation counters (used for node-id and row-id allocation).
//!
//! ## Lock striping
//!
//! The store is **lock-striped**: objects are hash-partitioned over
//! [`SHARD_COUNT`] shards, each behind its own mutex, and statistics are
//! plain atomics.  The paper's headline property — a warm client touches one
//! server per point read — only buys scalability if that one server does not
//! serialize every request behind a single lock; with striping, concurrent
//! gets to different objects proceed in parallel, and the per-request cost
//! stays flat as client concurrency grows (the scale-independence argument
//! of the SCADS line of work).
//!
//! Multi-object operations (`prepare`, `commit_one_phase`) acquire the
//! shards they touch in **ascending shard order**, which makes concurrent
//! multi-shard validations deadlock-free.  `commit`/`abort` release locks
//! shard by shard; a reader that catches a transaction between two shards
//! simply sees a still-held prepare lock and retries, exactly as it would
//! had the commit message not arrived at that server yet — per-object
//! atomicity (the invariant snapshot isolation needs) is preserved by the
//! per-shard critical sections.
//!
//! ## Durability
//!
//! When constructed with a write-ahead log ([`ServerStore::with_wal`]),
//! every state transition a client can observe — a prepare ack, a commit, an
//! abort, an allocation — is appended to the log **before** it is
//! acknowledged or becomes visible, and the append returns only once the
//! record is durable per the configured fsync policy.  2PC decision records
//! (commit, abort, presumed abort) are appended while holding the outcomes
//! lock, so log order always matches the order in which this store decided
//! transaction fates; replaying the log after an amnesia crash therefore
//! reconstructs exactly the acknowledged history.  One-phase commits append
//! while holding their shard guards, which orders them against every
//! conflicting operation for the same reason.  GC is the one deliberately
//! volatile operation: versions it dropped reappear after recovery (a
//! harmless superset of committed state) until the next checkpoint prunes
//! them from the log.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard, RwLock};
use yesquel_common::ids::{shard_index, splitmix64};
use yesquel_common::{ObjectId, Result, ServerId, Timestamp, TxnId};
use yesquel_wal::{CheckpointSnapshot, PreparedImage, Wal, WalRecord, WalWrite};

use crate::mvcc::VersionChain;
use crate::protocol::WriteOp;

/// Number of lock stripes per server store.  Power of two; sized so that a
/// few dozen client threads rarely collide on a stripe while keeping the
/// per-store footprint negligible.
pub const SHARD_COUNT: usize = 32;

/// Result of reading an object at a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The visible value (or `None` if unwritten/deleted at the snapshot).
    Value(Option<Bytes>),
    /// The object is locked by a preparing transaction; retry shortly.
    Locked,
}

/// Result of prepare / one-phase-commit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareOutcome {
    /// Validation passed and locks are held.
    Prepared,
    /// Validation failed; nothing is locked.
    Conflict(String),
}

/// Result of a one-phase commit.  Distinct from [`PrepareOutcome`] because a
/// deduplicated retry must report the *original* commit timestamp, not the
/// one freshly drawn for the retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOnePhaseOutcome {
    /// Validation passed and the writes are installed at this timestamp.
    Committed(Timestamp),
    /// Validation failed (or the transaction had already aborted); nothing
    /// was installed.
    Conflict(String),
}

/// A prepare lock: the owning transaction and the value it intends to
/// install.
#[derive(Debug, Clone)]
struct PrepareLock {
    txn: TxnId,
    staged: Option<Bytes>,
}

/// Book-keeping for a transaction between its prepare and commit phases.
#[derive(Debug, Clone)]
struct PreparedTxn {
    /// Objects this transaction holds prepare locks on.
    objs: Vec<ObjectId>,
    /// Snapshot timestamp the prepare validated against (carried into
    /// checkpoint images so a recovered prepare is indistinguishable from a
    /// live one).
    start_ts: Timestamp,
    /// The transaction's primary participant (2PC commit point).
    primary: ServerId,
    /// When the coordinator's lease expires and the reaper may act.
    lease_deadline: Instant,
}

/// Recorded fate of a finished transaction, kept in a bounded FIFO so that
/// retried or duplicated prepare / commit / abort messages are recognized
/// and answered idempotently instead of re-applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed here at this timestamp.
    Committed(Timestamp),
    /// The transaction aborted here (explicitly or by presumed abort).
    Aborted,
}

/// Result of applying a `Commit` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The staged writes were installed (or had already been installed by an
    /// earlier delivery of the same commit) at this timestamp.
    Committed(Timestamp),
    /// The transaction was already aborted here — its lease expired and the
    /// reaper presumed abort — so there was nothing to install.
    AlreadyAborted,
}

/// One-round [`splitmix64`] hasher for `TxnId` keys.  The outcome and
/// prepared tables sit on the commit hot path, where SipHash (the `HashMap`
/// default) is measurable; a single multiply-xorshift round gives full
/// avalanche on a 64-bit id for a fraction of the cost.
#[derive(Default, Clone)]
struct TxnIdHasher(u64);

impl std::hash::Hasher for TxnIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("TxnId keys hash via write_u64");
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(x);
    }
}

type TxnIdMap<V> = HashMap<TxnId, V, std::hash::BuildHasherDefault<TxnIdHasher>>;

/// Bounded FIFO of transaction outcomes.
struct OutcomeTable {
    map: TxnIdMap<TxnOutcome>,
    order: VecDeque<TxnId>,
    cap: usize,
}

impl OutcomeTable {
    fn new(cap: usize) -> Self {
        OutcomeTable {
            map: TxnIdMap::default(),
            order: VecDeque::new(),
            cap: cap.max(16),
        }
    }

    fn get(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.map.get(&txn).copied()
    }

    /// Records an outcome.  A `Committed` record is never downgraded: a
    /// stale abort arriving after the commit installed must not rewrite
    /// history.
    fn record(&mut self, txn: TxnId, outcome: TxnOutcome) {
        match self.map.entry(txn) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if !matches!(e.get(), TxnOutcome::Committed(_)) {
                    e.insert(outcome);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(outcome);
                self.order.push_back(txn);
                if self.order.len() > self.cap {
                    if let Some(old) = self.order.pop_front() {
                        self.map.remove(&old);
                    }
                }
            }
        }
    }

    /// The retained outcomes in FIFO order, as checkpoint images
    /// (`Some(ts)` committed, `None` aborted).  Replaying these through
    /// [`OutcomeTable::record`] in order reconstructs the table exactly,
    /// eviction behavior included.
    fn fifo(&self) -> Vec<(TxnId, Option<Timestamp>)> {
        self.order
            .iter()
            .filter_map(|txn| {
                self.map.get(txn).map(|o| match o {
                    TxnOutcome::Committed(ts) => (*txn, Some(*ts)),
                    TxnOutcome::Aborted => (*txn, None),
                })
            })
            .collect()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// State of one object on one server.
#[derive(Debug, Default, Clone)]
struct ObjectState {
    chain: VersionChain,
    lock: Option<PrepareLock>,
}

/// Aggregate statistics of one server store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `Get` requests served.
    pub gets: u64,
    /// Number of prepares that acquired locks.
    pub prepares: u64,
    /// Number of commits applied (two-phase or one-phase).
    pub commits: u64,
    /// Number of aborts processed.
    pub aborts: u64,
    /// Number of validation failures.
    pub conflicts: u64,
    /// Number of reads that found a prepare lock.
    pub locked_reads: u64,
    /// Number of versions dropped by garbage collection.
    pub gc_dropped: u64,
    /// Number of retried or duplicated prepare/commit/abort messages that
    /// were answered from the outcome table instead of re-applied.
    pub dedup_hits: u64,
}

/// Atomic counters behind [`StoreStats`]; updated without any lock so the
/// striped hot paths never serialize on statistics.
#[derive(Default)]
struct StatsCells {
    gets: AtomicU64,
    prepares: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    locked_reads: AtomicU64,
    gc_dropped: AtomicU64,
    dedup_hits: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            locked_reads: self.locked_reads.load(Ordering::Relaxed),
            gc_dropped: self.gc_dropped.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }
}

/// One lock stripe: the objects whose ids hash to this shard.
#[derive(Default)]
struct Shard {
    objects: HashMap<ObjectId, ObjectState>,
}

/// The storage of one server.  All methods are safe to call concurrently;
/// object state is partitioned over [`SHARD_COUNT`] independently locked
/// shards, so requests for different objects proceed in parallel.
pub struct ServerStore {
    shards: Vec<Mutex<Shard>>,
    /// In-flight prepared transactions (objects locked, primary, lease), so
    /// commit and abort do not need to scan the whole store.  Touched once
    /// per prepare/commit/abort, never per object, so one small mutex
    /// suffices.
    prepared: Mutex<TxnIdMap<PreparedTxn>>,
    /// Lock-free hint mirroring `prepared.len()`, so the piggybacked reaper
    /// can skip clock reads and locking entirely while no transaction is in
    /// the prepared state (the overwhelmingly common case).  Only a hint:
    /// the reaper re-checks under the real lock.
    prepared_hint: AtomicU64,
    /// Fates of finished transactions, for deduplicating retried and
    /// duplicated prepare / commit / abort messages.
    outcomes: Mutex<OutcomeTable>,
    /// Non-transactional allocation counters (a handful of objects per tree;
    /// not on the read/commit hot path).
    counters: Mutex<HashMap<ObjectId, u64>>,
    /// The write-ahead log, if this store is durable.  `None` keeps the
    /// store purely in-memory with zero logging overhead.
    wal: Option<Arc<Wal>>,
    /// Checkpoint gate: every mutating operation holds `read` across its
    /// append-then-apply critical section; [`ServerStore::checkpoint`] takes
    /// `write`, so a snapshot can never observe (and a log rotation can
    /// never drop) a record whose in-memory effect is still in flight.
    ckpt_gate: RwLock<()>,
    stats: StatsCells,
}

impl Default for ServerStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStore {
    /// Creates an empty store with the default outcome retention.
    pub fn new() -> Self {
        Self::with_outcome_retention(4_096)
    }

    /// Creates an empty store retaining up to `retention` transaction
    /// outcomes for message deduplication.
    pub fn with_outcome_retention(retention: usize) -> Self {
        Self::with_wal(retention, None)
    }

    /// Creates an empty store backed by `wal` (when `Some`): every
    /// acknowledgeable state change is logged before it is acknowledged.
    /// Call [`ServerStore::replay`] with the log's recovered records to
    /// restore pre-crash state.
    pub fn with_wal(retention: usize, wal: Option<Arc<Wal>>) -> Self {
        ServerStore {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            prepared: Mutex::new(TxnIdMap::default()),
            prepared_hint: AtomicU64::new(0),
            outcomes: Mutex::new(OutcomeTable::new(retention)),
            counters: Mutex::new(HashMap::new()),
            wal,
            ckpt_gate: RwLock::new(()),
            stats: StatsCells::default(),
        }
    }

    /// The write-ahead log backing this store, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Appends to the write-ahead log (durable per the log's fsync policy
    /// before returning), or does nothing for an in-memory store.
    fn wal_append(&self, rec: &WalRecord) -> Result<()> {
        match &self.wal {
            Some(w) => w.append(rec),
            None => Ok(()),
        }
    }

    /// Shard index of an object.  Mixes both halves of the id so that the
    /// nodes of one tree spread over the stripes.
    fn shard_of(&self, obj: ObjectId) -> usize {
        shard_index(obj.tree, obj.oid, 0x5851_f42d_4c95_7f2d, SHARD_COUNT)
    }

    /// Locks, in ascending shard order, every shard touched by `writes`.
    /// Returns the sorted deduplicated shard ids alongside their guards.
    fn lock_shards_for(&self, writes: &[WriteOp]) -> Vec<(usize, MutexGuard<'_, Shard>)> {
        let mut ids: Vec<usize> = writes.iter().map(|w| self.shard_of(w.obj)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|i| (i, self.shards[i].lock()))
            .collect()
    }

    /// The guard covering `obj` within a `lock_shards_for` result.
    fn guard_for<'a, 'g>(
        &self,
        guards: &'a mut [(usize, MutexGuard<'g, Shard>)],
        obj: ObjectId,
    ) -> &'a mut Shard {
        let shard = self.shard_of(obj);
        let pos = guards
            .binary_search_by_key(&shard, |(i, _)| *i)
            .expect("object's shard must be among the locked shards");
        &mut guards[pos].1
    }

    /// Reads `obj` at snapshot `ts`.
    pub fn get(&self, obj: ObjectId, ts: Timestamp) -> ReadOutcome {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of(obj)].lock();
        match shard.objects.get(&obj) {
            None => ReadOutcome::Value(None),
            Some(state) => {
                if state.lock.is_some() {
                    self.stats.locked_reads.fetch_add(1, Ordering::Relaxed);
                    ReadOutcome::Locked
                } else {
                    ReadOutcome::Value(state.chain.read_at(ts))
                }
            }
        }
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`, with a generous lease and this server as primary.
    /// Convenience wrapper used by single-store tests; the server dispatch
    /// path goes through [`ServerStore::prepare_leased`].
    pub fn prepare(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
    ) -> Result<PrepareOutcome> {
        self.prepare_leased(txn, start_ts, writes, 0, Duration::from_secs(3600))
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`.  Either all writes are locked or none are.  The locks
    /// are leased: if neither `Commit` nor `Abort` arrives within `lease`,
    /// the reaper may resolve the transaction through its `primary`
    /// participant (presumed abort).
    ///
    /// Idempotent under retries and duplicate deliveries: re-preparing an
    /// already-prepared transaction refreshes its lease and reports
    /// `Prepared`; re-preparing one that already committed reports
    /// `Prepared` (the coordinator will proceed to a deduplicated commit);
    /// re-preparing one that was already aborted reports a conflict so the
    /// coordinator cannot resurrect a reaped transaction.
    ///
    /// Durable stores log the prepare — staged writes, primary, snapshot —
    /// **before** reporting `Prepared`, so a crash after the ack leaves the
    /// prepared state (and the coordinator's ability to commit it)
    /// recoverable.  An `Err` means the log append failed; nothing is
    /// acknowledged and the locks taken for this prepare are released.
    pub fn prepare_leased(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        primary: ServerId,
        lease: Duration,
    ) -> Result<PrepareOutcome> {
        match self.outcomes.lock().get(txn) {
            Some(TxnOutcome::Committed(_)) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareOutcome::Prepared);
            }
            Some(TxnOutcome::Aborted) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareOutcome::Conflict(format!(
                    "txn {txn} was already aborted (presumed abort)"
                )));
            }
            None => {}
        }
        let _ckpt = self.ckpt_gate.read();
        let mut guards = self.lock_shards_for(writes);
        // Validation pass: no lock held by another transaction, and no
        // committed version newer than the snapshot (first-committer-wins).
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                return Ok(PrepareOutcome::Conflict(reason));
            }
        }
        // Lock pass.
        let mut locked = Vec::with_capacity(writes.len());
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.lock = Some(PrepareLock {
                txn,
                staged: w.value.clone(),
            });
            locked.push(w.obj);
        }
        drop(guards);
        // Log before the ack, but after dropping the shard guards: the
        // prepare locks already block conflicting validations, so nothing
        // can slip past while the (possibly fsync-blocking) append runs, and
        // same-shard readers are not stalled behind the disk.  The
        // checkpoint gate is still held, so a checkpoint cannot rotate the
        // log between this append and the prepared-table insert below.
        if let Err(e) = self.wal_append(&WalRecord::Prepare {
            txn,
            start_ts,
            primary,
            writes: Self::to_wal_writes(writes),
        }) {
            // The prepare is not acknowledged; roll the locks back.
            self.release_locks_of(txn, writes.iter().map(|w| w.obj));
            return Err(e);
        }
        // Insert (not extend): a duplicate prepare carries the same writes,
        // so replacing the entry both deduplicates the object list and
        // refreshes the coordinator's lease.
        let replaced = self.prepared.lock().insert(
            txn,
            PreparedTxn {
                objs: locked,
                start_ts,
                primary,
                lease_deadline: Instant::now() + lease,
            },
        );
        if replaced.is_none() {
            self.prepared_hint.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.prepares.fetch_add(1, Ordering::Relaxed);
        Ok(PrepareOutcome::Prepared)
    }

    /// Converts protocol write-ops into their log representation.
    fn to_wal_writes(writes: &[WriteOp]) -> Vec<WalWrite> {
        writes
            .iter()
            .map(|w| WalWrite {
                obj: w.obj,
                value: w.value.clone(),
            })
            .collect()
    }

    /// Releases any prepare locks held by `txn` on `objs` (rollback path).
    fn release_locks_of(&self, txn: TxnId, objs: impl Iterator<Item = ObjectId>) {
        for obj in objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                if state.lock.as_ref().map(|l| l.txn == txn).unwrap_or(false) {
                    state.lock = None;
                }
            }
        }
    }

    /// First-committer-wins and lock-conflict validation of one write within
    /// its (locked) shard; returns a failure reason or `None`.
    fn validate_one(shard: &Shard, txn: TxnId, start_ts: Timestamp, w: &WriteOp) -> Option<String> {
        if let Some(state) = shard.objects.get(&w.obj) {
            if let Some(lock) = &state.lock {
                if lock.txn != txn {
                    return Some(format!("object {} locked by txn {}", w.obj, lock.txn));
                }
            }
            if state.chain.has_newer_than(start_ts) {
                return Some(format!(
                    "object {} has a version newer than snapshot {}",
                    w.obj, start_ts
                ));
            }
        }
        None
    }

    /// Installs the versions staged by a successful prepare of `txn` at
    /// `commit_ts` and releases the locks.  Idempotent, as phase two must
    /// be: a re-delivered commit answers from the outcome table, and a
    /// commit for a transaction this store has never heard of is treated as
    /// presumed-aborted (the only way a commit can reference an unknown
    /// transaction is that the reaper already expired its prepare).
    ///
    /// Durable stores append the decision record — `Commit`, or `Abort` for
    /// the presumed-abort branch — while holding the outcomes lock and
    /// **before** recording it in memory.  Both halves of that ordering
    /// matter: a fate must never be observable (by a `TxnStatus` probe, and
    /// through it a secondary participant) before it is durable, and
    /// because every fate-deciding path serializes on the outcomes lock,
    /// the log's record order always matches the decision order, so replay
    /// reconstructs the same history even when a commit raced the reaper.
    pub fn commit(&self, txn: TxnId, commit_ts: Timestamp) -> Result<CommitOutcome> {
        let _ckpt = self.ckpt_gate.read();
        let entry = {
            let mut outcomes = self.outcomes.lock();
            // Fast path first: a live prepared entry.  A duplicate commit
            // racing us serializes on the outcomes lock, loses the removal,
            // and falls through to the outcome table, which we fill while
            // still holding that lock.  (Only fate-deciding paths remove
            // prepared entries, and all of them hold the outcomes lock, so
            // the entry cannot vanish between this check and the removal
            // after the append.)
            let is_prepared = self.prepared.lock().contains_key(&txn);
            if is_prepared {
                self.wal_append(&WalRecord::Commit { txn, commit_ts })?;
            }
            match self.prepared.lock().remove(&txn) {
                Some(p) => {
                    self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
                    outcomes.record(txn, TxnOutcome::Committed(commit_ts));
                    p
                }
                None => {
                    // Not prepared here: either a duplicate delivery
                    // (answer from the outcome table) or a commit for a
                    // transaction this store never prepared (presume abort).
                    return match outcomes.get(txn) {
                        Some(TxnOutcome::Committed(ts)) => {
                            self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            Ok(CommitOutcome::Committed(ts))
                        }
                        Some(TxnOutcome::Aborted) => {
                            self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            Ok(CommitOutcome::AlreadyAborted)
                        }
                        None => {
                            // The presumed abort is itself a decision: make
                            // it durable before answering, or a post-crash
                            // duplicate of this commit could succeed after
                            // its coordinator was already told "aborted".
                            self.wal_append(&WalRecord::Abort { txn })?;
                            outcomes.record(txn, TxnOutcome::Aborted);
                            Ok(CommitOutcome::AlreadyAborted)
                        }
                    };
                }
            }
        };
        for obj in entry.objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                match state.lock.take() {
                    Some(lock) if lock.txn == txn => {
                        state.chain.install(commit_ts, lock.staged);
                    }
                    other => {
                        // Lock stolen or missing: put it back if it belongs
                        // to someone else.  This cannot happen in the current
                        // protocol (locks are only released by their owner),
                        // but stay defensive.
                        state.lock = other.filter(|l| l.txn != txn);
                    }
                }
            }
        }
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        Ok(CommitOutcome::Committed(commit_ts))
    }

    /// Validates and installs `writes` in one step, assigning `commit_ts`.
    /// Used by one-phase commit, where the caller obtains a commit timestamp
    /// via the server-side oracle handle.
    ///
    /// Durable stores append the record while still holding the shard
    /// guards, after validation and before installation: the guards order
    /// the append against every conflicting writer, and log-before-install
    /// means an `Err` return guarantees nothing was applied.  The append is
    /// the group-commit hot path — concurrent one-phase committers on
    /// disjoint shards coalesce into a single fsync.
    pub fn commit_one_phase(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        commit_ts: Timestamp,
    ) -> Result<CommitOnePhaseOutcome> {
        // Dedup: a retried one-phase commit (its first response was lost)
        // must report the original fate, not re-validate — re-validation
        // would see the transaction's own installed versions as "newer than
        // snapshot" and wrongly report a conflict.
        match self.outcomes.lock().get(txn) {
            Some(TxnOutcome::Committed(ts)) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CommitOnePhaseOutcome::Committed(ts));
            }
            Some(TxnOutcome::Aborted) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CommitOnePhaseOutcome::Conflict(format!(
                    "txn {txn} already aborted (duplicate one-phase commit)"
                )));
            }
            None => {}
        }
        let _ckpt = self.ckpt_gate.read();
        let mut guards = self.lock_shards_for(writes);
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                // A conflict changes no state, so it is not logged; the
                // in-memory abort record only serves duplicate deliveries
                // within this incarnation.
                self.outcomes.lock().record(txn, TxnOutcome::Aborted);
                return Ok(CommitOnePhaseOutcome::Conflict(reason));
            }
        }
        self.wal_append(&WalRecord::CommitOnePhase {
            txn,
            commit_ts,
            writes: Self::to_wal_writes(writes),
        })?;
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.chain.install(commit_ts, w.value.clone());
        }
        // Record the fate before the shard guards drop so a racing duplicate
        // cannot slip between installation and the record.
        self.outcomes
            .lock()
            .record(txn, TxnOutcome::Committed(commit_ts));
        drop(guards);
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        Ok(CommitOnePhaseOutcome::Committed(commit_ts))
    }

    /// Releases every lock held by `txn` and discards its staged writes.
    /// Idempotent; records an `Aborted` outcome (never overwriting a
    /// commit) so duplicate prepares and commits of this transaction are
    /// refused from then on.
    ///
    /// Durable stores log the abort before it becomes observable (same
    /// outcomes-lock ordering as [`ServerStore::commit`]); a duplicate
    /// abort of an already-aborted, no-longer-prepared transaction is
    /// answered without touching the log.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let _ckpt = self.ckpt_gate.read();
        let entry = {
            let mut outcomes = self.outcomes.lock();
            if let Some(TxnOutcome::Committed(_)) = outcomes.get(txn) {
                // A stale abort after the commit installed: ignore.
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            let already_aborted = matches!(outcomes.get(txn), Some(TxnOutcome::Aborted));
            let is_prepared = self.prepared.lock().contains_key(&txn);
            if !already_aborted || is_prepared {
                self.wal_append(&WalRecord::Abort { txn })?;
            }
            let entry = self.prepared.lock().remove(&txn);
            if entry.is_some() {
                self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
            }
            outcomes.record(txn, TxnOutcome::Aborted);
            entry
        };
        let Some(entry) = entry else {
            self.stats.aborts.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        for obj in entry.objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                if state.lock.as_ref().map(|l| l.txn == txn).unwrap_or(false) {
                    state.lock = None;
                }
            }
        }
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// What this store knows about `txn`'s fate (outcome table only; a
    /// still-prepared transaction reports `None` — see
    /// [`ServerStore::is_prepared`]).
    pub fn outcome(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.outcomes.lock().get(txn)
    }

    /// True if `txn` is currently prepared (locks held) at this store.
    pub fn is_prepared(&self, txn: TxnId) -> bool {
        self.prepared.lock().contains_key(&txn)
    }

    /// Number of transactions currently holding prepare locks.
    pub fn prepared_count(&self) -> usize {
        self.prepared.lock().len()
    }

    /// Lock-free check for "is anything prepared at all", the reaper's
    /// fast-path gate.  Approximate during concurrent prepare/commit, exact
    /// when quiescent.
    pub fn has_prepared(&self) -> bool {
        self.prepared_hint.load(Ordering::Relaxed) != 0
    }

    /// Prepared transactions whose coordinator lease expired before `now`,
    /// with their primary participant.  Collected under the lock and
    /// returned by value so the caller (the reaper) can resolve them — which
    /// involves RPCs — without holding any store lock.
    pub fn expired_prepared(&self, now: Instant) -> Vec<(TxnId, ServerId)> {
        self.prepared
            .lock()
            .iter()
            .filter(|(_, p)| p.lease_deadline <= now)
            .map(|(txn, p)| (*txn, p.primary))
            .collect()
    }

    /// Committed version history of `obj`, newest first, as
    /// `(timestamp, value)` pairs.  White-box accessor for durability and
    /// double-apply assertions in the chaos tests.
    pub fn dump_versions(&self, obj: ObjectId) -> Vec<(Timestamp, Option<Bytes>)> {
        let shard = self.shards[self.shard_of(obj)].lock();
        shard
            .objects
            .get(&obj)
            .map(|state| {
                state
                    .chain
                    .versions()
                    .iter()
                    .map(|v| (v.ts, v.value.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Atomically adds `delta` to the counter at `obj`, returning the
    /// pre-increment value.  Durable stores log the post-increment value
    /// before acknowledging (replay takes the maximum, so concurrent
    /// allocations commute); losing an acknowledged allocation would hand
    /// out already-used ids after recovery.
    pub fn allocate(&self, obj: ObjectId, delta: u64) -> Result<u64> {
        let _ckpt = self.ckpt_gate.read();
        let (start, value) = {
            let mut g = self.counters.lock();
            let c = g.entry(obj).or_insert(0);
            let start = *c;
            *c += delta;
            (start, *c)
        };
        // On append failure the in-memory counter stays advanced: the ids
        // are burned, never re-issued, which is safe for id allocation.
        self.wal_append(&WalRecord::Alloc { obj, value })?;
        Ok(start)
    }

    /// Installs a version directly, bypassing concurrency control (bulk
    /// loading only).
    pub fn load_unchecked(&self, obj: ObjectId, ts: Timestamp, value: Bytes) -> Result<()> {
        let _ckpt = self.ckpt_gate.read();
        {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            shard
                .objects
                .entry(obj)
                .or_default()
                .chain
                .install(ts, Some(value.clone()));
        }
        self.wal_append(&WalRecord::Load { obj, ts, value })
    }

    /// Drops every piece of volatile state — committed versions, prepare
    /// locks, the prepared table, the outcome table, allocation counters —
    /// as an amnesia crash would.  Statistics survive: they are
    /// observability, not state, and resetting them mid-chaos-run would
    /// hide what happened before the crash.
    pub fn wipe_volatile(&self) {
        let _gate = self.ckpt_gate.write();
        for shard in &self.shards {
            shard.lock().objects.clear();
        }
        self.prepared.lock().clear();
        self.prepared_hint.store(0, Ordering::Relaxed);
        self.outcomes.lock().clear();
        self.counters.lock().clear();
    }

    /// Replays the clean-prefix records recovered from the log into this
    /// store.  Must run on a freshly wiped (or freshly constructed) store
    /// before it serves traffic.  Recovered prepares get `lease` from now:
    /// their coordinators may be gone, and the presumed-abort reaper
    /// resolves them through their primary once the lease runs out.
    /// Returns the number of transaction fates restored.
    pub fn replay(&self, records: &[WalRecord], lease: Duration) -> u64 {
        let mut recovered = 0u64;
        for rec in records {
            match rec {
                WalRecord::Checkpoint(snap) => {
                    recovered += self.apply_checkpoint(snap, lease);
                }
                WalRecord::Prepare {
                    txn,
                    start_ts,
                    primary,
                    writes,
                } => {
                    // A prepare whose fate appears earlier in the log was
                    // already resolved; do not resurrect its locks.
                    if self.outcomes.lock().get(*txn).is_some() {
                        continue;
                    }
                    self.restore_prepared(*txn, *start_ts, *primary, writes, lease);
                }
                WalRecord::Commit { txn, commit_ts } => {
                    // Install the staged writes of the restored prepare; a
                    // commit record without one lost a race to an abort
                    // record earlier in the log and is skipped, exactly as
                    // the live path skipped it.
                    let entry = {
                        let mut outcomes = self.outcomes.lock();
                        let p = self.prepared.lock().remove(txn);
                        if p.is_some() {
                            self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
                            outcomes.record(*txn, TxnOutcome::Committed(*commit_ts));
                        }
                        p
                    };
                    if let Some(entry) = entry {
                        for obj in entry.objs {
                            let mut shard = self.shards[self.shard_of(obj)].lock();
                            if let Some(state) = shard.objects.get_mut(&obj) {
                                if let Some(lock) = state.lock.take() {
                                    if lock.txn == *txn {
                                        state.chain.install(*commit_ts, lock.staged);
                                    } else {
                                        state.lock = Some(lock);
                                    }
                                }
                            }
                        }
                        recovered += 1;
                    }
                }
                WalRecord::CommitOnePhase {
                    txn,
                    commit_ts,
                    writes,
                } => {
                    if matches!(
                        self.outcomes.lock().get(*txn),
                        Some(TxnOutcome::Committed(_))
                    ) {
                        continue;
                    }
                    for w in writes {
                        let mut shard = self.shards[self.shard_of(w.obj)].lock();
                        shard
                            .objects
                            .entry(w.obj)
                            .or_default()
                            .chain
                            .install(*commit_ts, w.value.clone());
                    }
                    self.outcomes
                        .lock()
                        .record(*txn, TxnOutcome::Committed(*commit_ts));
                    recovered += 1;
                }
                WalRecord::Abort { txn } => {
                    if matches!(
                        self.outcomes.lock().get(*txn),
                        Some(TxnOutcome::Committed(_))
                    ) {
                        continue;
                    }
                    let entry = self.prepared.lock().remove(txn);
                    if entry.is_some() {
                        self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
                    }
                    if let Some(entry) = entry {
                        self.release_locks_of(*txn, entry.objs.into_iter());
                    }
                    self.outcomes.lock().record(*txn, TxnOutcome::Aborted);
                    recovered += 1;
                }
                WalRecord::Alloc { obj, value } => {
                    let mut g = self.counters.lock();
                    let c = g.entry(*obj).or_insert(0);
                    *c = (*c).max(*value);
                }
                WalRecord::Load { obj, ts, value } => {
                    let mut shard = self.shards[self.shard_of(*obj)].lock();
                    shard
                        .objects
                        .entry(*obj)
                        .or_default()
                        .chain
                        .install(*ts, Some(value.clone()));
                }
            }
        }
        recovered
    }

    /// Restores one prepared transaction: its locks, staged writes, and
    /// prepared-table entry with a fresh lease.
    fn restore_prepared(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        primary: ServerId,
        writes: &[WalWrite],
        lease: Duration,
    ) {
        for w in writes {
            let mut shard = self.shards[self.shard_of(w.obj)].lock();
            let state = shard.objects.entry(w.obj).or_default();
            state.lock = Some(PrepareLock {
                txn,
                staged: w.value.clone(),
            });
        }
        let replaced = self.prepared.lock().insert(
            txn,
            PreparedTxn {
                objs: writes.iter().map(|w| w.obj).collect(),
                start_ts,
                primary,
                lease_deadline: Instant::now() + lease,
            },
        );
        if replaced.is_none() {
            self.prepared_hint.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Applies a checkpoint snapshot (the first record of a rotated
    /// segment): version chains, counters, the outcome table in its
    /// original FIFO order, and in-flight prepares.
    fn apply_checkpoint(&self, snap: &CheckpointSnapshot, lease: Duration) -> u64 {
        for (obj, chain) in &snap.versions {
            let mut shard = self.shards[self.shard_of(*obj)].lock();
            let state = shard.objects.entry(*obj).or_default();
            for (ts, value) in chain {
                state.chain.install(*ts, value.clone());
            }
        }
        {
            let mut g = self.counters.lock();
            for (obj, value) in &snap.counters {
                let c = g.entry(*obj).or_insert(0);
                *c = (*c).max(*value);
            }
        }
        {
            let mut outcomes = self.outcomes.lock();
            for (txn, fate) in &snap.outcomes {
                let outcome = match fate {
                    Some(ts) => TxnOutcome::Committed(*ts),
                    None => TxnOutcome::Aborted,
                };
                outcomes.record(*txn, outcome);
            }
        }
        for p in &snap.prepared {
            self.restore_prepared(p.txn, p.start_ts, p.primary, &p.writes, lease);
        }
        snap.outcomes.len() as u64
    }

    /// Snapshots the entire store into a fresh log segment and truncates
    /// the older ones ([`Wal::checkpoint`]).  Takes the checkpoint gate in
    /// write mode plus every store lock, so the snapshot is a consistent
    /// cut: no operation can be between its log append and its in-memory
    /// application while the snapshot is taken.  No-op for an in-memory
    /// store.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = self.wal.clone() else {
            return Ok(());
        };
        let _gate = self.ckpt_gate.write();
        let guards: Vec<MutexGuard<'_, Shard>> = self.shards.iter().map(|s| s.lock()).collect();
        let prepared = self.prepared.lock();
        let outcomes = self.outcomes.lock();
        let counters = self.counters.lock();
        let mut versions = Vec::new();
        for guard in &guards {
            for (obj, state) in &guard.objects {
                let chain: Vec<(Timestamp, Option<Bytes>)> = state
                    .chain
                    .versions()
                    .iter()
                    .map(|v| (v.ts, v.value.clone()))
                    .collect();
                if !chain.is_empty() {
                    versions.push((*obj, chain));
                }
            }
        }
        let prepared_images = prepared
            .iter()
            .map(|(txn, p)| PreparedImage {
                txn: *txn,
                start_ts: p.start_ts,
                primary: p.primary,
                writes: p
                    .objs
                    .iter()
                    .filter_map(|obj| {
                        guards[self.shard_of(*obj)]
                            .objects
                            .get(obj)
                            .and_then(|state| state.lock.as_ref())
                            .filter(|lock| lock.txn == *txn)
                            .map(|lock| WalWrite {
                                obj: *obj,
                                value: lock.staged.clone(),
                            })
                    })
                    .collect(),
            })
            .collect();
        let snap = CheckpointSnapshot {
            versions,
            counters: counters.iter().map(|(k, v)| (*k, *v)).collect(),
            outcomes: outcomes.fifo(),
            prepared: prepared_images,
        };
        wal.checkpoint(snap)
    }

    /// Garbage-collects old versions given the oldest active snapshot.
    /// Returns the number of versions dropped.  Shards are collected one at
    /// a time so GC never stalls the whole store.
    pub fn gc(&self, min_active_ts: Timestamp, keep_versions: usize) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut g = shard.lock();
            let mut dead = Vec::new();
            for (obj, state) in g.objects.iter_mut() {
                dropped += state.chain.gc(min_active_ts, keep_versions) as u64;
                if state.lock.is_none() && state.chain.is_fully_dead(min_active_ts) {
                    dead.push(*obj);
                }
            }
            for obj in dead {
                g.objects.remove(&obj);
            }
        }
        self.stats.gc_dropped.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Snapshot of the store's statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().objects.len() as u64)
            .sum()
    }

    /// Total number of committed versions currently stored.
    pub fn version_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .objects
                    .values()
                    .map(|o| o.chain.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Highest timestamp and transaction id observable in this store: the
    /// maximum over installed versions, prepare locks, prepared entries and
    /// retained outcomes.  The deployment layer calls this after recovery to
    /// advance the timestamp oracle past everything the previous incarnation
    /// issued — otherwise fresh snapshots could not see recovered versions,
    /// and reused transaction ids would collide with the outcome table.
    pub fn high_water(&self) -> (Timestamp, TxnId) {
        let mut ts: Timestamp = 0;
        let mut txn: TxnId = 0;
        for shard in &self.shards {
            let guard = shard.lock();
            for state in guard.objects.values() {
                if let Some(v) = state.chain.versions().last() {
                    ts = ts.max(v.ts);
                }
                if let Some(lock) = &state.lock {
                    txn = txn.max(lock.txn);
                }
            }
        }
        for (id, p) in self.prepared.lock().iter() {
            txn = txn.max(*id);
            ts = ts.max(p.start_ts);
        }
        for (id, commit_ts) in self.outcomes.lock().fifo() {
            txn = txn.max(id);
            if let Some(c) = commit_ts {
                ts = ts.max(c);
            }
        }
        (ts, txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(1, o)
    }

    fn w(o: u64, v: &str) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: Some(Bytes::copy_from_slice(v.as_bytes())),
        }
    }

    fn del(o: u64) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: None,
        }
    }

    #[test]
    fn prepare_commit_read_cycle() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a"), w(2, "b")]).unwrap(),
            PrepareOutcome::Prepared
        );
        // Reads see the lock, not the staged value.
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Locked);
        s.commit(1, 10).unwrap();
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 9), ReadOutcome::Value(None));
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn conflict_on_newer_version() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a")]).unwrap(),
            PrepareOutcome::Prepared
        );
        s.commit(1, 10).unwrap();
        // A transaction that started before ts 10 cannot overwrite object 1.
        match s.prepare(2, 5, &[w(1, "b")]).unwrap() {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.stats().conflicts, 1);
        // A later snapshot can.
        assert_eq!(
            s.prepare(3, 11, &[w(1, "c")]).unwrap(),
            PrepareOutcome::Prepared
        );
        s.commit(3, 12).unwrap();
        assert_eq!(
            s.get(obj(1), 20),
            ReadOutcome::Value(Some(Bytes::from_static(b"c")))
        );
    }

    #[test]
    fn conflict_on_foreign_lock_and_abort_releases() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a")]).unwrap(),
            PrepareOutcome::Prepared
        );
        match s.prepare(2, 6, &[w(1, "b")]).unwrap() {
            PrepareOutcome::Conflict(msg) => assert!(msg.contains("locked")),
            other => panic!("expected conflict, got {other:?}"),
        }
        s.abort(1).unwrap();
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        assert_eq!(
            s.prepare(2, 6, &[w(1, "b")]).unwrap(),
            PrepareOutcome::Prepared
        );
        s.commit(2, 7).unwrap();
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"b")))
        );
    }

    #[test]
    fn delete_writes_tombstone() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]).unwrap();
        s.commit(1, 2).unwrap();
        s.prepare(2, 3, &[del(1)]).unwrap();
        s.commit(2, 4).unwrap();
        assert_eq!(
            s.get(obj(1), 3),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(None));
    }

    #[test]
    fn one_phase_commit_validates_and_installs() {
        let s = ServerStore::new();
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 5).unwrap(),
            CommitOnePhaseOutcome::Committed(5)
        );
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        // Stale snapshot conflicts.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 6).unwrap() {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
    }

    #[test]
    fn allocate_is_monotone() {
        let s = ServerStore::new();
        assert_eq!(s.allocate(obj(9), 10).unwrap(), 0);
        assert_eq!(s.allocate(obj(9), 5).unwrap(), 10);
        assert_eq!(s.allocate(obj(9), 1).unwrap(), 15);
        assert_eq!(s.allocate(obj(8), 1).unwrap(), 0);
    }

    #[test]
    fn gc_drops_old_versions_and_dead_objects() {
        let s = ServerStore::new();
        for i in 0..5u64 {
            s.prepare(i, 2 * i, &[w(1, &format!("v{i}"))]).unwrap();
            s.commit(i, 2 * i + 1).unwrap();
        }
        assert_eq!(s.version_count(), 5);
        let dropped = s.gc(100, 1);
        assert_eq!(dropped, 4);
        assert_eq!(s.version_count(), 1);
        // Delete the object entirely, then GC removes it from the map.
        s.prepare(10, 50, &[del(1)]).unwrap();
        s.commit(10, 51).unwrap();
        s.gc(100, 1);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn bulk_load_visible_to_all_snapshots() {
        let s = ServerStore::new();
        s.load_unchecked(obj(1), 0, Bytes::from_static(b"seed"))
            .unwrap();
        assert_eq!(
            s.get(obj(1), 1),
            ReadOutcome::Value(Some(Bytes::from_static(b"seed")))
        );
    }

    #[test]
    fn commit_unknown_txn_presumes_abort() {
        let s = ServerStore::new();
        // A commit for a transaction this store never prepared can only be
        // the tail of a reaped transaction: refuse it.
        assert_eq!(s.commit(999, 5).unwrap(), CommitOutcome::AlreadyAborted);
        s.abort(999).unwrap();
        assert_eq!(s.object_count(), 0);
        assert_eq!(s.outcome(999), Some(TxnOutcome::Aborted));
    }

    #[test]
    fn duplicate_commit_and_abort_are_deduped() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a")]).unwrap(),
            PrepareOutcome::Prepared
        );
        assert_eq!(s.commit(1, 10).unwrap(), CommitOutcome::Committed(10));
        // Retried commit (response was lost): same answer, nothing re-done.
        assert_eq!(s.commit(1, 10).unwrap(), CommitOutcome::Committed(10));
        // A stale abort after the commit must not erase it.
        s.abort(1).unwrap();
        assert_eq!(s.outcome(1), Some(TxnOutcome::Committed(10)));
        assert_eq!(
            s.get(obj(1), 20),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.version_count(), 1, "commit must not double-install");
        assert!(s.stats().dedup_hits >= 2);
    }

    #[test]
    fn duplicate_prepare_is_idempotent() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a")]).unwrap(),
            PrepareOutcome::Prepared
        );
        // Duplicate delivery of the same prepare: still prepared, exactly
        // one lock, exactly one prepared entry.
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a")]).unwrap(),
            PrepareOutcome::Prepared
        );
        assert_eq!(s.prepared_count(), 1);
        s.commit(1, 10).unwrap();
        assert_eq!(s.version_count(), 1);
        assert_eq!(s.prepared_count(), 0);
    }

    #[test]
    fn lease_expiry_feeds_the_reaper_and_blocks_resurrection() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare_leased(7, 5, &[w(1, "a")], 3, Duration::from_micros(1))
                .unwrap(),
            PrepareOutcome::Prepared
        );
        std::thread::sleep(Duration::from_millis(1));
        let expired = s.expired_prepared(Instant::now());
        assert_eq!(expired, vec![(7, 3)]);
        // The reaper presumes abort...
        s.abort(7).unwrap();
        assert_eq!(s.prepared_count(), 0);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        // ...after which neither a late prepare nor a late commit of the
        // same transaction may resurrect it.
        match s
            .prepare_leased(7, 5, &[w(1, "a")], 3, Duration::from_secs(10))
            .unwrap()
        {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.commit(7, 20).unwrap(), CommitOutcome::AlreadyAborted);
        assert_eq!(s.version_count(), 0);
    }

    #[test]
    fn one_phase_commit_retry_reports_original_fate() {
        let s = ServerStore::new();
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 5).unwrap(),
            CommitOnePhaseOutcome::Committed(5)
        );
        // Retry with a fresh timestamp: the original fate is reported and
        // nothing is re-installed.
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 9).unwrap(),
            CommitOnePhaseOutcome::Committed(5)
        );
        assert_eq!(s.version_count(), 1);
        // A conflicted one-phase commit is remembered as aborted.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 10).unwrap() {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.outcome(2), Some(TxnOutcome::Aborted));
        match s.commit_one_phase(2, 1, &[w(1, "b")], 11).unwrap() {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict on retry, got {other:?}"),
        }
    }

    #[test]
    fn outcome_table_is_bounded_and_keeps_commits_intact() {
        let s = ServerStore::with_outcome_retention(16);
        for i in 0..100u64 {
            assert_eq!(
                s.commit_one_phase(i + 1, 2 * i + 1, &[w(i, "v")], 2 * i + 2)
                    .unwrap(),
                CommitOnePhaseOutcome::Committed(2 * i + 2)
            );
        }
        // Old outcomes were evicted, recent ones retained.
        assert_eq!(s.outcome(1), None);
        assert_eq!(s.outcome(100), Some(TxnOutcome::Committed(200)));
    }

    #[test]
    fn dump_versions_reports_history() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]).unwrap();
        s.commit(1, 2).unwrap();
        s.prepare(2, 3, &[del(1)]).unwrap();
        s.commit(2, 4).unwrap();
        let hist = s.dump_versions(obj(1));
        assert_eq!(hist.len(), 2);
        assert!(hist.contains(&(2, Some(Bytes::from_static(b"a")))));
        assert!(hist.contains(&(4, None)));
        assert!(s.dump_versions(obj(99)).is_empty());
    }

    #[test]
    fn multi_shard_prepare_is_all_or_nothing() {
        let s = ServerStore::new();
        // Spread writes over many shards; make one of them conflict.
        let mut writes: Vec<WriteOp> = (0..64).map(|i| w(i, "x")).collect();
        assert_eq!(
            s.prepare(1, 5, &[w(33, "old")]).unwrap(),
            PrepareOutcome::Prepared
        );
        s.commit(1, 10).unwrap();
        writes[33] = w(33, "conflicting");
        match s.prepare(2, 5, &writes).unwrap() {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        // Nothing must be left locked by the failed prepare.
        for i in 0..64u64 {
            assert_ne!(
                s.get(obj(i), 100),
                ReadOutcome::Locked,
                "object {i} leaked a lock"
            );
        }
    }

    #[test]
    fn concurrent_disjoint_commits_succeed() {
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let threads = 8;
        let per_thread = 200u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let o = t as u64 * 10_000 + i;
                    let txn = o + 1;
                    let ts = 2 * o + 1;
                    assert_eq!(
                        s.commit_one_phase(txn, ts, &[w(o, "v")], ts + 1).unwrap(),
                        CommitOnePhaseOutcome::Committed(ts + 1)
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.object_count(), threads as u64 * per_thread);
        assert_eq!(s.stats().commits, threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_same_object_writers_one_winner_per_round() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let wins = Arc::new(AtomicU64::new(0));
        let losses = Arc::new(AtomicU64::new(0));
        let ts = Arc::new(AtomicU64::new(1));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            let wins = Arc::clone(&wins);
            let losses = Arc::clone(&losses);
            let ts = Arc::clone(&ts);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let start = ts.fetch_add(1, Ordering::SeqCst);
                    let commit = ts.fetch_add(1, Ordering::SeqCst);
                    let txn = t * 1000 + i + 1;
                    match s
                        .commit_one_phase(txn, start, &[w(7, "contended")], commit)
                        .unwrap()
                    {
                        CommitOnePhaseOutcome::Committed(_) => wins.fetch_add(1, Ordering::SeqCst),
                        CommitOnePhaseOutcome::Conflict(_) => losses.fetch_add(1, Ordering::SeqCst),
                    };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = wins.load(Ordering::SeqCst) + losses.load(Ordering::SeqCst);
        assert_eq!(total, 800);
        assert!(wins.load(Ordering::SeqCst) >= 1);
        // Every committed version is still ordered in the chain.
        assert_eq!(s.object_count(), 1);
    }
}
