//! Per-server multi-version storage with prepare locks.
//!
//! Each storage server owns one [`ServerStore`]: a map from [`ObjectId`] to
//! the object's committed [`VersionChain`] plus, while a transaction is
//! between its prepare and commit phases, a **prepare lock** holding the
//! staged new value.  The store also owns the server's non-transactional
//! allocation counters (used for node-id and row-id allocation).
//!
//! ## Lock striping
//!
//! The store is **lock-striped**: objects are hash-partitioned over
//! [`SHARD_COUNT`] shards, each behind its own mutex, and statistics are
//! plain atomics.  The paper's headline property — a warm client touches one
//! server per point read — only buys scalability if that one server does not
//! serialize every request behind a single lock; with striping, concurrent
//! gets to different objects proceed in parallel, and the per-request cost
//! stays flat as client concurrency grows (the scale-independence argument
//! of the SCADS line of work).
//!
//! Multi-object operations (`prepare`, `commit_one_phase`) acquire the
//! shards they touch in **ascending shard order**, which makes concurrent
//! multi-shard validations deadlock-free.  `commit`/`abort` release locks
//! shard by shard; a reader that catches a transaction between two shards
//! simply sees a still-held prepare lock and retries, exactly as it would
//! had the commit message not arrived at that server yet — per-object
//! atomicity (the invariant snapshot isolation needs) is preserved by the
//! per-shard critical sections.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};
use yesquel_common::ids::shard_index;
use yesquel_common::{ObjectId, Timestamp, TxnId};

use crate::mvcc::VersionChain;
use crate::protocol::WriteOp;

/// Number of lock stripes per server store.  Power of two; sized so that a
/// few dozen client threads rarely collide on a stripe while keeping the
/// per-store footprint negligible.
pub const SHARD_COUNT: usize = 32;

/// Result of reading an object at a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The visible value (or `None` if unwritten/deleted at the snapshot).
    Value(Option<Bytes>),
    /// The object is locked by a preparing transaction; retry shortly.
    Locked,
}

/// Result of prepare / one-phase-commit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareOutcome {
    /// Validation passed and locks are held.
    Prepared,
    /// Validation failed; nothing is locked.
    Conflict(String),
}

/// A prepare lock: the owning transaction and the value it intends to
/// install.
#[derive(Debug, Clone)]
struct PrepareLock {
    txn: TxnId,
    staged: Option<Bytes>,
}

/// State of one object on one server.
#[derive(Debug, Default, Clone)]
struct ObjectState {
    chain: VersionChain,
    lock: Option<PrepareLock>,
}

/// Aggregate statistics of one server store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `Get` requests served.
    pub gets: u64,
    /// Number of prepares that acquired locks.
    pub prepares: u64,
    /// Number of commits applied (two-phase or one-phase).
    pub commits: u64,
    /// Number of aborts processed.
    pub aborts: u64,
    /// Number of validation failures.
    pub conflicts: u64,
    /// Number of reads that found a prepare lock.
    pub locked_reads: u64,
    /// Number of versions dropped by garbage collection.
    pub gc_dropped: u64,
}

/// Atomic counters behind [`StoreStats`]; updated without any lock so the
/// striped hot paths never serialize on statistics.
#[derive(Default)]
struct StatsCells {
    gets: AtomicU64,
    prepares: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    locked_reads: AtomicU64,
    gc_dropped: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            locked_reads: self.locked_reads.load(Ordering::Relaxed),
            gc_dropped: self.gc_dropped.load(Ordering::Relaxed),
        }
    }
}

/// One lock stripe: the objects whose ids hash to this shard.
#[derive(Default)]
struct Shard {
    objects: HashMap<ObjectId, ObjectState>,
}

/// The storage of one server.  All methods are safe to call concurrently;
/// object state is partitioned over [`SHARD_COUNT`] independently locked
/// shards, so requests for different objects proceed in parallel.
pub struct ServerStore {
    shards: Vec<Mutex<Shard>>,
    /// Objects locked by each in-flight prepared transaction, so commit and
    /// abort do not need to scan the whole store.  Touched once per
    /// prepare/commit/abort, never per object, so one small mutex suffices.
    prepared: Mutex<HashMap<TxnId, Vec<ObjectId>>>,
    /// Non-transactional allocation counters (a handful of objects per tree;
    /// not on the read/commit hot path).
    counters: Mutex<HashMap<ObjectId, u64>>,
    stats: StatsCells,
}

impl Default for ServerStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ServerStore {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            prepared: Mutex::new(HashMap::new()),
            counters: Mutex::new(HashMap::new()),
            stats: StatsCells::default(),
        }
    }

    /// Shard index of an object.  Mixes both halves of the id so that the
    /// nodes of one tree spread over the stripes.
    fn shard_of(&self, obj: ObjectId) -> usize {
        shard_index(obj.tree, obj.oid, 0x5851_f42d_4c95_7f2d, SHARD_COUNT)
    }

    /// Locks, in ascending shard order, every shard touched by `writes`.
    /// Returns the sorted deduplicated shard ids alongside their guards.
    fn lock_shards_for(&self, writes: &[WriteOp]) -> Vec<(usize, MutexGuard<'_, Shard>)> {
        let mut ids: Vec<usize> = writes.iter().map(|w| self.shard_of(w.obj)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|i| (i, self.shards[i].lock()))
            .collect()
    }

    /// The guard covering `obj` within a `lock_shards_for` result.
    fn guard_for<'a, 'g>(
        &self,
        guards: &'a mut [(usize, MutexGuard<'g, Shard>)],
        obj: ObjectId,
    ) -> &'a mut Shard {
        let shard = self.shard_of(obj);
        let pos = guards
            .binary_search_by_key(&shard, |(i, _)| *i)
            .expect("object's shard must be among the locked shards");
        &mut guards[pos].1
    }

    /// Reads `obj` at snapshot `ts`.
    pub fn get(&self, obj: ObjectId, ts: Timestamp) -> ReadOutcome {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of(obj)].lock();
        match shard.objects.get(&obj) {
            None => ReadOutcome::Value(None),
            Some(state) => {
                if state.lock.is_some() {
                    self.stats.locked_reads.fetch_add(1, Ordering::Relaxed);
                    ReadOutcome::Locked
                } else {
                    ReadOutcome::Value(state.chain.read_at(ts))
                }
            }
        }
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`.  Either all writes are locked or none are.
    pub fn prepare(&self, txn: TxnId, start_ts: Timestamp, writes: &[WriteOp]) -> PrepareOutcome {
        let mut guards = self.lock_shards_for(writes);
        // Validation pass: no lock held by another transaction, and no
        // committed version newer than the snapshot (first-committer-wins).
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                return PrepareOutcome::Conflict(reason);
            }
        }
        // Lock pass.
        let mut locked = Vec::with_capacity(writes.len());
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.lock = Some(PrepareLock {
                txn,
                staged: w.value.clone(),
            });
            locked.push(w.obj);
        }
        drop(guards);
        self.prepared.lock().entry(txn).or_default().extend(locked);
        self.stats.prepares.fetch_add(1, Ordering::Relaxed);
        PrepareOutcome::Prepared
    }

    /// First-committer-wins and lock-conflict validation of one write within
    /// its (locked) shard; returns a failure reason or `None`.
    fn validate_one(shard: &Shard, txn: TxnId, start_ts: Timestamp, w: &WriteOp) -> Option<String> {
        if let Some(state) = shard.objects.get(&w.obj) {
            if let Some(lock) = &state.lock {
                if lock.txn != txn {
                    return Some(format!("object {} locked by txn {}", w.obj, lock.txn));
                }
            }
            if state.chain.has_newer_than(start_ts) {
                return Some(format!(
                    "object {} has a version newer than snapshot {}",
                    w.obj, start_ts
                ));
            }
        }
        None
    }

    /// Installs the versions staged by a successful prepare of `txn` at
    /// `commit_ts` and releases the locks.  Committing a transaction that
    /// never prepared here is a no-op (idempotent, as phase two must be).
    pub fn commit(&self, txn: TxnId, commit_ts: Timestamp) {
        let objs = self.prepared.lock().remove(&txn).unwrap_or_default();
        for obj in objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                match state.lock.take() {
                    Some(lock) if lock.txn == txn => {
                        state.chain.install(commit_ts, lock.staged);
                    }
                    other => {
                        // Lock stolen or missing: put it back if it belongs
                        // to someone else.  This cannot happen in the current
                        // protocol (locks are only released by their owner),
                        // but stay defensive.
                        state.lock = other.filter(|l| l.txn != txn);
                    }
                }
            }
        }
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Validates and installs `writes` in one step, assigning `commit_ts`.
    /// Used by one-phase commit, where the caller obtains a commit timestamp
    /// via the server-side oracle handle.
    pub fn commit_one_phase(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        commit_ts: Timestamp,
    ) -> PrepareOutcome {
        let mut guards = self.lock_shards_for(writes);
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                return PrepareOutcome::Conflict(reason);
            }
        }
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.chain.install(commit_ts, w.value.clone());
        }
        drop(guards);
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        PrepareOutcome::Prepared
    }

    /// Releases every lock held by `txn` and discards its staged writes.
    pub fn abort(&self, txn: TxnId) {
        let objs = self.prepared.lock().remove(&txn).unwrap_or_default();
        for obj in objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                if state.lock.as_ref().map(|l| l.txn == txn).unwrap_or(false) {
                    state.lock = None;
                }
            }
        }
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically adds `delta` to the counter at `obj`, returning the
    /// pre-increment value.
    pub fn allocate(&self, obj: ObjectId, delta: u64) -> u64 {
        let mut g = self.counters.lock();
        let c = g.entry(obj).or_insert(0);
        let start = *c;
        *c += delta;
        start
    }

    /// Installs a version directly, bypassing concurrency control (bulk
    /// loading only).
    pub fn load_unchecked(&self, obj: ObjectId, ts: Timestamp, value: Bytes) {
        let mut shard = self.shards[self.shard_of(obj)].lock();
        shard
            .objects
            .entry(obj)
            .or_default()
            .chain
            .install(ts, Some(value));
    }

    /// Garbage-collects old versions given the oldest active snapshot.
    /// Returns the number of versions dropped.  Shards are collected one at
    /// a time so GC never stalls the whole store.
    pub fn gc(&self, min_active_ts: Timestamp, keep_versions: usize) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut g = shard.lock();
            let mut dead = Vec::new();
            for (obj, state) in g.objects.iter_mut() {
                dropped += state.chain.gc(min_active_ts, keep_versions) as u64;
                if state.lock.is_none() && state.chain.is_fully_dead(min_active_ts) {
                    dead.push(*obj);
                }
            }
            for obj in dead {
                g.objects.remove(&obj);
            }
        }
        self.stats.gc_dropped.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Snapshot of the store's statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().objects.len() as u64)
            .sum()
    }

    /// Total number of committed versions currently stored.
    pub fn version_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .objects
                    .values()
                    .map(|o| o.chain.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(1, o)
    }

    fn w(o: u64, v: &str) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: Some(Bytes::copy_from_slice(v.as_bytes())),
        }
    }

    fn del(o: u64) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: None,
        }
    }

    #[test]
    fn prepare_commit_read_cycle() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a"), w(2, "b")]),
            PrepareOutcome::Prepared
        );
        // Reads see the lock, not the staged value.
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Locked);
        s.commit(1, 10);
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 9), ReadOutcome::Value(None));
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn conflict_on_newer_version() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        s.commit(1, 10);
        // A transaction that started before ts 10 cannot overwrite object 1.
        match s.prepare(2, 5, &[w(1, "b")]) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.stats().conflicts, 1);
        // A later snapshot can.
        assert_eq!(s.prepare(3, 11, &[w(1, "c")]), PrepareOutcome::Prepared);
        s.commit(3, 12);
        assert_eq!(
            s.get(obj(1), 20),
            ReadOutcome::Value(Some(Bytes::from_static(b"c")))
        );
    }

    #[test]
    fn conflict_on_foreign_lock_and_abort_releases() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        match s.prepare(2, 6, &[w(1, "b")]) {
            PrepareOutcome::Conflict(msg) => assert!(msg.contains("locked")),
            other => panic!("expected conflict, got {other:?}"),
        }
        s.abort(1);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        assert_eq!(s.prepare(2, 6, &[w(1, "b")]), PrepareOutcome::Prepared);
        s.commit(2, 7);
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"b")))
        );
    }

    #[test]
    fn delete_writes_tombstone() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]);
        s.commit(1, 2);
        s.prepare(2, 3, &[del(1)]);
        s.commit(2, 4);
        assert_eq!(
            s.get(obj(1), 3),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(None));
    }

    #[test]
    fn one_phase_commit_validates_and_installs() {
        let s = ServerStore::new();
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 5),
            PrepareOutcome::Prepared
        );
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        // Stale snapshot conflicts.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 6) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
    }

    #[test]
    fn allocate_is_monotone() {
        let s = ServerStore::new();
        assert_eq!(s.allocate(obj(9), 10), 0);
        assert_eq!(s.allocate(obj(9), 5), 10);
        assert_eq!(s.allocate(obj(9), 1), 15);
        assert_eq!(s.allocate(obj(8), 1), 0);
    }

    #[test]
    fn gc_drops_old_versions_and_dead_objects() {
        let s = ServerStore::new();
        for i in 0..5u64 {
            s.prepare(i, 2 * i, &[w(1, &format!("v{i}"))]);
            s.commit(i, 2 * i + 1);
        }
        assert_eq!(s.version_count(), 5);
        let dropped = s.gc(100, 1);
        assert_eq!(dropped, 4);
        assert_eq!(s.version_count(), 1);
        // Delete the object entirely, then GC removes it from the map.
        s.prepare(10, 50, &[del(1)]);
        s.commit(10, 51);
        s.gc(100, 1);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn bulk_load_visible_to_all_snapshots() {
        let s = ServerStore::new();
        s.load_unchecked(obj(1), 0, Bytes::from_static(b"seed"));
        assert_eq!(
            s.get(obj(1), 1),
            ReadOutcome::Value(Some(Bytes::from_static(b"seed")))
        );
    }

    #[test]
    fn commit_unknown_txn_is_noop() {
        let s = ServerStore::new();
        s.commit(999, 5);
        s.abort(999);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn multi_shard_prepare_is_all_or_nothing() {
        let s = ServerStore::new();
        // Spread writes over many shards; make one of them conflict.
        let mut writes: Vec<WriteOp> = (0..64).map(|i| w(i, "x")).collect();
        assert_eq!(s.prepare(1, 5, &[w(33, "old")]), PrepareOutcome::Prepared);
        s.commit(1, 10);
        writes[33] = w(33, "conflicting");
        match s.prepare(2, 5, &writes) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        // Nothing must be left locked by the failed prepare.
        for i in 0..64u64 {
            assert_ne!(
                s.get(obj(i), 100),
                ReadOutcome::Locked,
                "object {i} leaked a lock"
            );
        }
    }

    #[test]
    fn concurrent_disjoint_commits_succeed() {
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let threads = 8;
        let per_thread = 200u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let o = t as u64 * 10_000 + i;
                    let txn = o + 1;
                    let ts = 2 * o + 1;
                    assert_eq!(
                        s.commit_one_phase(txn, ts, &[w(o, "v")], ts + 1),
                        PrepareOutcome::Prepared
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.object_count(), threads as u64 * per_thread);
        assert_eq!(s.stats().commits, threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_same_object_writers_one_winner_per_round() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let wins = Arc::new(AtomicU64::new(0));
        let losses = Arc::new(AtomicU64::new(0));
        let ts = Arc::new(AtomicU64::new(1));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            let wins = Arc::clone(&wins);
            let losses = Arc::clone(&losses);
            let ts = Arc::clone(&ts);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let start = ts.fetch_add(1, Ordering::SeqCst);
                    let commit = ts.fetch_add(1, Ordering::SeqCst);
                    let txn = t * 1000 + i + 1;
                    match s.commit_one_phase(txn, start, &[w(7, "contended")], commit) {
                        PrepareOutcome::Prepared => wins.fetch_add(1, Ordering::SeqCst),
                        PrepareOutcome::Conflict(_) => losses.fetch_add(1, Ordering::SeqCst),
                    };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = wins.load(Ordering::SeqCst) + losses.load(Ordering::SeqCst);
        assert_eq!(total, 800);
        assert!(wins.load(Ordering::SeqCst) >= 1);
        // Every committed version is still ordered in the chain.
        assert_eq!(s.object_count(), 1);
    }
}
