//! Per-server multi-version storage with prepare locks.
//!
//! Each storage server owns one [`ServerStore`]: a map from [`ObjectId`] to
//! the object's committed [`VersionChain`] plus, while a transaction is
//! between its prepare and commit phases, a **prepare lock** holding the
//! staged new value.  The store also owns the server's non-transactional
//! allocation counters (used for node-id and row-id allocation).
//!
//! ## Lock striping
//!
//! The store is **lock-striped**: objects are hash-partitioned over
//! [`SHARD_COUNT`] shards, each behind its own mutex, and statistics are
//! plain atomics.  The paper's headline property — a warm client touches one
//! server per point read — only buys scalability if that one server does not
//! serialize every request behind a single lock; with striping, concurrent
//! gets to different objects proceed in parallel, and the per-request cost
//! stays flat as client concurrency grows (the scale-independence argument
//! of the SCADS line of work).
//!
//! Multi-object operations (`prepare`, `commit_one_phase`) acquire the
//! shards they touch in **ascending shard order**, which makes concurrent
//! multi-shard validations deadlock-free.  `commit`/`abort` release locks
//! shard by shard; a reader that catches a transaction between two shards
//! simply sees a still-held prepare lock and retries, exactly as it would
//! had the commit message not arrived at that server yet — per-object
//! atomicity (the invariant snapshot isolation needs) is preserved by the
//! per-shard critical sections.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, MutexGuard};
use yesquel_common::ids::{shard_index, splitmix64};
use yesquel_common::{ObjectId, ServerId, Timestamp, TxnId};

use crate::mvcc::VersionChain;
use crate::protocol::WriteOp;

/// Number of lock stripes per server store.  Power of two; sized so that a
/// few dozen client threads rarely collide on a stripe while keeping the
/// per-store footprint negligible.
pub const SHARD_COUNT: usize = 32;

/// Result of reading an object at a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The visible value (or `None` if unwritten/deleted at the snapshot).
    Value(Option<Bytes>),
    /// The object is locked by a preparing transaction; retry shortly.
    Locked,
}

/// Result of prepare / one-phase-commit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareOutcome {
    /// Validation passed and locks are held.
    Prepared,
    /// Validation failed; nothing is locked.
    Conflict(String),
}

/// Result of a one-phase commit.  Distinct from [`PrepareOutcome`] because a
/// deduplicated retry must report the *original* commit timestamp, not the
/// one freshly drawn for the retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOnePhaseOutcome {
    /// Validation passed and the writes are installed at this timestamp.
    Committed(Timestamp),
    /// Validation failed (or the transaction had already aborted); nothing
    /// was installed.
    Conflict(String),
}

/// A prepare lock: the owning transaction and the value it intends to
/// install.
#[derive(Debug, Clone)]
struct PrepareLock {
    txn: TxnId,
    staged: Option<Bytes>,
}

/// Book-keeping for a transaction between its prepare and commit phases.
#[derive(Debug, Clone)]
struct PreparedTxn {
    /// Objects this transaction holds prepare locks on.
    objs: Vec<ObjectId>,
    /// The transaction's primary participant (2PC commit point).
    primary: ServerId,
    /// When the coordinator's lease expires and the reaper may act.
    lease_deadline: Instant,
}

/// Recorded fate of a finished transaction, kept in a bounded FIFO so that
/// retried or duplicated prepare / commit / abort messages are recognized
/// and answered idempotently instead of re-applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// The transaction committed here at this timestamp.
    Committed(Timestamp),
    /// The transaction aborted here (explicitly or by presumed abort).
    Aborted,
}

/// Result of applying a `Commit` message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The staged writes were installed (or had already been installed by an
    /// earlier delivery of the same commit) at this timestamp.
    Committed(Timestamp),
    /// The transaction was already aborted here — its lease expired and the
    /// reaper presumed abort — so there was nothing to install.
    AlreadyAborted,
}

/// One-round [`splitmix64`] hasher for `TxnId` keys.  The outcome and
/// prepared tables sit on the commit hot path, where SipHash (the `HashMap`
/// default) is measurable; a single multiply-xorshift round gives full
/// avalanche on a 64-bit id for a fraction of the cost.
#[derive(Default, Clone)]
struct TxnIdHasher(u64);

impl std::hash::Hasher for TxnIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("TxnId keys hash via write_u64");
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(x);
    }
}

type TxnIdMap<V> = HashMap<TxnId, V, std::hash::BuildHasherDefault<TxnIdHasher>>;

/// Bounded FIFO of transaction outcomes.
struct OutcomeTable {
    map: TxnIdMap<TxnOutcome>,
    order: VecDeque<TxnId>,
    cap: usize,
}

impl OutcomeTable {
    fn new(cap: usize) -> Self {
        OutcomeTable {
            map: TxnIdMap::default(),
            order: VecDeque::new(),
            cap: cap.max(16),
        }
    }

    fn get(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.map.get(&txn).copied()
    }

    /// Records an outcome.  A `Committed` record is never downgraded: a
    /// stale abort arriving after the commit installed must not rewrite
    /// history.
    fn record(&mut self, txn: TxnId, outcome: TxnOutcome) {
        match self.map.entry(txn) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if !matches!(e.get(), TxnOutcome::Committed(_)) {
                    e.insert(outcome);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(outcome);
                self.order.push_back(txn);
                if self.order.len() > self.cap {
                    if let Some(old) = self.order.pop_front() {
                        self.map.remove(&old);
                    }
                }
            }
        }
    }
}

/// State of one object on one server.
#[derive(Debug, Default, Clone)]
struct ObjectState {
    chain: VersionChain,
    lock: Option<PrepareLock>,
}

/// Aggregate statistics of one server store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `Get` requests served.
    pub gets: u64,
    /// Number of prepares that acquired locks.
    pub prepares: u64,
    /// Number of commits applied (two-phase or one-phase).
    pub commits: u64,
    /// Number of aborts processed.
    pub aborts: u64,
    /// Number of validation failures.
    pub conflicts: u64,
    /// Number of reads that found a prepare lock.
    pub locked_reads: u64,
    /// Number of versions dropped by garbage collection.
    pub gc_dropped: u64,
    /// Number of retried or duplicated prepare/commit/abort messages that
    /// were answered from the outcome table instead of re-applied.
    pub dedup_hits: u64,
}

/// Atomic counters behind [`StoreStats`]; updated without any lock so the
/// striped hot paths never serialize on statistics.
#[derive(Default)]
struct StatsCells {
    gets: AtomicU64,
    prepares: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    locked_reads: AtomicU64,
    gc_dropped: AtomicU64,
    dedup_hits: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            locked_reads: self.locked_reads.load(Ordering::Relaxed),
            gc_dropped: self.gc_dropped.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }
}

/// One lock stripe: the objects whose ids hash to this shard.
#[derive(Default)]
struct Shard {
    objects: HashMap<ObjectId, ObjectState>,
}

/// The storage of one server.  All methods are safe to call concurrently;
/// object state is partitioned over [`SHARD_COUNT`] independently locked
/// shards, so requests for different objects proceed in parallel.
pub struct ServerStore {
    shards: Vec<Mutex<Shard>>,
    /// In-flight prepared transactions (objects locked, primary, lease), so
    /// commit and abort do not need to scan the whole store.  Touched once
    /// per prepare/commit/abort, never per object, so one small mutex
    /// suffices.
    prepared: Mutex<TxnIdMap<PreparedTxn>>,
    /// Lock-free hint mirroring `prepared.len()`, so the piggybacked reaper
    /// can skip clock reads and locking entirely while no transaction is in
    /// the prepared state (the overwhelmingly common case).  Only a hint:
    /// the reaper re-checks under the real lock.
    prepared_hint: AtomicU64,
    /// Fates of finished transactions, for deduplicating retried and
    /// duplicated prepare / commit / abort messages.
    outcomes: Mutex<OutcomeTable>,
    /// Non-transactional allocation counters (a handful of objects per tree;
    /// not on the read/commit hot path).
    counters: Mutex<HashMap<ObjectId, u64>>,
    stats: StatsCells,
}

impl Default for ServerStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStore {
    /// Creates an empty store with the default outcome retention.
    pub fn new() -> Self {
        Self::with_outcome_retention(4_096)
    }

    /// Creates an empty store retaining up to `retention` transaction
    /// outcomes for message deduplication.
    pub fn with_outcome_retention(retention: usize) -> Self {
        ServerStore {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            prepared: Mutex::new(TxnIdMap::default()),
            prepared_hint: AtomicU64::new(0),
            outcomes: Mutex::new(OutcomeTable::new(retention)),
            counters: Mutex::new(HashMap::new()),
            stats: StatsCells::default(),
        }
    }

    /// Shard index of an object.  Mixes both halves of the id so that the
    /// nodes of one tree spread over the stripes.
    fn shard_of(&self, obj: ObjectId) -> usize {
        shard_index(obj.tree, obj.oid, 0x5851_f42d_4c95_7f2d, SHARD_COUNT)
    }

    /// Locks, in ascending shard order, every shard touched by `writes`.
    /// Returns the sorted deduplicated shard ids alongside their guards.
    fn lock_shards_for(&self, writes: &[WriteOp]) -> Vec<(usize, MutexGuard<'_, Shard>)> {
        let mut ids: Vec<usize> = writes.iter().map(|w| self.shard_of(w.obj)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|i| (i, self.shards[i].lock()))
            .collect()
    }

    /// The guard covering `obj` within a `lock_shards_for` result.
    fn guard_for<'a, 'g>(
        &self,
        guards: &'a mut [(usize, MutexGuard<'g, Shard>)],
        obj: ObjectId,
    ) -> &'a mut Shard {
        let shard = self.shard_of(obj);
        let pos = guards
            .binary_search_by_key(&shard, |(i, _)| *i)
            .expect("object's shard must be among the locked shards");
        &mut guards[pos].1
    }

    /// Reads `obj` at snapshot `ts`.
    pub fn get(&self, obj: ObjectId, ts: Timestamp) -> ReadOutcome {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let shard = self.shards[self.shard_of(obj)].lock();
        match shard.objects.get(&obj) {
            None => ReadOutcome::Value(None),
            Some(state) => {
                if state.lock.is_some() {
                    self.stats.locked_reads.fetch_add(1, Ordering::Relaxed);
                    ReadOutcome::Locked
                } else {
                    ReadOutcome::Value(state.chain.read_at(ts))
                }
            }
        }
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`, with a generous lease and this server as primary.
    /// Convenience wrapper used by single-store tests; the server dispatch
    /// path goes through [`ServerStore::prepare_leased`].
    pub fn prepare(&self, txn: TxnId, start_ts: Timestamp, writes: &[WriteOp]) -> PrepareOutcome {
        self.prepare_leased(txn, start_ts, writes, 0, Duration::from_secs(3600))
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`.  Either all writes are locked or none are.  The locks
    /// are leased: if neither `Commit` nor `Abort` arrives within `lease`,
    /// the reaper may resolve the transaction through its `primary`
    /// participant (presumed abort).
    ///
    /// Idempotent under retries and duplicate deliveries: re-preparing an
    /// already-prepared transaction refreshes its lease and reports
    /// `Prepared`; re-preparing one that already committed reports
    /// `Prepared` (the coordinator will proceed to a deduplicated commit);
    /// re-preparing one that was already aborted reports a conflict so the
    /// coordinator cannot resurrect a reaped transaction.
    pub fn prepare_leased(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        primary: ServerId,
        lease: Duration,
    ) -> PrepareOutcome {
        match self.outcomes.lock().get(txn) {
            Some(TxnOutcome::Committed(_)) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return PrepareOutcome::Prepared;
            }
            Some(TxnOutcome::Aborted) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return PrepareOutcome::Conflict(format!(
                    "txn {txn} was already aborted (presumed abort)"
                ));
            }
            None => {}
        }
        let mut guards = self.lock_shards_for(writes);
        // Validation pass: no lock held by another transaction, and no
        // committed version newer than the snapshot (first-committer-wins).
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                return PrepareOutcome::Conflict(reason);
            }
        }
        // Lock pass.
        let mut locked = Vec::with_capacity(writes.len());
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.lock = Some(PrepareLock {
                txn,
                staged: w.value.clone(),
            });
            locked.push(w.obj);
        }
        drop(guards);
        // Insert (not extend): a duplicate prepare carries the same writes,
        // so replacing the entry both deduplicates the object list and
        // refreshes the coordinator's lease.
        let replaced = self.prepared.lock().insert(
            txn,
            PreparedTxn {
                objs: locked,
                primary,
                lease_deadline: Instant::now() + lease,
            },
        );
        if replaced.is_none() {
            self.prepared_hint.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.prepares.fetch_add(1, Ordering::Relaxed);
        PrepareOutcome::Prepared
    }

    /// First-committer-wins and lock-conflict validation of one write within
    /// its (locked) shard; returns a failure reason or `None`.
    fn validate_one(shard: &Shard, txn: TxnId, start_ts: Timestamp, w: &WriteOp) -> Option<String> {
        if let Some(state) = shard.objects.get(&w.obj) {
            if let Some(lock) = &state.lock {
                if lock.txn != txn {
                    return Some(format!("object {} locked by txn {}", w.obj, lock.txn));
                }
            }
            if state.chain.has_newer_than(start_ts) {
                return Some(format!(
                    "object {} has a version newer than snapshot {}",
                    w.obj, start_ts
                ));
            }
        }
        None
    }

    /// Installs the versions staged by a successful prepare of `txn` at
    /// `commit_ts` and releases the locks.  Idempotent, as phase two must
    /// be: a re-delivered commit answers from the outcome table, and a
    /// commit for a transaction this store has never heard of is treated as
    /// presumed-aborted (the only way a commit can reference an unknown
    /// transaction is that the reaper already expired its prepare).
    pub fn commit(&self, txn: TxnId, commit_ts: Timestamp) -> CommitOutcome {
        let entry = {
            let mut outcomes = self.outcomes.lock();
            // Fast path first: a live prepared entry.  A duplicate commit
            // racing us serializes on the outcomes lock, loses the `remove`,
            // and falls through to the outcome table, which we fill while
            // still holding that lock.
            match self.prepared.lock().remove(&txn) {
                Some(p) => {
                    self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
                    outcomes.record(txn, TxnOutcome::Committed(commit_ts));
                    p
                }
                None => {
                    // Not prepared here: either a duplicate delivery
                    // (answer from the outcome table) or a commit for a
                    // transaction this store never prepared (presume abort).
                    return match outcomes.get(txn) {
                        Some(TxnOutcome::Committed(ts)) => {
                            self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            CommitOutcome::Committed(ts)
                        }
                        Some(TxnOutcome::Aborted) => {
                            self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            CommitOutcome::AlreadyAborted
                        }
                        None => {
                            outcomes.record(txn, TxnOutcome::Aborted);
                            CommitOutcome::AlreadyAborted
                        }
                    };
                }
            }
        };
        for obj in entry.objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                match state.lock.take() {
                    Some(lock) if lock.txn == txn => {
                        state.chain.install(commit_ts, lock.staged);
                    }
                    other => {
                        // Lock stolen or missing: put it back if it belongs
                        // to someone else.  This cannot happen in the current
                        // protocol (locks are only released by their owner),
                        // but stay defensive.
                        state.lock = other.filter(|l| l.txn != txn);
                    }
                }
            }
        }
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        CommitOutcome::Committed(commit_ts)
    }

    /// Validates and installs `writes` in one step, assigning `commit_ts`.
    /// Used by one-phase commit, where the caller obtains a commit timestamp
    /// via the server-side oracle handle.
    pub fn commit_one_phase(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        commit_ts: Timestamp,
    ) -> CommitOnePhaseOutcome {
        // Dedup: a retried one-phase commit (its first response was lost)
        // must report the original fate, not re-validate — re-validation
        // would see the transaction's own installed versions as "newer than
        // snapshot" and wrongly report a conflict.
        match self.outcomes.lock().get(txn) {
            Some(TxnOutcome::Committed(ts)) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return CommitOnePhaseOutcome::Committed(ts);
            }
            Some(TxnOutcome::Aborted) => {
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return CommitOnePhaseOutcome::Conflict(format!(
                    "txn {txn} already aborted (duplicate one-phase commit)"
                ));
            }
            None => {}
        }
        let mut guards = self.lock_shards_for(writes);
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            if let Some(reason) = Self::validate_one(shard, txn, start_ts, w) {
                self.stats.conflicts.fetch_add(1, Ordering::Relaxed);
                self.outcomes.lock().record(txn, TxnOutcome::Aborted);
                return CommitOnePhaseOutcome::Conflict(reason);
            }
        }
        for w in writes {
            let shard = self.guard_for(&mut guards, w.obj);
            let state = shard.objects.entry(w.obj).or_default();
            state.chain.install(commit_ts, w.value.clone());
        }
        // Record the fate before the shard guards drop so a racing duplicate
        // cannot slip between installation and the record.
        self.outcomes
            .lock()
            .record(txn, TxnOutcome::Committed(commit_ts));
        drop(guards);
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        CommitOnePhaseOutcome::Committed(commit_ts)
    }

    /// Releases every lock held by `txn` and discards its staged writes.
    /// Idempotent; records an `Aborted` outcome (never overwriting a
    /// commit) so duplicate prepares and commits of this transaction are
    /// refused from then on.
    pub fn abort(&self, txn: TxnId) {
        let entry = {
            let mut outcomes = self.outcomes.lock();
            if let Some(TxnOutcome::Committed(_)) = outcomes.get(txn) {
                // A stale abort after the commit installed: ignore.
                self.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let entry = self.prepared.lock().remove(&txn);
            if entry.is_some() {
                self.prepared_hint.fetch_sub(1, Ordering::Relaxed);
            }
            outcomes.record(txn, TxnOutcome::Aborted);
            entry
        };
        let Some(entry) = entry else {
            self.stats.aborts.fetch_add(1, Ordering::Relaxed);
            return;
        };
        for obj in entry.objs {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            if let Some(state) = shard.objects.get_mut(&obj) {
                if state.lock.as_ref().map(|l| l.txn == txn).unwrap_or(false) {
                    state.lock = None;
                }
            }
        }
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// What this store knows about `txn`'s fate (outcome table only; a
    /// still-prepared transaction reports `None` — see
    /// [`ServerStore::is_prepared`]).
    pub fn outcome(&self, txn: TxnId) -> Option<TxnOutcome> {
        self.outcomes.lock().get(txn)
    }

    /// True if `txn` is currently prepared (locks held) at this store.
    pub fn is_prepared(&self, txn: TxnId) -> bool {
        self.prepared.lock().contains_key(&txn)
    }

    /// Number of transactions currently holding prepare locks.
    pub fn prepared_count(&self) -> usize {
        self.prepared.lock().len()
    }

    /// Lock-free check for "is anything prepared at all", the reaper's
    /// fast-path gate.  Approximate during concurrent prepare/commit, exact
    /// when quiescent.
    pub fn has_prepared(&self) -> bool {
        self.prepared_hint.load(Ordering::Relaxed) != 0
    }

    /// Prepared transactions whose coordinator lease expired before `now`,
    /// with their primary participant.  Collected under the lock and
    /// returned by value so the caller (the reaper) can resolve them — which
    /// involves RPCs — without holding any store lock.
    pub fn expired_prepared(&self, now: Instant) -> Vec<(TxnId, ServerId)> {
        self.prepared
            .lock()
            .iter()
            .filter(|(_, p)| p.lease_deadline <= now)
            .map(|(txn, p)| (*txn, p.primary))
            .collect()
    }

    /// Committed version history of `obj`, newest first, as
    /// `(timestamp, value)` pairs.  White-box accessor for durability and
    /// double-apply assertions in the chaos tests.
    pub fn dump_versions(&self, obj: ObjectId) -> Vec<(Timestamp, Option<Bytes>)> {
        let shard = self.shards[self.shard_of(obj)].lock();
        shard
            .objects
            .get(&obj)
            .map(|state| {
                state
                    .chain
                    .versions()
                    .iter()
                    .map(|v| (v.ts, v.value.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Atomically adds `delta` to the counter at `obj`, returning the
    /// pre-increment value.
    pub fn allocate(&self, obj: ObjectId, delta: u64) -> u64 {
        let mut g = self.counters.lock();
        let c = g.entry(obj).or_insert(0);
        let start = *c;
        *c += delta;
        start
    }

    /// Installs a version directly, bypassing concurrency control (bulk
    /// loading only).
    pub fn load_unchecked(&self, obj: ObjectId, ts: Timestamp, value: Bytes) {
        let mut shard = self.shards[self.shard_of(obj)].lock();
        shard
            .objects
            .entry(obj)
            .or_default()
            .chain
            .install(ts, Some(value));
    }

    /// Garbage-collects old versions given the oldest active snapshot.
    /// Returns the number of versions dropped.  Shards are collected one at
    /// a time so GC never stalls the whole store.
    pub fn gc(&self, min_active_ts: Timestamp, keep_versions: usize) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut g = shard.lock();
            let mut dead = Vec::new();
            for (obj, state) in g.objects.iter_mut() {
                dropped += state.chain.gc(min_active_ts, keep_versions) as u64;
                if state.lock.is_none() && state.chain.is_fully_dead(min_active_ts) {
                    dead.push(*obj);
                }
            }
            for obj in dead {
                g.objects.remove(&obj);
            }
        }
        self.stats.gc_dropped.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Snapshot of the store's statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().objects.len() as u64)
            .sum()
    }

    /// Total number of committed versions currently stored.
    pub fn version_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .objects
                    .values()
                    .map(|o| o.chain.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(1, o)
    }

    fn w(o: u64, v: &str) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: Some(Bytes::copy_from_slice(v.as_bytes())),
        }
    }

    fn del(o: u64) -> WriteOp {
        WriteOp {
            obj: obj(o),
            value: None,
        }
    }

    #[test]
    fn prepare_commit_read_cycle() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare(1, 5, &[w(1, "a"), w(2, "b")]),
            PrepareOutcome::Prepared
        );
        // Reads see the lock, not the staged value.
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Locked);
        s.commit(1, 10);
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 9), ReadOutcome::Value(None));
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn conflict_on_newer_version() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        s.commit(1, 10);
        // A transaction that started before ts 10 cannot overwrite object 1.
        match s.prepare(2, 5, &[w(1, "b")]) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.stats().conflicts, 1);
        // A later snapshot can.
        assert_eq!(s.prepare(3, 11, &[w(1, "c")]), PrepareOutcome::Prepared);
        s.commit(3, 12);
        assert_eq!(
            s.get(obj(1), 20),
            ReadOutcome::Value(Some(Bytes::from_static(b"c")))
        );
    }

    #[test]
    fn conflict_on_foreign_lock_and_abort_releases() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        match s.prepare(2, 6, &[w(1, "b")]) {
            PrepareOutcome::Conflict(msg) => assert!(msg.contains("locked")),
            other => panic!("expected conflict, got {other:?}"),
        }
        s.abort(1);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        assert_eq!(s.prepare(2, 6, &[w(1, "b")]), PrepareOutcome::Prepared);
        s.commit(2, 7);
        assert_eq!(
            s.get(obj(1), 100),
            ReadOutcome::Value(Some(Bytes::from_static(b"b")))
        );
    }

    #[test]
    fn delete_writes_tombstone() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]);
        s.commit(1, 2);
        s.prepare(2, 3, &[del(1)]);
        s.commit(2, 4);
        assert_eq!(
            s.get(obj(1), 3),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(None));
    }

    #[test]
    fn one_phase_commit_validates_and_installs() {
        let s = ServerStore::new();
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 5),
            CommitOnePhaseOutcome::Committed(5)
        );
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        // Stale snapshot conflicts.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 6) {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(
            s.get(obj(1), 10),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
    }

    #[test]
    fn allocate_is_monotone() {
        let s = ServerStore::new();
        assert_eq!(s.allocate(obj(9), 10), 0);
        assert_eq!(s.allocate(obj(9), 5), 10);
        assert_eq!(s.allocate(obj(9), 1), 15);
        assert_eq!(s.allocate(obj(8), 1), 0);
    }

    #[test]
    fn gc_drops_old_versions_and_dead_objects() {
        let s = ServerStore::new();
        for i in 0..5u64 {
            s.prepare(i, 2 * i, &[w(1, &format!("v{i}"))]);
            s.commit(i, 2 * i + 1);
        }
        assert_eq!(s.version_count(), 5);
        let dropped = s.gc(100, 1);
        assert_eq!(dropped, 4);
        assert_eq!(s.version_count(), 1);
        // Delete the object entirely, then GC removes it from the map.
        s.prepare(10, 50, &[del(1)]);
        s.commit(10, 51);
        s.gc(100, 1);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn bulk_load_visible_to_all_snapshots() {
        let s = ServerStore::new();
        s.load_unchecked(obj(1), 0, Bytes::from_static(b"seed"));
        assert_eq!(
            s.get(obj(1), 1),
            ReadOutcome::Value(Some(Bytes::from_static(b"seed")))
        );
    }

    #[test]
    fn commit_unknown_txn_presumes_abort() {
        let s = ServerStore::new();
        // A commit for a transaction this store never prepared can only be
        // the tail of a reaped transaction: refuse it.
        assert_eq!(s.commit(999, 5), CommitOutcome::AlreadyAborted);
        s.abort(999);
        assert_eq!(s.object_count(), 0);
        assert_eq!(s.outcome(999), Some(TxnOutcome::Aborted));
    }

    #[test]
    fn duplicate_commit_and_abort_are_deduped() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        assert_eq!(s.commit(1, 10), CommitOutcome::Committed(10));
        // Retried commit (response was lost): same answer, nothing re-done.
        assert_eq!(s.commit(1, 10), CommitOutcome::Committed(10));
        // A stale abort after the commit must not erase it.
        s.abort(1);
        assert_eq!(s.outcome(1), Some(TxnOutcome::Committed(10)));
        assert_eq!(
            s.get(obj(1), 20),
            ReadOutcome::Value(Some(Bytes::from_static(b"a")))
        );
        assert_eq!(s.version_count(), 1, "commit must not double-install");
        assert!(s.stats().dedup_hits >= 2);
    }

    #[test]
    fn duplicate_prepare_is_idempotent() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        // Duplicate delivery of the same prepare: still prepared, exactly
        // one lock, exactly one prepared entry.
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        assert_eq!(s.prepared_count(), 1);
        s.commit(1, 10);
        assert_eq!(s.version_count(), 1);
        assert_eq!(s.prepared_count(), 0);
    }

    #[test]
    fn lease_expiry_feeds_the_reaper_and_blocks_resurrection() {
        let s = ServerStore::new();
        assert_eq!(
            s.prepare_leased(7, 5, &[w(1, "a")], 3, Duration::from_micros(1)),
            PrepareOutcome::Prepared
        );
        std::thread::sleep(Duration::from_millis(1));
        let expired = s.expired_prepared(Instant::now());
        assert_eq!(expired, vec![(7, 3)]);
        // The reaper presumes abort...
        s.abort(7);
        assert_eq!(s.prepared_count(), 0);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        // ...after which neither a late prepare nor a late commit of the
        // same transaction may resurrect it.
        match s.prepare_leased(7, 5, &[w(1, "a")], 3, Duration::from_secs(10)) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.commit(7, 20), CommitOutcome::AlreadyAborted);
        assert_eq!(s.version_count(), 0);
    }

    #[test]
    fn one_phase_commit_retry_reports_original_fate() {
        let s = ServerStore::new();
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 5),
            CommitOnePhaseOutcome::Committed(5)
        );
        // Retry with a fresh timestamp: the original fate is reported and
        // nothing is re-installed.
        assert_eq!(
            s.commit_one_phase(1, 1, &[w(1, "a")], 9),
            CommitOnePhaseOutcome::Committed(5)
        );
        assert_eq!(s.version_count(), 1);
        // A conflicted one-phase commit is remembered as aborted.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 10) {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.outcome(2), Some(TxnOutcome::Aborted));
        match s.commit_one_phase(2, 1, &[w(1, "b")], 11) {
            CommitOnePhaseOutcome::Conflict(_) => {}
            other => panic!("expected conflict on retry, got {other:?}"),
        }
    }

    #[test]
    fn outcome_table_is_bounded_and_keeps_commits_intact() {
        let s = ServerStore::with_outcome_retention(16);
        for i in 0..100u64 {
            assert_eq!(
                s.commit_one_phase(i + 1, 2 * i + 1, &[w(i, "v")], 2 * i + 2),
                CommitOnePhaseOutcome::Committed(2 * i + 2)
            );
        }
        // Old outcomes were evicted, recent ones retained.
        assert_eq!(s.outcome(1), None);
        assert_eq!(s.outcome(100), Some(TxnOutcome::Committed(200)));
    }

    #[test]
    fn dump_versions_reports_history() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]);
        s.commit(1, 2);
        s.prepare(2, 3, &[del(1)]);
        s.commit(2, 4);
        let hist = s.dump_versions(obj(1));
        assert_eq!(hist.len(), 2);
        assert!(hist.contains(&(2, Some(Bytes::from_static(b"a")))));
        assert!(hist.contains(&(4, None)));
        assert!(s.dump_versions(obj(99)).is_empty());
    }

    #[test]
    fn multi_shard_prepare_is_all_or_nothing() {
        let s = ServerStore::new();
        // Spread writes over many shards; make one of them conflict.
        let mut writes: Vec<WriteOp> = (0..64).map(|i| w(i, "x")).collect();
        assert_eq!(s.prepare(1, 5, &[w(33, "old")]), PrepareOutcome::Prepared);
        s.commit(1, 10);
        writes[33] = w(33, "conflicting");
        match s.prepare(2, 5, &writes) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        // Nothing must be left locked by the failed prepare.
        for i in 0..64u64 {
            assert_ne!(
                s.get(obj(i), 100),
                ReadOutcome::Locked,
                "object {i} leaked a lock"
            );
        }
    }

    #[test]
    fn concurrent_disjoint_commits_succeed() {
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let threads = 8;
        let per_thread = 200u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let o = t as u64 * 10_000 + i;
                    let txn = o + 1;
                    let ts = 2 * o + 1;
                    assert_eq!(
                        s.commit_one_phase(txn, ts, &[w(o, "v")], ts + 1),
                        CommitOnePhaseOutcome::Committed(ts + 1)
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.object_count(), threads as u64 * per_thread);
        assert_eq!(s.stats().commits, threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_same_object_writers_one_winner_per_round() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let s = Arc::new(ServerStore::new());
        let wins = Arc::new(AtomicU64::new(0));
        let losses = Arc::new(AtomicU64::new(0));
        let ts = Arc::new(AtomicU64::new(1));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            let wins = Arc::clone(&wins);
            let losses = Arc::clone(&losses);
            let ts = Arc::clone(&ts);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let start = ts.fetch_add(1, Ordering::SeqCst);
                    let commit = ts.fetch_add(1, Ordering::SeqCst);
                    let txn = t * 1000 + i + 1;
                    match s.commit_one_phase(txn, start, &[w(7, "contended")], commit) {
                        CommitOnePhaseOutcome::Committed(_) => wins.fetch_add(1, Ordering::SeqCst),
                        CommitOnePhaseOutcome::Conflict(_) => losses.fetch_add(1, Ordering::SeqCst),
                    };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = wins.load(Ordering::SeqCst) + losses.load(Ordering::SeqCst);
        assert_eq!(total, 800);
        assert!(wins.load(Ordering::SeqCst) >= 1);
        // Every committed version is still ordered in the chain.
        assert_eq!(s.object_count(), 1);
    }
}
