//! Per-server multi-version storage with prepare locks.
//!
//! Each storage server owns one [`ServerStore`]: a map from [`ObjectId`] to
//! the object's committed [`VersionChain`] plus, while a transaction is
//! between its prepare and commit phases, a **prepare lock** holding the
//! staged new value.  The store also owns the server's non-transactional
//! allocation counters (used for node-id and row-id allocation).

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;
use yesquel_common::{ObjectId, Timestamp, TxnId};

use crate::mvcc::VersionChain;
use crate::protocol::WriteOp;

/// Result of reading an object at a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The visible value (or `None` if unwritten/deleted at the snapshot).
    Value(Option<Bytes>),
    /// The object is locked by a preparing transaction; retry shortly.
    Locked,
}

/// Result of prepare / one-phase-commit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareOutcome {
    /// Validation passed and locks are held.
    Prepared,
    /// Validation failed; nothing is locked.
    Conflict(String),
}

/// A prepare lock: the owning transaction and the value it intends to
/// install.
#[derive(Debug, Clone)]
struct PrepareLock {
    txn: TxnId,
    staged: Option<Bytes>,
}

/// State of one object on one server.
#[derive(Debug, Default, Clone)]
struct ObjectState {
    chain: VersionChain,
    lock: Option<PrepareLock>,
}

/// Aggregate statistics of one server store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `Get` requests served.
    pub gets: u64,
    /// Number of prepares that acquired locks.
    pub prepares: u64,
    /// Number of commits applied (two-phase or one-phase).
    pub commits: u64,
    /// Number of aborts processed.
    pub aborts: u64,
    /// Number of validation failures.
    pub conflicts: u64,
    /// Number of reads that found a prepare lock.
    pub locked_reads: u64,
    /// Number of versions dropped by garbage collection.
    pub gc_dropped: u64,
}

struct StoreInner {
    objects: HashMap<ObjectId, ObjectState>,
    /// Objects locked by each in-flight prepared transaction, so commit and
    /// abort do not need to scan the whole store.
    prepared: HashMap<TxnId, Vec<ObjectId>>,
    /// Non-transactional allocation counters.
    counters: HashMap<ObjectId, u64>,
    stats: StoreStats,
}

/// The storage of one server.  All methods are safe to call concurrently;
/// internally a single mutex serializes access, which also models the finite
/// processing capacity of one storage server.
pub struct ServerStore {
    inner: Mutex<StoreInner>,
}

impl Default for ServerStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ServerStore {
            inner: Mutex::new(StoreInner {
                objects: HashMap::new(),
                prepared: HashMap::new(),
                counters: HashMap::new(),
                stats: StoreStats::default(),
            }),
        }
    }

    /// Reads `obj` at snapshot `ts`.
    pub fn get(&self, obj: ObjectId, ts: Timestamp) -> ReadOutcome {
        let mut g = self.inner.lock();
        g.stats.gets += 1;
        match g.objects.get(&obj) {
            None => ReadOutcome::Value(None),
            Some(state) => {
                if state.lock.is_some() {
                    g.stats.locked_reads += 1;
                    ReadOutcome::Locked
                } else {
                    ReadOutcome::Value(state.chain.read_at(ts))
                }
            }
        }
    }

    /// Validates and locks `writes` on behalf of transaction `txn` reading
    /// at `start_ts`.  Either all writes are locked or none are.
    pub fn prepare(&self, txn: TxnId, start_ts: Timestamp, writes: &[WriteOp]) -> PrepareOutcome {
        let mut g = self.inner.lock();
        // Validation pass: no lock held by another transaction, and no
        // committed version newer than the snapshot (first-committer-wins).
        if let Some(reason) = Self::validate(&g, txn, start_ts, writes) {
            g.stats.conflicts += 1;
            return PrepareOutcome::Conflict(reason);
        }
        // Lock pass.
        let mut locked = Vec::with_capacity(writes.len());
        for w in writes {
            let state = g.objects.entry(w.obj).or_default();
            state.lock = Some(PrepareLock { txn, staged: w.value.clone() });
            locked.push(w.obj);
        }
        g.prepared.entry(txn).or_default().extend(locked);
        g.stats.prepares += 1;
        PrepareOutcome::Prepared
    }

    /// First-committer-wins and lock-conflict validation; returns a failure
    /// reason or `None` when the writes may proceed.
    fn validate(
        g: &StoreInner,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
    ) -> Option<String> {
        for w in writes {
            if let Some(state) = g.objects.get(&w.obj) {
                if let Some(lock) = &state.lock {
                    if lock.txn != txn {
                        return Some(format!("object {} locked by txn {}", w.obj, lock.txn));
                    }
                }
                if state.chain.has_newer_than(start_ts) {
                    return Some(format!(
                        "object {} has a version newer than snapshot {}",
                        w.obj, start_ts
                    ));
                }
            }
        }
        None
    }

    /// Installs the versions staged by a successful prepare of `txn` at
    /// `commit_ts` and releases the locks.  Committing a transaction that
    /// never prepared here is a no-op (idempotent, as phase two must be).
    pub fn commit(&self, txn: TxnId, commit_ts: Timestamp) {
        let mut g = self.inner.lock();
        let objs = g.prepared.remove(&txn).unwrap_or_default();
        for obj in objs {
            if let Some(state) = g.objects.get_mut(&obj) {
                match state.lock.take() {
                    Some(lock) if lock.txn == txn => {
                        state.chain.install(commit_ts, lock.staged);
                    }
                    other => {
                        // Lock stolen or missing: put it back if it belongs
                        // to someone else.  This cannot happen in the current
                        // protocol (locks are only released by their owner),
                        // but stay defensive.
                        state.lock = other.filter(|l| l.txn != txn);
                    }
                }
            }
        }
        g.stats.commits += 1;
    }

    /// Validates and installs `writes` in one step, assigning `commit_ts`.
    /// Used by one-phase commit, where the caller obtains a commit timestamp
    /// via the server-side oracle handle.
    pub fn commit_one_phase(
        &self,
        txn: TxnId,
        start_ts: Timestamp,
        writes: &[WriteOp],
        commit_ts: Timestamp,
    ) -> PrepareOutcome {
        let mut g = self.inner.lock();
        if let Some(reason) = Self::validate(&g, txn, start_ts, writes) {
            g.stats.conflicts += 1;
            return PrepareOutcome::Conflict(reason);
        }
        for w in writes {
            let state = g.objects.entry(w.obj).or_default();
            state.chain.install(commit_ts, w.value.clone());
        }
        g.stats.commits += 1;
        PrepareOutcome::Prepared
    }

    /// Releases every lock held by `txn` and discards its staged writes.
    pub fn abort(&self, txn: TxnId) {
        let mut g = self.inner.lock();
        let objs = g.prepared.remove(&txn).unwrap_or_default();
        for obj in objs {
            if let Some(state) = g.objects.get_mut(&obj) {
                if state.lock.as_ref().map(|l| l.txn == txn).unwrap_or(false) {
                    state.lock = None;
                }
            }
        }
        g.stats.aborts += 1;
    }

    /// Atomically adds `delta` to the counter at `obj`, returning the
    /// pre-increment value.
    pub fn allocate(&self, obj: ObjectId, delta: u64) -> u64 {
        let mut g = self.inner.lock();
        let c = g.counters.entry(obj).or_insert(0);
        let start = *c;
        *c += delta;
        start
    }

    /// Installs a version directly, bypassing concurrency control (bulk
    /// loading only).
    pub fn load_unchecked(&self, obj: ObjectId, ts: Timestamp, value: Bytes) {
        let mut g = self.inner.lock();
        g.objects.entry(obj).or_default().chain.install(ts, Some(value));
    }

    /// Garbage-collects old versions given the oldest active snapshot.
    /// Returns the number of versions dropped.
    pub fn gc(&self, min_active_ts: Timestamp, keep_versions: usize) -> u64 {
        let mut g = self.inner.lock();
        let mut dropped = 0u64;
        let mut dead = Vec::new();
        for (obj, state) in g.objects.iter_mut() {
            dropped += state.chain.gc(min_active_ts, keep_versions) as u64;
            if state.lock.is_none() && state.chain.is_fully_dead(min_active_ts) {
                dead.push(*obj);
            }
        }
        for obj in dead {
            g.objects.remove(&obj);
        }
        g.stats.gc_dropped += dropped;
        dropped
    }

    /// Snapshot of the store's statistics.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> u64 {
        self.inner.lock().objects.len() as u64
    }

    /// Total number of committed versions currently stored.
    pub fn version_count(&self) -> u64 {
        self.inner.lock().objects.values().map(|s| s.chain.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(1, o)
    }

    fn w(o: u64, v: &str) -> WriteOp {
        WriteOp { obj: obj(o), value: Some(Bytes::copy_from_slice(v.as_bytes())) }
    }

    fn del(o: u64) -> WriteOp {
        WriteOp { obj: obj(o), value: None }
    }

    #[test]
    fn prepare_commit_read_cycle() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a"), w(2, "b")]), PrepareOutcome::Prepared);
        // Reads see the lock, not the staged value.
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Locked);
        s.commit(1, 10);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(Some(Bytes::from_static(b"a"))));
        assert_eq!(s.get(obj(1), 9), ReadOutcome::Value(None));
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.stats().commits, 1);
    }

    #[test]
    fn conflict_on_newer_version() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        s.commit(1, 10);
        // A transaction that started before ts 10 cannot overwrite object 1.
        match s.prepare(2, 5, &[w(1, "b")]) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.stats().conflicts, 1);
        // A later snapshot can.
        assert_eq!(s.prepare(3, 11, &[w(1, "c")]), PrepareOutcome::Prepared);
        s.commit(3, 12);
        assert_eq!(s.get(obj(1), 20), ReadOutcome::Value(Some(Bytes::from_static(b"c"))));
    }

    #[test]
    fn conflict_on_foreign_lock_and_abort_releases() {
        let s = ServerStore::new();
        assert_eq!(s.prepare(1, 5, &[w(1, "a")]), PrepareOutcome::Prepared);
        match s.prepare(2, 6, &[w(1, "b")]) {
            PrepareOutcome::Conflict(msg) => assert!(msg.contains("locked")),
            other => panic!("expected conflict, got {other:?}"),
        }
        s.abort(1);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(None));
        assert_eq!(s.prepare(2, 6, &[w(1, "b")]), PrepareOutcome::Prepared);
        s.commit(2, 7);
        assert_eq!(s.get(obj(1), 100), ReadOutcome::Value(Some(Bytes::from_static(b"b"))));
    }

    #[test]
    fn delete_writes_tombstone() {
        let s = ServerStore::new();
        s.prepare(1, 1, &[w(1, "a")]);
        s.commit(1, 2);
        s.prepare(2, 3, &[del(1)]);
        s.commit(2, 4);
        assert_eq!(s.get(obj(1), 3), ReadOutcome::Value(Some(Bytes::from_static(b"a"))));
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(None));
    }

    #[test]
    fn one_phase_commit_validates_and_installs() {
        let s = ServerStore::new();
        assert_eq!(s.commit_one_phase(1, 1, &[w(1, "a")], 5), PrepareOutcome::Prepared);
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(Some(Bytes::from_static(b"a"))));
        // Stale snapshot conflicts.
        match s.commit_one_phase(2, 1, &[w(1, "b")], 6) {
            PrepareOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(s.get(obj(1), 10), ReadOutcome::Value(Some(Bytes::from_static(b"a"))));
    }

    #[test]
    fn allocate_is_monotone() {
        let s = ServerStore::new();
        assert_eq!(s.allocate(obj(9), 10), 0);
        assert_eq!(s.allocate(obj(9), 5), 10);
        assert_eq!(s.allocate(obj(9), 1), 15);
        assert_eq!(s.allocate(obj(8), 1), 0);
    }

    #[test]
    fn gc_drops_old_versions_and_dead_objects() {
        let s = ServerStore::new();
        for i in 0..5u64 {
            s.prepare(i, 2 * i, &[w(1, &format!("v{i}"))]);
            s.commit(i, 2 * i + 1);
        }
        assert_eq!(s.version_count(), 5);
        let dropped = s.gc(100, 1);
        assert_eq!(dropped, 4);
        assert_eq!(s.version_count(), 1);
        // Delete the object entirely, then GC removes it from the map.
        s.prepare(10, 50, &[del(1)]);
        s.commit(10, 51);
        s.gc(100, 1);
        assert_eq!(s.object_count(), 0);
    }

    #[test]
    fn bulk_load_visible_to_all_snapshots() {
        let s = ServerStore::new();
        s.load_unchecked(obj(1), 0, Bytes::from_static(b"seed"));
        assert_eq!(s.get(obj(1), 1), ReadOutcome::Value(Some(Bytes::from_static(b"seed"))));
    }

    #[test]
    fn commit_unknown_txn_is_noop() {
        let s = ServerStore::new();
        s.commit(999, 5);
        s.abort(999);
        assert_eq!(s.object_count(), 0);
    }
}
