//! Timestamp oracle and transaction-id allocation.
//!
//! The paper's transactions do not require special hardware clocks (unlike
//! Spanner/F1, as its related-work section notes); a logical counter is
//! sufficient because Yesquel runs within a single data center.  The oracle
//! is shared by every client and server of one deployment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yesquel_common::{Timestamp, TxnId};

/// Monotonic source of timestamps and transaction ids.
///
/// Cloning shares the underlying counters.
#[derive(Clone, Default)]
pub struct TimestampOracle {
    inner: Arc<OracleInner>,
}

#[derive(Default)]
struct OracleInner {
    // Timestamp 0 is reserved for "bootstrap" writes that load initial data
    // outside any transaction, so the counter starts at 1.
    next_ts: AtomicU64,
    next_txn: AtomicU64,
}

impl TimestampOracle {
    /// Creates a fresh oracle.
    pub fn new() -> Self {
        let o = TimestampOracle {
            inner: Arc::new(OracleInner::default()),
        };
        o.inner.next_ts.store(1, Ordering::SeqCst);
        o.inner.next_txn.store(1, Ordering::SeqCst);
        o
    }

    /// Returns the next timestamp (strictly increasing across all callers).
    pub fn next_timestamp(&self) -> Timestamp {
        self.inner.next_ts.fetch_add(1, Ordering::SeqCst)
    }

    /// Returns the most recently issued timestamp without issuing a new one.
    pub fn last_timestamp(&self) -> Timestamp {
        self.inner.next_ts.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Returns a fresh transaction id.
    pub fn next_txn_id(&self) -> TxnId {
        self.inner.next_txn.fetch_add(1, Ordering::SeqCst)
    }

    /// Advances the counter so the next issued timestamp is strictly greater
    /// than `ts`.  Never moves the counter backwards.  Called after
    /// write-ahead-log recovery, when the stores hold versions stamped by a
    /// previous incarnation's oracle.
    pub fn advance_past(&self, ts: Timestamp) {
        self.inner.next_ts.fetch_max(ts + 1, Ordering::SeqCst);
    }

    /// Advances the counter so the next issued transaction id is strictly
    /// greater than `txn` (recovery counterpart of [`Self::advance_past`];
    /// reusing an id would collide with recovered outcome-table entries).
    pub fn advance_txn_past(&self, txn: TxnId) {
        self.inner.next_txn.fetch_max(txn + 1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn timestamps_strictly_increase() {
        let o = TimestampOracle::new();
        let a = o.next_timestamp();
        let b = o.next_timestamp();
        assert!(b > a);
        assert!(a >= 1);
        assert_eq!(o.last_timestamp(), b);
    }

    #[test]
    fn clone_shares_counter() {
        let o = TimestampOracle::new();
        let o2 = o.clone();
        let a = o.next_timestamp();
        let b = o2.next_timestamp();
        assert_ne!(a, b);
    }

    #[test]
    fn concurrent_uniqueness() {
        let o = TimestampOracle::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let o = o.clone();
            handles.push(thread::spawn(move || {
                (0..1000).map(|_| o.next_timestamp()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(all.insert(ts), "duplicate timestamp {ts}");
            }
        }
        assert_eq!(all.len(), 8000);
    }
}
