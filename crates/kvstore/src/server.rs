//! The storage-server process: dispatches protocol requests to the store.

use std::sync::Arc;

use yesquel_rpc::Service;

use crate::oracle::TimestampOracle;
use crate::protocol::{KvRequest, KvResponse};
use crate::store::{PrepareOutcome, ReadOutcome, ServerStore};

/// One storage server: a [`ServerStore`] plus a handle to the timestamp
/// oracle (used only for one-phase commits, where the server assigns the
/// commit timestamp itself).
pub struct KvServer {
    store: ServerStore,
    oracle: TimestampOracle,
}

impl KvServer {
    /// Creates a server sharing the deployment's timestamp oracle.
    pub fn new(oracle: TimestampOracle) -> Self {
        KvServer {
            store: ServerStore::new(),
            oracle,
        }
    }

    /// Direct access to the underlying store (tests, GC driving, stats).
    pub fn store(&self) -> &ServerStore {
        &self.store
    }

    /// Creates `n` servers sharing one oracle.
    pub fn make_servers(n: usize, oracle: &TimestampOracle) -> Vec<Arc<KvServer>> {
        (0..n)
            .map(|_| Arc::new(KvServer::new(oracle.clone())))
            .collect()
    }
}

impl Service for KvServer {
    type Request = KvRequest;
    type Response = KvResponse;

    fn call(&self, req: KvRequest) -> KvResponse {
        match req {
            KvRequest::Get { obj, ts } => match self.store.get(obj, ts) {
                ReadOutcome::Value(v) => KvResponse::Value(v),
                ReadOutcome::Locked => KvResponse::Locked,
            },
            KvRequest::Prepare {
                txn,
                start_ts,
                writes,
            } => match self.store.prepare(txn, start_ts, &writes) {
                PrepareOutcome::Prepared => KvResponse::Prepared,
                PrepareOutcome::Conflict(reason) => KvResponse::Conflict { reason },
            },
            KvRequest::Commit { txn, commit_ts } => {
                self.store.commit(txn, commit_ts);
                KvResponse::Committed { commit_ts }
            }
            KvRequest::CommitOnePhase {
                txn,
                start_ts,
                writes,
            } => {
                // The commit timestamp is drawn while the request is being
                // processed; the store applies validation and installation
                // atomically under its lock, so any snapshot issued after
                // this timestamp observes the installed versions.
                let commit_ts = self.oracle.next_timestamp();
                match self
                    .store
                    .commit_one_phase(txn, start_ts, &writes, commit_ts)
                {
                    PrepareOutcome::Prepared => KvResponse::Committed { commit_ts },
                    PrepareOutcome::Conflict(reason) => KvResponse::Conflict { reason },
                }
            }
            KvRequest::Abort { txn } => {
                self.store.abort(txn);
                KvResponse::Aborted
            }
            KvRequest::Allocate { obj, delta } => KvResponse::Allocated {
                start: self.store.allocate(obj, delta),
            },
            KvRequest::Gc {
                min_active_ts,
                keep_versions,
            } => {
                self.store.gc(min_active_ts, keep_versions);
                KvResponse::Ok
            }
            KvRequest::LoadUnchecked { obj, ts, value } => {
                self.store.load_unchecked(obj, ts, value);
                KvResponse::Ok
            }
            KvRequest::Stats => {
                let s = self.store.stats();
                KvResponse::Stats {
                    objects: self.store.object_count(),
                    versions: self.store.version_count(),
                    gets: s.gets,
                    prepares: s.prepares,
                    commits: s.commits,
                    conflicts: s.conflicts,
                }
            }
        }
    }

    fn request_wire_size(req: &KvRequest) -> usize {
        req.wire_size()
    }

    fn response_wire_size(resp: &KvResponse) -> usize {
        resp.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use yesquel_common::ObjectId;

    #[test]
    fn server_dispatch_roundtrip() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(oracle.clone());
        let obj = ObjectId::new(5, 7);

        // One-phase commit a value, then read it back.
        let resp = srv.call(KvRequest::CommitOnePhase {
            txn: 1,
            start_ts: oracle.next_timestamp(),
            writes: vec![crate::protocol::WriteOp {
                obj,
                value: Some(Bytes::from_static(b"x")),
            }],
        });
        let commit_ts = match resp {
            KvResponse::Committed { commit_ts } => commit_ts,
            other => panic!("unexpected response {other:?}"),
        };
        match srv.call(KvRequest::Get { obj, ts: commit_ts }) {
            KvResponse::Value(Some(v)) => assert_eq!(&v[..], b"x"),
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Get {
            obj,
            ts: commit_ts - 1,
        }) {
            KvResponse::Value(None) => {}
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Stats) {
            KvResponse::Stats {
                objects, commits, ..
            } => {
                assert_eq!(objects, 1);
                assert_eq!(commits, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn two_phase_dispatch() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(oracle.clone());
        let obj = ObjectId::new(1, 1);
        let start = oracle.next_timestamp();
        match srv.call(KvRequest::Prepare {
            txn: 7,
            start_ts: start,
            writes: vec![crate::protocol::WriteOp {
                obj,
                value: Some(Bytes::from_static(b"v")),
            }],
        }) {
            KvResponse::Prepared => {}
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Get { obj, ts: start }) {
            KvResponse::Locked => {}
            other => panic!("unexpected response {other:?}"),
        }
        let cts = oracle.next_timestamp();
        srv.call(KvRequest::Commit {
            txn: 7,
            commit_ts: cts,
        });
        match srv.call(KvRequest::Get { obj, ts: cts }) {
            KvResponse::Value(Some(v)) => assert_eq!(&v[..], b"v"),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn allocate_dispatch() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(oracle);
        let obj = ObjectId::meta(3);
        match srv.call(KvRequest::Allocate { obj, delta: 100 }) {
            KvResponse::Allocated { start } => assert_eq!(start, 0),
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Allocate { obj, delta: 1 }) {
            KvResponse::Allocated { start } => assert_eq!(start, 100),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
