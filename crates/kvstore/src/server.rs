//! The storage-server process: dispatches protocol requests to the store.
//!
//! Besides plain dispatch, the server owns the **prepare-lease reaper**: a
//! pass, piggybacked on request processing (and callable explicitly), that
//! resolves prepared transactions whose coordinator went silent.  The
//! protocol is presumed-abort with a primary participant acting as the
//! commit point:
//!
//! * the coordinator commits the **primary first**; only after the primary
//!   acknowledges does it commit the remaining participants;
//! * a primary whose lease expires may therefore **unilaterally abort** —
//!   no secondary can have committed before it;
//! * a secondary whose lease expires asks the primary (over the peer
//!   transport) what happened and **adopts** the primary's outcome:
//!   committed → install, aborted/unknown → release.  If the primary is
//!   unreachable the secondary conservatively stays prepared and retries on
//!   a later pass.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use yesquel_common::{Error, KvConfig, Result, ServerId};
use yesquel_rpc::{Service, Transport};
use yesquel_wal::Wal;

use crate::oracle::TimestampOracle;
use crate::protocol::{KvRequest, KvResponse, TxnStatusKind};
use crate::store::{
    CommitOnePhaseOutcome, CommitOutcome, PrepareOutcome, ReadOutcome, ServerStore, TxnOutcome,
};

/// One storage server: a [`ServerStore`], a handle to the timestamp oracle
/// (used only for one-phase commits, where the server assigns the commit
/// timestamp itself), and the reaper state.
pub struct KvServer {
    id: ServerId,
    store: ServerStore,
    oracle: TimestampOracle,
    /// Transport to the sibling servers, used by the reaper to ask a
    /// transaction's primary for its outcome.  `Weak` because the transport
    /// owns the servers — an `Arc` here would leak the whole cluster.
    peer: Mutex<Option<Weak<dyn Transport<KvServer>>>>,
    /// Minimum microseconds between piggybacked reaper passes.
    reap_interval_us: u64,
    /// Elapsed-microsecond timestamp (relative to `started`) of the last
    /// reaper pass.
    last_reap_us: AtomicU64,
    started: Instant,
    reaped_aborts: AtomicU64,
    reaped_commits: AtomicU64,
    /// Lease granted to prepared transactions restored from the log; their
    /// coordinator may be gone, so after this long the reaper takes over.
    recovery_lease: Duration,
}

impl KvServer {
    /// Creates server `id` sharing the deployment's timestamp oracle, with
    /// default reaper and dedup settings.
    pub fn new(id: ServerId, oracle: TimestampOracle) -> Self {
        Self::with_config(id, oracle, &KvConfig::default())
    }

    /// Creates server `id` with explicit reaper / dedup configuration.
    pub fn with_config(id: ServerId, oracle: TimestampOracle, cfg: &KvConfig) -> Self {
        Self::with_wal(id, oracle, cfg, None).expect("in-memory server construction cannot fail")
    }

    /// Creates server `id` backed by a write-ahead log (when `Some`), and
    /// **recovers** from it: whatever clean-prefix records the log holds
    /// are replayed into the store before the server handles any request.
    /// The database layer constructs the per-server logs and wires this up
    /// when `KvConfig::wal_dir` is set.
    pub fn with_wal(
        id: ServerId,
        oracle: TimestampOracle,
        cfg: &KvConfig,
        wal: Option<Arc<Wal>>,
    ) -> Result<Self> {
        let server = KvServer {
            id,
            store: ServerStore::with_wal(cfg.txn_outcome_retention, wal.clone()),
            oracle,
            peer: Mutex::new(None),
            reap_interval_us: cfg.reap_interval_us.max(1),
            last_reap_us: AtomicU64::new(0),
            started: Instant::now(),
            reaped_aborts: AtomicU64::new(0),
            reaped_commits: AtomicU64::new(0),
            recovery_lease: Duration::from_micros(cfg.prepare_lease_us.max(1)),
        };
        if let Some(wal) = wal {
            let records = wal.recover()?;
            let recovered = server.store.replay(&records, server.recovery_lease);
            wal.note_recovered_txns(recovered);
        }
        Ok(server)
    }

    /// Simulates an amnesia crash-restart of this server: volatile state is
    /// dropped, the log loses its never-fsynced tail (a power loss would
    /// have taken it), and the store is rebuilt by replaying the clean
    /// prefix.  Without a log this is a plain amnesia crash: everything
    /// volatile is simply gone, as on a real diskless server.
    pub fn amnesia_restart(&self) -> Result<()> {
        let wal = self.store().wal().cloned();
        self.store.wipe_volatile();
        let Some(wal) = wal else {
            return Ok(());
        };
        wal.power_loss()?;
        let records = wal.recover()?;
        let recovered = self.store.replay(&records, self.recovery_lease);
        wal.note_recovered_txns(recovered);
        Ok(())
    }

    /// Checkpoints the store into a fresh log segment and truncates the old
    /// ones (no-op without a log).
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()
    }

    /// This server's id (its index in the cluster).
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Direct access to the underlying store (tests, GC driving, stats).
    pub fn store(&self) -> &ServerStore {
        &self.store
    }

    /// Connects this server to its siblings for reaper resolution calls.
    /// Called once at deployment build time.
    pub fn set_peer_transport(&self, transport: &Arc<dyn Transport<KvServer>>) {
        *self.peer.lock() = Some(Arc::downgrade(transport));
    }

    /// Creates `n` servers sharing one oracle, with default settings.
    pub fn make_servers(n: usize, oracle: &TimestampOracle) -> Vec<Arc<KvServer>> {
        (0..n)
            .map(|id| Arc::new(KvServer::new(id, oracle.clone())))
            .collect()
    }

    /// Creates `n` servers sharing one oracle and a configuration.
    pub fn make_servers_with(
        n: usize,
        oracle: &TimestampOracle,
        cfg: &KvConfig,
    ) -> Vec<Arc<KvServer>> {
        (0..n)
            .map(|id| Arc::new(KvServer::with_config(id, oracle.clone(), cfg)))
            .collect()
    }

    /// Transactions resolved by this server's reaper so far, as
    /// `(adopted commits, presumed aborts)`.
    pub fn reap_counts(&self) -> (u64, u64) {
        (
            self.reaped_commits.load(Ordering::Relaxed),
            self.reaped_aborts.load(Ordering::Relaxed),
        )
    }

    /// Runs a reaper pass if at least `reap_interval_us` elapsed since the
    /// previous one.  The fast path is one relaxed atomic load: unless some
    /// transaction is actually sitting in the prepared state, neither the
    /// monotonic clock (tens of nanoseconds — measurable on a
    /// sub-microsecond Get) nor any lock is touched.
    fn maybe_reap(&self) {
        if !self.store.has_prepared() {
            return;
        }
        let now_us = self.started.elapsed().as_micros() as u64;
        let last = self.last_reap_us.load(Ordering::Relaxed);
        if now_us.saturating_sub(last) < self.reap_interval_us {
            return;
        }
        if self
            .last_reap_us
            .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another request's piggyback won the race
        }
        self.reap();
    }

    /// Resolves every prepared transaction whose coordinator lease expired.
    /// Normally piggybacked on request processing; exposed so tests and the
    /// deployment can force convergence after healing a partition.
    pub fn reap(&self) {
        let expired = self.store.expired_prepared(Instant::now());
        if expired.is_empty() {
            return;
        }
        let peer = self.peer.lock().as_ref().and_then(Weak::upgrade);
        for (txn, primary) in expired {
            if primary == self.id {
                // Primary participant: the coordinator commits the primary
                // before any secondary, so if we are still prepared past the
                // lease, no secondary has committed — presumed abort is safe.
                // A log append failure leaves the transaction prepared (the
                // abort is durable before it is observable); retry later.
                if self.store.abort(txn).is_ok() {
                    self.reaped_aborts.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            // Secondary participant: adopt the primary's outcome.
            let Some(peer) = peer.as_ref() else {
                continue; // no peer transport wired up: stay prepared
            };
            // On an unreachable primary or a malformed answer, stay
            // conservative: keep the locks and retry on a later pass.
            if let Ok(KvResponse::TxnOutcome { status }) =
                peer.call(primary, KvRequest::TxnStatus { txn })
            {
                match status {
                    TxnStatusKind::Committed(commit_ts) => {
                        // The commit to this participant was lost; install
                        // it from the primary's record.
                        if self.store.commit(txn, commit_ts).is_ok() {
                            self.reaped_commits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    TxnStatusKind::Aborted | TxnStatusKind::Unknown => {
                        // Aborted, or the primary never heard of the
                        // transaction (its prepare never landed, so the
                        // coordinator can never have committed): release.
                        if self.store.abort(txn).is_ok() {
                            self.reaped_aborts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    TxnStatusKind::Pending => {
                        // The primary is still waiting on its own lease;
                        // stay prepared and let a later pass resolve.
                    }
                }
            }
        }
    }

    /// Renders a store-level failure (log append / fsync) as a response.
    /// The store's log-before-apply ordering guarantees nothing was
    /// installed or made observable when this is returned.
    fn server_error(e: Error) -> KvResponse {
        KvResponse::ServerError {
            message: e.to_string(),
        }
    }

    /// What this server knows about a transaction, for `TxnStatus`.
    fn txn_status(&self, txn: yesquel_common::TxnId) -> TxnStatusKind {
        match self.store.outcome(txn) {
            Some(TxnOutcome::Committed(ts)) => TxnStatusKind::Committed(ts),
            Some(TxnOutcome::Aborted) => TxnStatusKind::Aborted,
            None => {
                if self.store.is_prepared(txn) {
                    TxnStatusKind::Pending
                } else {
                    TxnStatusKind::Unknown
                }
            }
        }
    }
}

impl Service for KvServer {
    type Request = KvRequest;
    type Response = KvResponse;

    fn call(&self, req: KvRequest) -> KvResponse {
        // Piggyback the reaper on ordinary traffic — but not on TxnStatus,
        // which the reaper itself sends (bounding reaper recursion to one
        // hop: secondary reap → primary status, never further).
        if !matches!(req, KvRequest::TxnStatus { .. }) {
            self.maybe_reap();
        }
        match req {
            KvRequest::Get { obj, ts } => match self.store.get(obj, ts) {
                ReadOutcome::Value(v) => KvResponse::Value(v),
                ReadOutcome::Locked => KvResponse::Locked,
            },
            KvRequest::Prepare {
                txn,
                start_ts,
                writes,
                primary,
                lease_us,
            } => match self.store.prepare_leased(
                txn,
                start_ts,
                &writes,
                primary,
                Duration::from_micros(lease_us.max(1)),
            ) {
                Ok(PrepareOutcome::Prepared) => KvResponse::Prepared,
                Ok(PrepareOutcome::Conflict(reason)) => KvResponse::Conflict { reason },
                Err(e) => Self::server_error(e),
            },
            KvRequest::Commit { txn, commit_ts } => match self.store.commit(txn, commit_ts) {
                Ok(CommitOutcome::Committed(ts)) => KvResponse::Committed { commit_ts: ts },
                Ok(CommitOutcome::AlreadyAborted) => KvResponse::Aborted,
                Err(e) => Self::server_error(e),
            },
            KvRequest::CommitOnePhase {
                txn,
                start_ts,
                writes,
            } => {
                // The commit timestamp is drawn while the request is being
                // processed; the store applies validation and installation
                // atomically under its lock, so any snapshot issued after
                // this timestamp observes the installed versions.  A
                // deduplicated retry reports the original timestamp instead.
                let commit_ts = self.oracle.next_timestamp();
                match self
                    .store
                    .commit_one_phase(txn, start_ts, &writes, commit_ts)
                {
                    Ok(CommitOnePhaseOutcome::Committed(ts)) => {
                        KvResponse::Committed { commit_ts: ts }
                    }
                    Ok(CommitOnePhaseOutcome::Conflict(reason)) => KvResponse::Conflict { reason },
                    Err(e) => Self::server_error(e),
                }
            }
            KvRequest::Abort { txn } => match self.store.abort(txn) {
                Ok(()) => KvResponse::Aborted,
                Err(e) => Self::server_error(e),
            },
            KvRequest::Allocate { obj, delta } => match self.store.allocate(obj, delta) {
                Ok(start) => KvResponse::Allocated { start },
                Err(e) => Self::server_error(e),
            },
            KvRequest::Gc {
                min_active_ts,
                keep_versions,
            } => {
                self.store.gc(min_active_ts, keep_versions);
                KvResponse::Ok
            }
            KvRequest::LoadUnchecked { obj, ts, value } => {
                match self.store.load_unchecked(obj, ts, value) {
                    Ok(()) => KvResponse::Ok,
                    Err(e) => Self::server_error(e),
                }
            }
            KvRequest::TxnStatus { txn } => KvResponse::TxnOutcome {
                status: self.txn_status(txn),
            },
            KvRequest::Batch(reqs) => {
                // One coalesced frame from the batching transport: serve the
                // enclosed requests in order, exactly as if they had arrived
                // back to back (each sub-call runs its own reaper piggyback,
                // dedup, and locking).
                KvResponse::Batch(reqs.into_iter().map(|r| self.call(r)).collect())
            }
            KvRequest::Stats => {
                let s = self.store.stats();
                KvResponse::Stats {
                    objects: self.store.object_count(),
                    versions: self.store.version_count(),
                    gets: s.gets,
                    prepares: s.prepares,
                    commits: s.commits,
                    conflicts: s.conflicts,
                }
            }
        }
    }

    fn request_wire_size(req: &KvRequest) -> usize {
        req.wire_size()
    }

    fn response_wire_size(resp: &KvResponse) -> usize {
        resp.wire_size()
    }
}

impl yesquel_rpc::BatchableService for KvServer {
    fn make_batch(reqs: Vec<KvRequest>) -> KvRequest {
        KvRequest::Batch(reqs)
    }

    fn split_batch(resp: KvResponse) -> Option<Vec<KvResponse>> {
        match resp {
            KvResponse::Batch(resps) => Some(resps),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use yesquel_common::ObjectId;

    fn prepare_req(txn: u64, start_ts: u64, writes: Vec<crate::protocol::WriteOp>) -> KvRequest {
        KvRequest::Prepare {
            txn,
            start_ts,
            writes,
            primary: 0,
            lease_us: 1_000_000,
        }
    }

    #[test]
    fn server_dispatch_roundtrip() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(0, oracle.clone());
        let obj = ObjectId::new(5, 7);

        // One-phase commit a value, then read it back.
        let resp = srv.call(KvRequest::CommitOnePhase {
            txn: 1,
            start_ts: oracle.next_timestamp(),
            writes: vec![crate::protocol::WriteOp {
                obj,
                value: Some(Bytes::from_static(b"x")),
            }],
        });
        let commit_ts = match resp {
            KvResponse::Committed { commit_ts } => commit_ts,
            other => panic!("unexpected response {other:?}"),
        };
        match srv.call(KvRequest::Get { obj, ts: commit_ts }) {
            KvResponse::Value(Some(v)) => assert_eq!(&v[..], b"x"),
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Get {
            obj,
            ts: commit_ts - 1,
        }) {
            KvResponse::Value(None) => {}
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Stats) {
            KvResponse::Stats {
                objects, commits, ..
            } => {
                assert_eq!(objects, 1);
                assert_eq!(commits, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn two_phase_dispatch() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(0, oracle.clone());
        let obj = ObjectId::new(1, 1);
        let start = oracle.next_timestamp();
        match srv.call(prepare_req(
            7,
            start,
            vec![crate::protocol::WriteOp {
                obj,
                value: Some(Bytes::from_static(b"v")),
            }],
        )) {
            KvResponse::Prepared => {}
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Get { obj, ts: start }) {
            KvResponse::Locked => {}
            other => panic!("unexpected response {other:?}"),
        }
        let cts = oracle.next_timestamp();
        srv.call(KvRequest::Commit {
            txn: 7,
            commit_ts: cts,
        });
        match srv.call(KvRequest::Get { obj, ts: cts }) {
            KvResponse::Value(Some(v)) => assert_eq!(&v[..], b"v"),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn allocate_dispatch() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(0, oracle);
        let obj = ObjectId::meta(3);
        match srv.call(KvRequest::Allocate { obj, delta: 100 }) {
            KvResponse::Allocated { start } => assert_eq!(start, 0),
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Allocate { obj, delta: 1 }) {
            KvResponse::Allocated { start } => assert_eq!(start, 100),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn txn_status_reports_fate() {
        let oracle = TimestampOracle::new();
        let srv = KvServer::new(0, oracle.clone());
        let obj = ObjectId::new(1, 1);
        let w = crate::protocol::WriteOp {
            obj,
            value: Some(Bytes::from_static(b"v")),
        };
        // Unknown before anything happens.
        match srv.call(KvRequest::TxnStatus { txn: 42 }) {
            KvResponse::TxnOutcome {
                status: TxnStatusKind::Unknown,
            } => {}
            other => panic!("unexpected response {other:?}"),
        }
        // Pending while prepared.
        srv.call(prepare_req(42, oracle.next_timestamp(), vec![w]));
        match srv.call(KvRequest::TxnStatus { txn: 42 }) {
            KvResponse::TxnOutcome {
                status: TxnStatusKind::Pending,
            } => {}
            other => panic!("unexpected response {other:?}"),
        }
        // Committed after commit.
        let cts = oracle.next_timestamp();
        srv.call(KvRequest::Commit {
            txn: 42,
            commit_ts: cts,
        });
        match srv.call(KvRequest::TxnStatus { txn: 42 }) {
            KvResponse::TxnOutcome {
                status: TxnStatusKind::Committed(ts),
            } => assert_eq!(ts, cts),
            other => panic!("unexpected response {other:?}"),
        }
        // Aborted for an aborted transaction.
        srv.call(KvRequest::Abort { txn: 43 });
        match srv.call(KvRequest::TxnStatus { txn: 43 }) {
            KvResponse::TxnOutcome {
                status: TxnStatusKind::Aborted,
            } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn primary_reaper_presumes_abort_on_expired_lease() {
        let oracle = TimestampOracle::new();
        let cfg = KvConfig {
            prepare_lease_us: 1,
            reap_interval_us: 1,
            ..Default::default()
        };
        let srv = KvServer::with_config(0, oracle.clone(), &cfg);
        let obj = ObjectId::new(1, 1);
        match srv.call(KvRequest::Prepare {
            txn: 9,
            start_ts: oracle.next_timestamp(),
            writes: vec![crate::protocol::WriteOp {
                obj,
                value: Some(Bytes::from_static(b"v")),
            }],
            primary: 0, // this server is the primary
            lease_us: 1,
        }) {
            KvResponse::Prepared => {}
            other => panic!("unexpected response {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(2));
        // Any ordinary request piggybacks the reaper.
        let _ = srv.call(KvRequest::Get { obj, ts: 1 });
        assert_eq!(srv.store().prepared_count(), 0, "reaper must have fired");
        assert_eq!(srv.reap_counts().1, 1);
        // The coordinator's late commit is refused.
        match srv.call(KvRequest::Commit {
            txn: 9,
            commit_ts: oracle.next_timestamp(),
        }) {
            KvResponse::Aborted => {}
            other => panic!("unexpected response {other:?}"),
        }
        match srv.call(KvRequest::Get { obj, ts: 1_000 }) {
            KvResponse::Value(None) => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
}
