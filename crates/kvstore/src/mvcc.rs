//! Multi-version storage for a single object.
//!
//! Yesquel keeps multiple versions of each data item because, as the paper
//! notes, multi-version concurrency control is implemented "at the layer
//! that stores the actual data", which makes version management cheap: the
//! version chain lives right next to the bytes.

use bytes::Bytes;
use yesquel_common::Timestamp;

/// One committed version of an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// Commit timestamp of the transaction that installed this version.
    pub ts: Timestamp,
    /// The value; `None` is a tombstone (the object was deleted).
    pub value: Option<Bytes>,
}

/// The committed versions of one object, ordered by ascending timestamp.
#[derive(Debug, Default, Clone)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// An empty chain (object never written).
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Number of committed versions currently retained.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if no version has ever been installed (or all were collected).
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Timestamp of the newest committed version, if any.
    pub fn latest_ts(&self) -> Option<Timestamp> {
        self.versions.last().map(|v| v.ts)
    }

    /// Returns the value visible to a snapshot taken at `ts`: the newest
    /// version with timestamp ≤ `ts`.  Returns `None` both when no such
    /// version exists and when the visible version is a tombstone — the two
    /// cases are indistinguishable to readers, as in the real system.
    pub fn read_at(&self, ts: Timestamp) -> Option<Bytes> {
        // Versions are sorted ascending; scan from the back since readers
        // overwhelmingly want a recent version.
        for v in self.versions.iter().rev() {
            if v.ts <= ts {
                return v.value.clone();
            }
        }
        None
    }

    /// Returns true if a committed version newer than `ts` exists — the
    /// first-committer-wins validation used at prepare time.
    pub fn has_newer_than(&self, ts: Timestamp) -> bool {
        self.latest_ts().map(|l| l > ts).unwrap_or(false)
    }

    /// Installs a version at `ts`.
    ///
    /// Timestamps normally arrive in increasing order (commit timestamps are
    /// issued by a monotonic oracle and installation is serialized by the
    /// per-object lock), but the bulk loader may install at timestamp 0, so
    /// out-of-order installation is handled by insertion into the sorted
    /// position.
    pub fn install(&mut self, ts: Timestamp, value: Option<Bytes>) {
        match self.versions.last() {
            Some(last) if last.ts < ts => self.versions.push(Version { ts, value }),
            _ => {
                let pos = self.versions.partition_point(|v| v.ts < ts);
                // Replace an existing version with the same timestamp (only
                // possible through the bulk loader).
                if pos < self.versions.len() && self.versions[pos].ts == ts {
                    self.versions[pos].value = value;
                } else {
                    self.versions.insert(pos, Version { ts, value });
                }
            }
        }
    }

    /// Drops versions that no active snapshot can read.
    ///
    /// A version is reclaimable if it is not the newest version visible at
    /// `min_active_ts` (every active or future snapshot reads at a timestamp
    /// ≥ `min_active_ts`, so only the newest version ≤ `min_active_ts` and
    /// anything newer can ever be read again).  Additionally the newest
    /// `keep_versions` versions are always retained, which gives operators a
    /// safety margin exactly like the paper's system retains a bounded
    /// version history.
    ///
    /// Returns the number of versions dropped.
    pub fn gc(&mut self, min_active_ts: Timestamp, keep_versions: usize) -> usize {
        if self.versions.len() <= keep_versions.max(1) {
            return 0;
        }
        // Index of the newest version with ts <= min_active_ts.
        let visible_idx = match self.versions.iter().rposition(|v| v.ts <= min_active_ts) {
            Some(i) => i,
            None => return 0, // every version is newer than the oldest snapshot
        };
        // Keep everything from visible_idx onward, and in any case the
        // newest keep_versions versions.
        let keep_from = visible_idx.min(self.versions.len().saturating_sub(keep_versions.max(1)));
        if keep_from == 0 {
            return 0;
        }
        self.versions.drain(..keep_from);
        keep_from
    }

    /// If the only remaining versions are tombstones older than every active
    /// snapshot, the whole object can be removed from the store.  Returns
    /// true in that case.
    pub fn is_fully_dead(&self, min_active_ts: Timestamp) -> bool {
        !self.versions.is_empty()
            && self.versions.iter().all(|v| v.value.is_none())
            && self
                .versions
                .last()
                .map(|v| v.ts <= min_active_ts)
                .unwrap_or(false)
    }

    /// Iterates over the retained versions (oldest first); used by tests and
    /// the stats reporter.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn read_at_picks_visible_version() {
        let mut c = VersionChain::new();
        c.install(10, b("a"));
        c.install(20, b("b"));
        c.install(30, None); // delete
        assert_eq!(c.read_at(5), None);
        assert_eq!(c.read_at(10), b("a"));
        assert_eq!(c.read_at(19), b("a"));
        assert_eq!(c.read_at(20), b("b"));
        assert_eq!(c.read_at(29), b("b"));
        assert_eq!(c.read_at(30), None);
        assert_eq!(c.read_at(1000), None);
        assert_eq!(c.latest_ts(), Some(30));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn first_committer_wins_check() {
        let mut c = VersionChain::new();
        assert!(!c.has_newer_than(0));
        c.install(10, b("a"));
        assert!(c.has_newer_than(5));
        assert!(!c.has_newer_than(10));
        assert!(!c.has_newer_than(15));
    }

    #[test]
    fn out_of_order_install_sorts() {
        let mut c = VersionChain::new();
        c.install(20, b("b"));
        c.install(10, b("a"));
        assert_eq!(c.read_at(15), b("a"));
        assert_eq!(c.read_at(25), b("b"));
        // Same-timestamp install replaces (bulk-load semantics).
        c.install(10, b("a2"));
        assert_eq!(c.read_at(15), b("a2"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn gc_respects_active_snapshots() {
        let mut c = VersionChain::new();
        for ts in [10, 20, 30, 40, 50] {
            c.install(ts, b("v"));
        }
        // Oldest active snapshot at 25: versions 10 is reclaimable (20 is the
        // newest visible at 25 and must stay), with keep_versions=1.
        let dropped = c.gc(25, 1);
        assert_eq!(dropped, 1);
        assert_eq!(c.read_at(25), b("v"));
        assert_eq!(c.len(), 4);

        // min_active far in the future: only keep_versions newest survive.
        let dropped = c.gc(1000, 2);
        assert_eq!(dropped, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.read_at(1000), b("v"));
    }

    #[test]
    fn gc_keeps_everything_when_snapshot_is_old() {
        let mut c = VersionChain::new();
        for ts in [10, 20, 30] {
            c.install(ts, b("v"));
        }
        assert_eq!(c.gc(5, 1), 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn fully_dead_detection() {
        let mut c = VersionChain::new();
        c.install(10, b("a"));
        c.install(20, None);
        assert!(!c.is_fully_dead(30));
        c.gc(1000, 1);
        assert!(c.is_fully_dead(30));
        assert!(!c.is_fully_dead(10));
    }

    #[test]
    fn empty_chain_reads_none() {
        let c = VersionChain::new();
        assert_eq!(c.read_at(100), None);
        assert!(c.is_empty());
        assert_eq!(c.latest_ts(), None);
    }
}
