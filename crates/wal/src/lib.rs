//! Per-server write-ahead log for the Yesquel storage servers.
//!
//! The paper's storage servers "log updates to stable storage", so a server
//! crash loses no committed transaction.  This crate supplies that log for
//! the reproduction: an append-only file of checksummed, length-prefixed
//! records (reusing `common::encoding` for the payloads), written
//! **before** the corresponding state change is acknowledged, and replayed
//! into a fresh [`ServerStore`](../yesquel_kv/store/struct.ServerStore.html)
//! after an amnesia crash.
//!
//! ## Record framing
//!
//! A segment file starts with a 16-byte header (`YWALSEG1` magic plus the
//! big-endian segment sequence number) followed by frames:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! Recovery scans frames until the first torn or corrupt one — a short
//! header, a length running past end-of-file, a checksum mismatch, or a
//! payload that does not decode — and **truncates** the file there.  A torn
//! tail is the expected shape of a crash mid-append and is silently
//! recovered to the clean prefix; it is never an error and never a panic.
//!
//! ## Group commit
//!
//! [`Wal::append`] returns only once the record is durable per the
//! configured [`WalFsyncPolicy`]:
//!
//! * `Always` — the appender syncs before returning (concurrent appenders
//!   still coalesce: a sync that covers your offset counts).
//! * `Group { window_us }` — the first appender that finds no sync in
//!   flight becomes the *leader*: it waits `window_us` for concurrent
//!   committers to append their frames, then issues **one** `fdatasync`
//!   covering the whole group.  Followers block until a sync covers their
//!   offset.  The `wal.fsyncs` / `wal.group_size` counters expose the
//!   achieved batching (mean group size = group_size / fsyncs).
//! * `Off` — no explicit sync; an acknowledged commit can be lost by
//!   [`Wal::power_loss`].  Measures the log's CPU cost without its
//!   durability cost.
//!
//! ## Checkpoints and truncation
//!
//! [`Wal::checkpoint`] writes a [`CheckpointSnapshot`] of the entire store
//! state as the first record of a **new** segment file, syncs it, and only
//! then deletes the older segments — so a crash at any point leaves either
//! the old segments (checkpoint not yet durable) or the new one.  Recovery
//! prefers the highest-numbered usable segment and falls back across torn
//! checkpoints.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bytes::Bytes;
use yesquel_common::encoding::{Reader, Writer};
use yesquel_common::obs::clock;
use yesquel_common::obs::trace::{span, SpanKind};
use yesquel_common::stats::{Counter, Histogram, StatsRegistry};
use yesquel_common::{Error, ObjectId, Result, ServerId, Timestamp, TxnId, WalFsyncPolicy};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"YWALSEG1";

/// Size of the segment header: magic plus the big-endian sequence number.
pub const SEGMENT_HEADER_LEN: u64 = 16;

/// Size of a frame header: payload length plus checksum.
pub const FRAME_HEADER_LEN: u64 = 8;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven; the offline build has no crc crate.
// ---------------------------------------------------------------------------

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3) of `data`, as used by the frame checksums.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One write of a transaction as logged: the object and its new value
/// (`None` deletes the object).  Mirrors the kv layer's `WriteOp`, re-stated
/// here so the log crate stays below the kv crate in the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalWrite {
    /// Object being written.
    pub obj: ObjectId,
    /// New value, or `None` for a delete tombstone.
    pub value: Option<Bytes>,
}

/// A prepared-but-undecided transaction as carried by a checkpoint: enough
/// to restore the prepare locks, the staged writes and the primary so the
/// presumed-abort reaper can still resolve the transaction after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedImage {
    /// Transaction id.
    pub txn: TxnId,
    /// Snapshot timestamp the prepare validated against.
    pub start_ts: Timestamp,
    /// The transaction's primary participant (2PC commit point).
    pub primary: ServerId,
    /// The staged writes.
    pub writes: Vec<WalWrite>,
}

/// A transaction fate as carried by a checkpoint, in the outcome table's
/// FIFO order: `Some(ts)` committed at `ts`, `None` aborted.
pub type OutcomeImage = (TxnId, Option<Timestamp>);

/// One object's committed version chain as carried by a checkpoint,
/// oldest version first; `None` values are tombstones.
pub type VersionImage = (ObjectId, Vec<(Timestamp, Option<Bytes>)>);

/// Full image of a server store at checkpoint time.  Everything recovery
/// needs: committed version chains, allocation counters, the outcome table
/// (for dedup and the presumed-abort protocol) and in-flight prepares.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointSnapshot {
    /// Committed versions per object, oldest first within each object.
    pub versions: Vec<VersionImage>,
    /// Non-transactional allocation counters.
    pub counters: Vec<(ObjectId, u64)>,
    /// Recorded transaction fates, oldest first.
    pub outcomes: Vec<OutcomeImage>,
    /// Transactions holding prepare locks at checkpoint time.
    pub prepared: Vec<PreparedImage>,
}

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Phase one of 2PC: logged *before* the prepare is acknowledged, so
    /// the prepared state (locks, staged writes, primary) survives a crash
    /// and the coordinator's lease semantics keep holding.
    Prepare {
        /// Transaction id.
        txn: TxnId,
        /// Snapshot timestamp the prepare validated against.
        start_ts: Timestamp,
        /// Primary participant (2PC commit point).
        primary: ServerId,
        /// The staged writes.
        writes: Vec<WalWrite>,
    },
    /// Phase two of 2PC: the commit decision.  Logged before the in-memory
    /// outcome becomes observable, so a secondary can never adopt a commit
    /// that the primary would forget in a crash.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Commit timestamp.
        commit_ts: Timestamp,
    },
    /// A one-phase commit: validation, timestamp assignment and
    /// installation in one step, so the record carries the writes itself.
    CommitOnePhase {
        /// Transaction id.
        txn: TxnId,
        /// Commit timestamp assigned by the server.
        commit_ts: Timestamp,
        /// The installed writes.
        writes: Vec<WalWrite>,
    },
    /// An abort decision (explicit abort or the reaper's presumed abort).
    /// Logged before the abort is observable so a duplicate commit arriving
    /// after recovery cannot resurrect a transaction whose coordinator was
    /// already told "aborted".
    Abort {
        /// Transaction id.
        txn: TxnId,
    },
    /// A non-transactional counter allocation.  Replay takes the maximum,
    /// so re-applying is idempotent; losing allocations would hand out
    /// already-used node ids after recovery.
    Alloc {
        /// Counter object.
        obj: ObjectId,
        /// Counter value *after* the allocation.
        value: u64,
    },
    /// A version installed by bulk loading (`load_unchecked`), outside
    /// concurrency control and outside any transaction.
    Load {
        /// Object loaded.
        obj: ObjectId,
        /// Timestamp of the installed version.
        ts: Timestamp,
        /// The loaded value.
        value: Bytes,
    },
    /// A full store snapshot; always the first record of a segment.
    Checkpoint(Box<CheckpointSnapshot>),
}

const TAG_PREPARE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_COMMIT_1PC: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_ALLOC: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_LOAD: u8 = 7;

fn put_writes(w: &mut Writer, writes: &[WalWrite]) {
    w.uvarint(writes.len() as u64);
    for wr in writes {
        w.u64(wr.obj.tree).u64(wr.obj.oid);
        match &wr.value {
            Some(v) => {
                w.u8(1).bytes(v);
            }
            None => {
                w.u8(0);
            }
        }
    }
}

fn get_writes(r: &mut Reader<'_>) -> Result<Vec<WalWrite>> {
    let n = r.uvarint()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let obj = ObjectId::new(r.u64()?, r.u64()?);
        let value = match r.u8()? {
            0 => None,
            1 => Some(Bytes::copy_from_slice(r.bytes()?)),
            other => {
                return Err(Error::Corruption(format!(
                    "invalid write-op value flag {other}"
                )))
            }
        };
        out.push(WalWrite { obj, value });
    }
    Ok(out)
}

impl WalRecord {
    /// Encodes the record payload (the bytes the frame checksum covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            WalRecord::Prepare {
                txn,
                start_ts,
                primary,
                writes,
            } => {
                w.u8(TAG_PREPARE).u64(*txn).u64(*start_ts);
                w.uvarint(*primary as u64);
                put_writes(&mut w, writes);
            }
            WalRecord::Commit { txn, commit_ts } => {
                w.u8(TAG_COMMIT).u64(*txn).u64(*commit_ts);
            }
            WalRecord::CommitOnePhase {
                txn,
                commit_ts,
                writes,
            } => {
                w.u8(TAG_COMMIT_1PC).u64(*txn).u64(*commit_ts);
                put_writes(&mut w, writes);
            }
            WalRecord::Abort { txn } => {
                w.u8(TAG_ABORT).u64(*txn);
            }
            WalRecord::Alloc { obj, value } => {
                w.u8(TAG_ALLOC).u64(obj.tree).u64(obj.oid).u64(*value);
            }
            WalRecord::Load { obj, ts, value } => {
                w.u8(TAG_LOAD)
                    .u64(obj.tree)
                    .u64(obj.oid)
                    .u64(*ts)
                    .bytes(value);
            }
            WalRecord::Checkpoint(snap) => {
                w.u8(TAG_CHECKPOINT);
                w.uvarint(snap.versions.len() as u64);
                for (obj, versions) in &snap.versions {
                    w.u64(obj.tree).u64(obj.oid);
                    w.uvarint(versions.len() as u64);
                    for (ts, value) in versions {
                        w.u64(*ts);
                        match value {
                            Some(v) => {
                                w.u8(1).bytes(v);
                            }
                            None => {
                                w.u8(0);
                            }
                        }
                    }
                }
                w.uvarint(snap.counters.len() as u64);
                for (obj, value) in &snap.counters {
                    w.u64(obj.tree).u64(obj.oid).u64(*value);
                }
                w.uvarint(snap.outcomes.len() as u64);
                for (txn, fate) in &snap.outcomes {
                    w.u64(*txn);
                    match fate {
                        Some(ts) => {
                            w.u8(1).u64(*ts);
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                }
                w.uvarint(snap.prepared.len() as u64);
                for p in &snap.prepared {
                    w.u64(p.txn).u64(p.start_ts);
                    w.uvarint(p.primary as u64);
                    put_writes(&mut w, &p.writes);
                }
            }
        }
        w.finish()
    }

    /// Decodes a record payload.  Any malformation — unknown tag, truncated
    /// field, trailing garbage — reports [`Error::Corruption`]; recovery
    /// turns that into clean-prefix truncation.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_PREPARE => WalRecord::Prepare {
                txn: r.u64()?,
                start_ts: r.u64()?,
                primary: r.uvarint()? as ServerId,
                writes: get_writes(&mut r)?,
            },
            TAG_COMMIT => WalRecord::Commit {
                txn: r.u64()?,
                commit_ts: r.u64()?,
            },
            TAG_COMMIT_1PC => WalRecord::CommitOnePhase {
                txn: r.u64()?,
                commit_ts: r.u64()?,
                writes: get_writes(&mut r)?,
            },
            TAG_ABORT => WalRecord::Abort { txn: r.u64()? },
            TAG_ALLOC => WalRecord::Alloc {
                obj: ObjectId::new(r.u64()?, r.u64()?),
                value: r.u64()?,
            },
            TAG_LOAD => WalRecord::Load {
                obj: ObjectId::new(r.u64()?, r.u64()?),
                ts: r.u64()?,
                value: Bytes::copy_from_slice(r.bytes()?),
            },
            TAG_CHECKPOINT => {
                let n_objects = r.uvarint()? as usize;
                let mut versions = Vec::with_capacity(n_objects.min(4096));
                for _ in 0..n_objects {
                    let obj = ObjectId::new(r.u64()?, r.u64()?);
                    let n_versions = r.uvarint()? as usize;
                    let mut chain = Vec::with_capacity(n_versions.min(1024));
                    for _ in 0..n_versions {
                        let ts = r.u64()?;
                        let value = match r.u8()? {
                            0 => None,
                            1 => Some(Bytes::copy_from_slice(r.bytes()?)),
                            other => {
                                return Err(Error::Corruption(format!(
                                    "invalid version value flag {other}"
                                )))
                            }
                        };
                        chain.push((ts, value));
                    }
                    versions.push((obj, chain));
                }
                let n_counters = r.uvarint()? as usize;
                let mut counters = Vec::with_capacity(n_counters.min(4096));
                for _ in 0..n_counters {
                    counters.push((ObjectId::new(r.u64()?, r.u64()?), r.u64()?));
                }
                let n_outcomes = r.uvarint()? as usize;
                let mut outcomes = Vec::with_capacity(n_outcomes.min(8192));
                for _ in 0..n_outcomes {
                    let txn = r.u64()?;
                    let fate = match r.u8()? {
                        0 => None,
                        1 => Some(r.u64()?),
                        other => {
                            return Err(Error::Corruption(format!("invalid outcome flag {other}")))
                        }
                    };
                    outcomes.push((txn, fate));
                }
                let n_prepared = r.uvarint()? as usize;
                let mut prepared = Vec::with_capacity(n_prepared.min(4096));
                for _ in 0..n_prepared {
                    prepared.push(PreparedImage {
                        txn: r.u64()?,
                        start_ts: r.u64()?,
                        primary: r.uvarint()? as ServerId,
                        writes: get_writes(&mut r)?,
                    });
                }
                WalRecord::Checkpoint(Box::new(CheckpointSnapshot {
                    versions,
                    counters,
                    outcomes,
                    prepared,
                }))
            }
            other => return Err(Error::Corruption(format!("unknown wal record tag {other}"))),
        };
        if !r.is_empty() {
            return Err(Error::Corruption(format!(
                "{} trailing bytes after wal record",
                r.remaining()
            )));
        }
        Ok(rec)
    }
}

/// Encodes a full frame (header + payload) for `rec`.
fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.encode();
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// State behind the file mutex: the active segment and its write cursor.
struct Inner {
    file: File,
    path: PathBuf,
    /// Active segment sequence number.
    seq: u64,
    /// Bytes written to the active segment (including the header).
    len: u64,
    /// Frames appended to the active segment (checkpoint included).
    frames: u64,
}

/// State behind the sync mutex: what is known durable, and whether a group
/// leader is currently collecting a batch.
struct SyncState {
    /// Bytes of the active segment known to be on stable storage.
    durable: u64,
    /// Frames of the active segment known to be on stable storage.
    durable_frames: u64,
    /// True while some appender is sleeping out the group window or inside
    /// `fdatasync`; followers wait instead of issuing their own sync.
    leader_active: bool,
}

/// A per-server write-ahead log over one directory of segment files.
pub struct Wal {
    dir: PathBuf,
    policy: WalFsyncPolicy,
    inner: Mutex<Inner>,
    sync: Mutex<SyncState>,
    sync_cv: Condvar,
    appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    group_size: Arc<Counter>,
    group_solo: Arc<Counter>,
    recovered_txns: Arc<Counter>,
    /// End-to-end append latency — the frame write plus this appender's
    /// share of the group fsync (recorded only while `Obs::timing_on`).
    append_us: Arc<Histogram>,
    /// Latency of each `fdatasync` as observed by the group leader
    /// (recorded only while `Obs::timing_on`).
    fsync_us: Arc<Histogram>,
    /// Frames made durable per fsync — the group-commit amortisation
    /// distribution (recorded only while `Obs::timing_on`).
    group_size_dist: Arc<Histogram>,
    /// Kept for the `Obs::timing_on` check on the append path.
    stats: StatsRegistry,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("segment-{seq}.wal"))
}

/// Result of scanning one segment file.
struct ScannedSegment {
    seq: u64,
    path: PathBuf,
    /// Byte length of the clean prefix (header + valid frames).
    clean_len: u64,
    /// Number of valid frames in the clean prefix.
    frames: u64,
    records: Vec<WalRecord>,
}

/// Scans a segment file: validates the header, decodes frames until the
/// first torn or corrupt one.  Returns `None` if the header itself is
/// unusable (or, for `seq > 0`, the mandatory leading checkpoint is not a
/// valid checkpoint record) — the segment carries no recoverable state.
fn scan_segment(path: &Path, seq: u64) -> Result<Option<ScannedSegment>> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::io(path.display(), e)),
    };
    if data.len() < SEGMENT_HEADER_LEN as usize
        || &data[..8] != SEGMENT_MAGIC
        || u64::from_be_bytes(data[8..16].try_into().unwrap()) != seq
    {
        return Ok(None);
    }
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN as usize;
    let mut frames = 0u64;
    loop {
        if data.len() - pos < FRAME_HEADER_LEN as usize {
            break; // torn frame header (or exactly end-of-log)
        }
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + FRAME_HEADER_LEN as usize;
        if data.len() - body_start < len {
            break; // torn payload
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            break; // corrupt payload (or garbage tail)
        }
        let Ok(rec) = WalRecord::decode(payload) else {
            break; // checksum collides with garbage, or a decoder bug: truncate
        };
        records.push(rec);
        frames += 1;
        pos = body_start + len;
    }
    if seq > 0 && !matches!(records.first(), Some(WalRecord::Checkpoint(_))) {
        // A post-checkpoint segment whose checkpoint did not survive carries
        // nothing usable; recovery falls back to the previous segments.
        return Ok(None);
    }
    Ok(Some(ScannedSegment {
        seq,
        path: path.to_path_buf(),
        clean_len: pos as u64,
        frames,
        records,
    }))
}

/// Lists the segment sequence numbers present in `dir`, descending.
fn list_segments(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| Error::io(dir.display(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(dir.display(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("segment-")
            .and_then(|s| s.strip_suffix(".wal"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir` and performs
    /// file-level recovery: the highest-numbered usable segment is selected,
    /// its torn tail truncated, and the append cursor positioned after the
    /// clean prefix.  Call [`Wal::recover`] to obtain the clean-prefix
    /// records for state replay.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: WalFsyncPolicy,
        registry: &StatsRegistry,
    ) -> Result<Wal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| Error::io(dir.display(), e))?;
        let wal = Wal {
            inner: Mutex::new(Inner {
                // Placeholder until reload picks the real segment; reload
                // runs before `open` returns, so this file is never used.
                file: File::create(segment_path(&dir, u64::MAX))
                    .map_err(|e| Error::io(dir.display(), e))?,
                path: segment_path(&dir, u64::MAX),
                seq: 0,
                len: 0,
                frames: 0,
            }),
            sync: Mutex::new(SyncState {
                durable: 0,
                durable_frames: 0,
                leader_active: false,
            }),
            sync_cv: Condvar::new(),
            appends: registry.counter("wal.appends"),
            fsyncs: registry.counter("wal.fsyncs"),
            group_size: registry.counter("wal.group_size"),
            group_solo: registry.counter("wal.group_solo"),
            recovered_txns: registry.counter("wal.recovered_txns"),
            append_us: registry.histogram("wal.append_us"),
            fsync_us: registry.histogram("wal.fsync_us"),
            group_size_dist: registry.histogram("wal.group_size_dist"),
            stats: registry.clone(),
            dir,
            policy,
        };
        let placeholder = segment_path(&wal.dir, u64::MAX);
        let reload = wal.reload();
        let _ = std::fs::remove_file(placeholder);
        reload?;
        Ok(wal)
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy this log was opened with.
    pub fn policy(&self) -> WalFsyncPolicy {
        self.policy
    }

    /// Path of the segment currently being appended to (tests use this to
    /// inflict targeted damage).
    pub fn active_segment(&self) -> PathBuf {
        self.inner.lock().unwrap().path.clone()
    }

    /// Bytes written to the active segment, header included.
    pub fn len(&self) -> u64 {
        self.inner.lock().unwrap().len
    }

    /// True if the active segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().frames == 0
    }

    /// Bytes of the active segment known durable (advanced by fsyncs).
    pub fn durable_len(&self) -> u64 {
        self.sync.lock().unwrap().durable
    }

    /// Selects and repairs the active segment, then returns its records for
    /// replay.  Called by `open`, and again by recovery after
    /// [`Wal::power_loss`] or external damage.
    pub fn recover(&self) -> Result<Vec<WalRecord>> {
        self.reload()
    }

    /// Bumps the `wal.recovered_txns` counter; called by the replay code
    /// once per transaction whose effects were restored from this log.
    pub fn note_recovered_txns(&self, n: u64) {
        self.recovered_txns.add(n);
    }

    fn reload(&self) -> Result<Vec<WalRecord>> {
        let mut inner = self.inner.lock().unwrap();
        let mut sync = self.sync.lock().unwrap();
        let seqs = list_segments(&self.dir)?;
        let mut chosen: Option<ScannedSegment> = None;
        let mut unusable: Vec<u64> = Vec::new();
        for seq in seqs.iter().copied().filter(|&s| s != u64::MAX) {
            match scan_segment(&segment_path(&self.dir, seq), seq)? {
                Some(s) => {
                    chosen = Some(s);
                    break;
                }
                None => unusable.push(seq),
            }
        }
        let scanned = match chosen {
            Some(s) => s,
            None if seqs.iter().any(|&s| s != u64::MAX) => {
                // Segment files exist but none carries a usable prefix: the
                // damage is not a recoverable torn tail, so refuse to serve
                // an empty store as if it were the truth.
                return Err(Error::WalCorrupt(format!(
                    "no usable segment among {:?} in {}",
                    seqs,
                    self.dir.display()
                )));
            }
            None => {
                // Fresh log: create segment 0.
                let path = segment_path(&self.dir, 0);
                let mut file = File::create(&path).map_err(|e| Error::io(path.display(), e))?;
                let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
                header.extend_from_slice(SEGMENT_MAGIC);
                header.extend_from_slice(&0u64.to_be_bytes());
                file.write_all(&header)
                    .and_then(|_| file.sync_all())
                    .map_err(|e| Error::io(path.display(), e))?;
                ScannedSegment {
                    seq: 0,
                    path,
                    clean_len: SEGMENT_HEADER_LEN,
                    frames: 0,
                    records: Vec::new(),
                }
            }
        };
        // Unusable newer segments are dead weight; remove them so they can
        // never shadow the chosen one again.
        for seq in unusable {
            let _ = std::fs::remove_file(segment_path(&self.dir, seq));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&scanned.path)
            .map_err(|e| Error::io(scanned.path.display(), e))?;
        // Truncate the torn tail so appends continue after the clean prefix.
        file.set_len(scanned.clean_len)
            .map_err(|e| Error::io(scanned.path.display(), e))?;
        let mut file = file;
        file.seek(SeekFrom::Start(scanned.clean_len))
            .map_err(|e| Error::io(scanned.path.display(), e))?;
        inner.file = file;
        inner.path = scanned.path;
        inner.seq = scanned.seq;
        inner.len = scanned.clean_len;
        inner.frames = scanned.frames;
        // The surviving prefix is on stable storage by definition.
        sync.durable = scanned.clean_len;
        sync.durable_frames = scanned.frames;
        sync.leader_active = false;
        Ok(scanned.records)
    }

    /// Appends `rec` and returns once it is durable per the fsync policy.
    /// Under `Group`, concurrent appenders coalesce into one fsync.
    pub fn append(&self, rec: &WalRecord) -> Result<()> {
        let _wal_span = span(SpanKind::Wal);
        let t0 = self.stats.obs().timing_on().then(clock::now);
        let frame = encode_frame(rec);
        let upto = {
            let mut g = self.inner.lock().unwrap();
            g.file
                .write_all(&frame)
                .map_err(|e| Error::io(g.path.display(), e))?;
            g.len += frame.len() as u64;
            g.frames += 1;
            g.len
        };
        self.appends.inc();
        let res = match self.policy {
            WalFsyncPolicy::Off => Ok(()),
            WalFsyncPolicy::Always => self.ensure_durable(upto, Duration::ZERO),
            WalFsyncPolicy::Group { window_us } => {
                self.ensure_durable(upto, Duration::from_micros(window_us))
            }
        };
        if let Some(t0) = t0 {
            if res.is_ok() {
                self.append_us.record(clock::elapsed_us(t0));
            }
        }
        res
    }

    /// Blocks until a sync covers byte offset `upto`, electing this thread
    /// group leader (wait `window`, sync once, wake the group) if no sync is
    /// in flight.
    fn ensure_durable(&self, upto: u64, window: Duration) -> Result<()> {
        let mut s = self.sync.lock().unwrap();
        loop {
            if s.durable >= upto {
                return Ok(());
            }
            if !s.leader_active {
                s.leader_active = true;
                break;
            }
            s = self.sync_cv.wait(s).unwrap();
        }
        drop(s);
        if !window.is_zero() {
            // Let concurrent committers append their frames into this group.
            std::thread::sleep(window);
        }
        let timing = self.stats.obs().timing_on();
        let res = {
            // Joiner re-check: the segment length is re-read *after* the
            // window, so every frame appended while the leader slept — by
            // followers now parked on the condvar — rides this one sync.
            let g = self.inner.lock().unwrap();
            let end = (g.len, g.frames);
            let t0 = timing.then(clock::now);
            let synced = g
                .file
                .sync_data()
                .map(|_| end)
                .map_err(|e| Error::io(g.path.display(), e));
            if let (Some(t0), Ok(_)) = (t0, &synced) {
                self.fsync_us.record(clock::elapsed_us(t0));
            }
            synced
        };
        let mut s = self.sync.lock().unwrap();
        s.leader_active = false;
        let out = match res {
            Ok((end, frames)) => {
                if end > s.durable {
                    s.durable = end;
                    self.fsyncs.inc();
                    let group = frames.saturating_sub(s.durable_frames);
                    self.group_size.add(group);
                    if timing {
                        self.group_size_dist.record(group);
                    }
                    if !window.is_zero() && group == 1 {
                        // The leader re-read the segment length after its
                        // window (the joiner check above) and still found
                        // only its own frame: the window bought nothing this
                        // round.  BENCH_*_LOAD reports use this to show how
                        // often group commit actually amortises.
                        self.group_solo.inc();
                    }
                    s.durable_frames = frames;
                }
                Ok(())
            }
            Err(e) => Err(e),
        };
        // Wake followers in any case: on error one of them re-elects itself
        // and retries the sync (bounded: each append attempts at most once
        // as a follower-turned-leader before surfacing the error).
        self.sync_cv.notify_all();
        out
    }

    /// Forces everything appended so far to stable storage, regardless of
    /// policy.
    pub fn sync(&self) -> Result<()> {
        let upto = self.inner.lock().unwrap().len;
        self.ensure_durable(upto, Duration::ZERO)
    }

    /// Writes `snapshot` as the sole record of a fresh segment, syncs it,
    /// and deletes every older segment — the log-truncation half of
    /// checkpointing.  The caller must guarantee no append is in flight
    /// (the kv store holds its checkpoint gate across this call).
    pub fn checkpoint(&self, snapshot: CheckpointSnapshot) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let mut sync = self.sync.lock().unwrap();
        let new_seq = inner.seq + 1;
        let path = segment_path(&self.dir, new_seq);
        let mut file = File::create(&path).map_err(|e| Error::io(path.display(), e))?;
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(SEGMENT_MAGIC);
        buf.extend_from_slice(&new_seq.to_be_bytes());
        buf.extend_from_slice(&encode_frame(&WalRecord::Checkpoint(Box::new(snapshot))));
        file.write_all(&buf)
            .and_then(|_| file.sync_all())
            .map_err(|e| Error::io(path.display(), e))?;
        self.fsyncs.inc();
        // The new segment is durable: older segments are now garbage.  A
        // crash before these deletes leaves extra files that recovery skips
        // (it prefers the highest usable sequence number).
        let old_seq = inner.seq;
        let old_path = inner.path.clone();
        inner.file = file;
        inner.path = path;
        inner.seq = new_seq;
        inner.len = buf.len() as u64;
        inner.frames = 1;
        sync.durable = buf.len() as u64;
        sync.durable_frames = 1;
        let _ = std::fs::remove_file(old_path);
        for seq in list_segments(&self.dir)?
            .into_iter()
            .filter(|&s| s < old_seq)
        {
            let _ = std::fs::remove_file(segment_path(&self.dir, seq));
        }
        Ok(())
    }

    /// Simulates a power loss: everything not yet fsynced is discarded by
    /// truncating the active segment to its durable length.  The fault
    /// layer's amnesia restart calls this before replaying, so recovery
    /// only ever sees what a real machine would find on disk.
    pub fn power_loss(&self) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let sync = self.sync.lock().unwrap();
        inner
            .file
            .set_len(sync.durable)
            .map_err(|e| Error::io(inner.path.display(), e))?;
        let durable = sync.durable;
        inner
            .file
            .seek(SeekFrom::Start(durable))
            .map_err(|e| Error::io(inner.path.display(), e))?;
        inner.len = sync.durable;
        inner.frames = sync.durable_frames;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yesquel_common::tempdir::TempDir;

    fn registry() -> StatsRegistry {
        StatsRegistry::new()
    }

    fn obj(o: u64) -> ObjectId {
        ObjectId::new(1, o)
    }

    fn wr(o: u64, v: &str) -> WalWrite {
        WalWrite {
            obj: obj(o),
            value: Some(Bytes::copy_from_slice(v.as_bytes())),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Prepare {
                txn: 7,
                start_ts: 40,
                primary: 2,
                writes: vec![
                    wr(1, "a"),
                    WalWrite {
                        obj: obj(2),
                        value: None,
                    },
                ],
            },
            WalRecord::Commit {
                txn: 7,
                commit_ts: 41,
            },
            WalRecord::CommitOnePhase {
                txn: 8,
                commit_ts: 50,
                writes: vec![wr(3, "b")],
            },
            WalRecord::Abort { txn: 9 },
            WalRecord::Alloc {
                obj: obj(0),
                value: 128,
            },
            WalRecord::Load {
                obj: obj(4),
                ts: 3,
                value: Bytes::from_static(b"seed"),
            },
        ]
    }

    #[test]
    fn crc32_known_values() {
        // Standard IEEE CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
        let snap = CheckpointSnapshot {
            versions: vec![
                (obj(1), vec![(5, Some(Bytes::from_static(b"x"))), (9, None)]),
                (obj(2), vec![]),
            ],
            counters: vec![(obj(0), 42)],
            outcomes: vec![(3, Some(10)), (4, None)],
            prepared: vec![PreparedImage {
                txn: 11,
                start_ts: 12,
                primary: 1,
                writes: vec![wr(5, "staged")],
            }],
        };
        let rec = WalRecord::Checkpoint(Box::new(snap));
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        let mut enc = sample_records()[0].encode();
        enc.push(0); // trailing byte
        assert!(WalRecord::decode(&enc).is_err());
        enc.truncate(enc.len().saturating_sub(3));
        assert!(WalRecord::decode(&enc).is_err());
    }

    #[test]
    fn append_recover_roundtrip() {
        let t = TempDir::new("wal-roundtrip").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        assert_eq!(
            reg.counter("wal.appends").get(),
            sample_records().len() as u64
        );
        assert!(reg.counter("wal.fsyncs").get() >= 1);
        drop(wal);
        // A fresh handle over the same directory sees every record.
        let wal2 = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        assert_eq!(wal2.recover().unwrap(), sample_records());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let t = TempDir::new("wal-torn").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let path = wal.active_segment();
        let full = wal.len();
        drop(wal);
        // Cut the last record in half: a torn append.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        let recs = wal.recover().unwrap();
        let n = sample_records().len();
        assert_eq!(recs, sample_records()[..n - 1].to_vec());
        assert!(wal.len() < full);
        // The log keeps working after truncation.
        wal.append(&WalRecord::Abort { txn: 77 }).unwrap();
        let recs = wal.recover().unwrap();
        assert_eq!(recs.len(), n);
        assert_eq!(recs[n - 1], WalRecord::Abort { txn: 77 });
    }

    #[test]
    fn checkpoint_rotates_and_truncates() {
        let t = TempDir::new("wal-ckpt").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let old_path = wal.active_segment();
        let snap = CheckpointSnapshot {
            counters: vec![(obj(0), 9)],
            ..Default::default()
        };
        wal.checkpoint(snap.clone()).unwrap();
        assert!(!old_path.exists(), "old segment must be deleted");
        wal.append(&WalRecord::Abort { txn: 1 }).unwrap();
        let recs = wal.recover().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], WalRecord::Checkpoint(Box::new(snap)));
        assert_eq!(recs[1], WalRecord::Abort { txn: 1 });
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_segment() {
        let t = TempDir::new("wal-ckpt-torn").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let seg0 = wal.active_segment();
        let seg0_bytes = std::fs::read(&seg0).unwrap();
        wal.checkpoint(CheckpointSnapshot::default()).unwrap();
        let seg1 = wal.active_segment();
        drop(wal);
        // Simulate a crash mid-checkpoint: segment 1's record is torn and
        // segment 0 was not yet deleted.
        let seg1_bytes = std::fs::read(&seg1).unwrap();
        std::fs::write(&seg1, &seg1_bytes[..seg1_bytes.len() - 2]).unwrap();
        std::fs::write(&seg0, &seg0_bytes).unwrap();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        assert_eq!(wal.recover().unwrap(), sample_records());
        assert!(!seg1.exists(), "the torn checkpoint segment is removed");
    }

    #[test]
    fn unusable_only_segment_is_a_typed_error() {
        let t = TempDir::new("wal-corrupt").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        let path = wal.active_segment();
        drop(wal);
        // Destroy the header: nothing in the file can be trusted.
        let mut data = std::fs::read(&path).unwrap();
        data[0] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        match Wal::open(t.path(), WalFsyncPolicy::Always, &reg) {
            Err(Error::WalCorrupt(_)) => {}
            Err(other) => panic!("expected WalCorrupt, got {other:?}"),
            Ok(_) => panic!("expected WalCorrupt, got a usable log"),
        }
    }

    #[test]
    fn power_loss_drops_unsynced_tail() {
        let t = TempDir::new("wal-powerloss").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Off, &reg).unwrap();
        wal.append(&sample_records()[0]).unwrap();
        wal.sync().unwrap();
        wal.append(&sample_records()[1]).unwrap(); // never synced
        assert!(wal.durable_len() < wal.len());
        wal.power_loss().unwrap();
        let recs = wal.recover().unwrap();
        assert_eq!(recs, sample_records()[..1].to_vec());
        // With Always, the ack implies durability: nothing is lost.
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        wal.recover().unwrap();
        wal.append(&sample_records()[1]).unwrap();
        wal.power_loss().unwrap();
        assert_eq!(wal.recover().unwrap(), sample_records()[..2].to_vec());
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        let t = TempDir::new("wal-group").unwrap();
        let reg = registry();
        let wal = Arc::new(
            Wal::open(t.path(), WalFsyncPolicy::Group { window_us: 2_000 }, &reg).unwrap(),
        );
        let threads = 8;
        let per_thread = 20u64;
        let mut handles = Vec::new();
        for th in 0..threads {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    wal.append(&WalRecord::Commit {
                        txn: th * 1000 + i,
                        commit_ts: i,
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let appends = reg.counter("wal.appends").get();
        let fsyncs = reg.counter("wal.fsyncs").get();
        let grouped = reg.counter("wal.group_size").get();
        assert_eq!(appends, threads * per_thread);
        assert_eq!(grouped, appends, "every append is covered by some sync");
        assert!(fsyncs >= 1);
        assert!(
            fsyncs < appends,
            "group commit must batch: {fsyncs} fsyncs for {appends} appends"
        );
        // Everything acknowledged is durable.
        assert_eq!(wal.durable_len(), wal.len());
        assert_eq!(wal.recover().unwrap().len(), appends as usize);
    }

    #[test]
    fn mid_log_corruption_recovers_prefix_only() {
        let t = TempDir::new("wal-flip").unwrap();
        let reg = registry();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        let path = wal.active_segment();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file: every record from the
        // damaged frame onward is dropped.
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let wal = Wal::open(t.path(), WalFsyncPolicy::Always, &reg).unwrap();
        let recs = wal.recover().unwrap();
        assert!(recs.len() < sample_records().len());
        for (got, want) in recs.iter().zip(sample_records().iter()) {
            assert_eq!(got, want, "recovered prefix must match what was logged");
        }
    }
}
