//! Placeholder; implemented next.
