//! Single-node baseline stores.
//!
//! The paper compares Yesquel against single-node storage (MySQL) and NoSQL
//! key-value stores (Redis-like).  This crate provides the in-process
//! equivalents the benchmark harness measures against: a plain mutex-guarded
//! B-tree map standing in for "one server, no distribution, no versioning".
//! The gap between [`LocalKv`] and the full Yesquel stack bounds the cost of
//! distribution + transactions on this hardware.

use std::collections::BTreeMap;

use bytes::Bytes;
use parking_lot::Mutex;

/// A single-node, non-transactional ordered key-value store: the NoSQL
/// baseline of the evaluation, reduced to its in-process essence.
#[derive(Default)]
pub struct LocalKv {
    map: Mutex<BTreeMap<Vec<u8>, Bytes>>,
}

impl LocalKv {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.map.lock().get(key).cloned()
    }

    /// Stores `value` under `key`; returns true if a value was replaced.
    pub fn put(&self, key: &[u8], value: impl Into<Bytes>) -> bool {
        self.map.lock().insert(key.to_vec(), value.into()).is_some()
    }

    /// Removes `key`; returns true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.map.lock().remove(key).is_some()
    }

    /// Returns up to `limit` key/value pairs with keys in `[start, end)`.
    pub fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Vec<u8>, Bytes)> {
        self.map
            .lock()
            .range(start.to_vec()..end.to_vec())
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_scan() {
        let kv = LocalKv::new();
        assert!(!kv.put(b"b", Bytes::from_static(b"2")));
        assert!(!kv.put(b"a", Bytes::from_static(b"1")));
        assert!(kv.put(b"a", Bytes::from_static(b"1bis")));
        assert_eq!(kv.get(b"a").as_deref(), Some(&b"1bis"[..]));
        assert_eq!(kv.get(b"z"), None);
        let all = kv.scan(b"a", b"z", 10);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, b"a".to_vec());
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        assert_eq!(kv.len(), 1);
    }
}
