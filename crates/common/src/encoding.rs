//! Binary encodings used throughout the system.
//!
//! Two families of encodings live here:
//!
//! * **Order-preserving key encodings** — the distributed balanced tree
//!   orders its cells by raw byte comparison, so the SQL layer encodes typed
//!   keys (integers, strings, composite index keys) into byte strings whose
//!   lexicographic order equals the typed order.  This is the same trick
//!   commercial storage engines use for composite index keys.
//! * **Length-prefixed record framing** — varints and length-prefixed byte
//!   slices used by the hand-rolled serializers for tree nodes, SQL rows and
//!   RPC messages.  We deliberately do not use a serialization framework for
//!   these so that the on-wire/on-node layout is explicit and stable.

use crate::error::{Error, Result};

// ---------------------------------------------------------------------------
// Varints (LEB128, unsigned)
// ---------------------------------------------------------------------------

/// Appends `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            break;
        }
    }
}

/// Reads an unsigned LEB128 varint from the front of `buf`, returning the
/// value and the number of bytes consumed.
pub fn get_uvarint(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(Error::Corruption("varint overflow".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(Error::Corruption("truncated varint".into()))
}

/// Appends a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Reads a length-prefixed byte slice from the front of `buf`, returning the
/// slice and the number of bytes consumed.
pub fn get_bytes(buf: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_uvarint(buf)?;
    let len = len as usize;
    if buf.len() < n + len {
        return Err(Error::Corruption(format!(
            "truncated byte slice: need {} have {}",
            n + len,
            buf.len()
        )));
    }
    Ok((&buf[n..n + len], n + len))
}

/// A cursor over a byte slice for sequential decoding.
///
/// All decoders in the workspace use this rather than manual index juggling;
/// every read is bounds-checked and reports [`Error::Corruption`] on
/// truncation.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Offset of the cursor from the start of the buffer.  Zero-copy
    /// decoders use this to locate the slice a read returned within the
    /// backing buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        if self.remaining() < 1 {
            return Err(Error::Corruption("truncated u8".into()));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().unwrap()))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().unwrap()))
    }

    /// Reads a big-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_be_bytes(b.try_into().unwrap()))
    }

    /// Reads a big-endian f64.
    pub fn f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_be_bytes(b.try_into().unwrap()))
    }

    /// Reads an unsigned varint.
    pub fn uvarint(&mut self) -> Result<u64> {
        let (v, n) = get_uvarint(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let (b, n) = get_bytes(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(b)
    }

    /// Reads exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corruption(format!(
                "truncated read: need {n} have {}",
                self.remaining()
            )));
        }
        let b = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(b)
    }
}

/// A growable encoding buffer mirroring [`Reader`].
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian f64.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an unsigned varint.
    pub fn uvarint(&mut self, v: u64) -> &mut Self {
        put_uvarint(&mut self.buf, v);
        self
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        put_bytes(&mut self.buf, b);
        self
    }

    /// Appends raw bytes with no framing.
    pub fn raw(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Overwrites the 4 bytes at `pos` with `v` (big-endian).  Used to
    /// backpatch offset directories whose entries are only known once the
    /// payloads behind them have been written.
    ///
    /// # Panics
    /// Panics if `pos + 4` exceeds the written length (an encoder bug, not a
    /// data error).
    pub fn u32_at(&mut self, pos: usize, v: u32) -> &mut Self {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_be_bytes());
        self
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Order-preserving key encodings
// ---------------------------------------------------------------------------

/// Encodes an `i64` into 8 bytes whose lexicographic order equals numeric
/// order (flip the sign bit of the big-endian two's-complement encoding).
pub fn order_encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Inverse of [`order_encode_i64`].
pub fn order_decode_i64(b: &[u8]) -> Result<i64> {
    if b.len() < 8 {
        return Err(Error::Corruption("truncated ordered i64".into()));
    }
    let raw = u64::from_be_bytes(b[..8].try_into().unwrap());
    Ok((raw ^ (1u64 << 63)) as i64)
}

/// Encodes an `f64` into 8 bytes whose lexicographic order equals numeric
/// order (standard IEEE-754 total-order trick; NaNs sort above +inf).
pub fn order_encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits & (1u64 << 63) != 0 {
        // Negative numbers: flip all bits so that more-negative sorts lower.
        !bits
    } else {
        // Positive numbers: set the sign bit so they sort above negatives.
        bits | (1u64 << 63)
    };
    flipped.to_be_bytes()
}

/// Inverse of [`order_encode_f64`].
pub fn order_decode_f64(b: &[u8]) -> Result<f64> {
    if b.len() < 8 {
        return Err(Error::Corruption("truncated ordered f64".into()));
    }
    let raw = u64::from_be_bytes(b[..8].try_into().unwrap());
    let bits = if raw & (1u64 << 63) != 0 {
        raw & !(1u64 << 63)
    } else {
        !raw
    };
    Ok(f64::from_bits(bits))
}

/// Escape used by [`order_encode_bytes`]: `0x00` inside the payload becomes
/// `0x00 0xff`, and the terminator is `0x00 0x00`.  This keeps byte-string
/// keys order-preserving even when they are a prefix of a composite key.
pub fn order_encode_bytes(out: &mut Vec<u8>, b: &[u8]) {
    for &c in b {
        if c == 0 {
            out.push(0);
            out.push(0xff);
        } else {
            out.push(c);
        }
    }
    out.push(0);
    out.push(0);
}

/// Inverse of [`order_encode_bytes`]; returns the decoded bytes and the
/// number of encoded bytes consumed (including the terminator).
pub fn order_decode_bytes(buf: &[u8]) -> Result<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < buf.len() {
        let c = buf[i];
        if c != 0 {
            out.push(c);
            i += 1;
            continue;
        }
        // c == 0: either escape or terminator.
        if i + 1 >= buf.len() {
            return Err(Error::Corruption("truncated ordered bytes".into()));
        }
        match buf[i + 1] {
            0x00 => return Ok((out, i + 2)),
            0xff => {
                out.push(0);
                i += 2;
            }
            other => {
                return Err(Error::Corruption(format!(
                    "invalid ordered-bytes escape 0x00 0x{other:02x}"
                )))
            }
        }
    }
    Err(Error::Corruption("unterminated ordered bytes".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (got, n) = get_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        assert!(get_uvarint(&buf[..buf.len() - 1]).is_err());
        assert!(get_uvarint(&[]).is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        put_bytes(&mut buf, &[0u8; 300]);
        let (a, n1) = get_bytes(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, n2) = get_bytes(&buf[n1..]).unwrap();
        assert_eq!(b, b"");
        let (c, _) = get_bytes(&buf[n1 + n2..]).unwrap();
        assert_eq!(c.len(), 300);
    }

    #[test]
    fn reader_writer_roundtrip() {
        let mut w = Writer::new();
        w.u8(7)
            .u32(0xdead_beef)
            .u64(42)
            .i64(-5)
            .f64(1.5)
            .uvarint(300)
            .bytes(b"abc");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -5);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.uvarint().unwrap(), 300);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert!(r.is_empty());
        assert!(r.u8().is_err());
    }

    #[test]
    fn u32_backpatch() {
        let mut w = Writer::new();
        w.u8(0xaa).u32(0).bytes(b"payload");
        w.u32_at(1, 0xdead_beef);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xaa);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.bytes().unwrap(), b"payload");
    }

    #[test]
    fn ordered_i64_preserves_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, 1_000_000, i64::MAX];
        for w in vals.windows(2) {
            let a = order_encode_i64(w[0]);
            let b = order_encode_i64(w[1]);
            assert!(a < b, "{} !< {}", w[0], w[1]);
            assert_eq!(order_decode_i64(&a).unwrap(), w[0]);
        }
    }

    #[test]
    fn ordered_f64_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-10,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let a = order_encode_f64(w[0]);
            let b = order_encode_f64(w[1]);
            assert!(a <= b, "{} !<= {}", w[0], w[1]);
        }
        assert_eq!(order_decode_f64(&order_encode_f64(2.5)).unwrap(), 2.5);
        assert_eq!(order_decode_f64(&order_encode_f64(-7.25)).unwrap(), -7.25);
    }

    #[test]
    fn ordered_bytes_roundtrip_and_order() {
        let cases: Vec<&[u8]> = vec![b"", b"a", b"ab", b"b", b"\x00", b"\x00\x01", b"zzz"];
        for c in &cases {
            let mut e = Vec::new();
            order_encode_bytes(&mut e, c);
            let (d, n) = order_decode_bytes(&e).unwrap();
            assert_eq!(&d[..], *c);
            assert_eq!(n, e.len());
        }
        // Prefix property: "a" < "ab" must hold after encoding even with the
        // terminator appended.
        let mut ea = Vec::new();
        order_encode_bytes(&mut ea, b"a");
        let mut eab = Vec::new();
        order_encode_bytes(&mut eab, b"ab");
        assert!(ea < eab);
    }

    #[test]
    fn ordered_bytes_bad_escape() {
        assert!(order_decode_bytes(&[0x00, 0x07]).is_err());
        assert!(order_decode_bytes(b"a").is_err());
    }
}
