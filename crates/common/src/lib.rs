//! Shared substrate for the Yesquel reproduction.
//!
//! This crate contains the types that every layer of the system speaks:
//! identifiers for servers, trees and objects; error types; the
//! order-preserving key encodings used by the distributed balanced tree and
//! the SQL record format; configuration knobs for every layer; statistics
//! primitives (counters and latency histograms) used by the benchmark
//! harness; and the random-distribution generators (Zipfian, uniform) used by
//! the workloads in the evaluation.
//!
//! Nothing in this crate knows about networking, storage or SQL — it is the
//! leaf of the dependency graph.

/// Re-export of the observability crate, so every layer above `common`
/// reaches spans, trace counters and the clock through one path
/// (`yesquel_common::obs::…`) without its own dependency edge.
pub use yesquel_obs as obs;

pub mod config;
pub mod encoding;
pub mod error;
pub mod ids;
pub mod rand_util;
pub mod stats;
pub mod tempdir;
pub mod timeutil;

pub use config::{
    CommitFanout, DbtConfig, KvConfig, NetConfig, ObsConfig, RpcBatchConfig, WalFsyncPolicy,
    YesquelConfig,
};
pub use error::{Error, Result};
pub use ids::{ObjectId, Oid, ServerId, Timestamp, TreeId, TxnId};
