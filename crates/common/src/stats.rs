//! Statistics primitives: counters, latency histograms and the registry.
//!
//! Every layer exposes its counters through a [`StatsRegistry`] so that the
//! benchmark harness can report, per experiment, the number of RPCs, cache
//! hits, splits, aborts, etc.  Histograms are the bucket-exact log-bucketed
//! kind from `yesquel-obs`: lock-free `record`, exact-from-buckets
//! p50/p99/p999 (values < 64 exact, ≤ 1.6% relative error above), `merge`
//! and `reset`.  The registry also carries the process observability knobs
//! — an [`Obs`] control block with the timing gate, the trace sampler and
//! the slow-op ring — so every component that already holds the registry
//! can reach them without new plumbing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// The registry mutex is only taken when a stat is first registered or when a
// report is produced, never on hot paths, so the std mutex is sufficient and
// keeps this leaf crate's dependency graph minimal.
use std::sync::Mutex;

pub use yesquel_obs::hist::{Histogram, HistogramSummary};
pub use yesquel_obs::Obs;

/// A monotonically increasing counter, safe to update from many threads.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A named collection of counters and histograms shared by reference across
/// threads, plus the process observability knobs.
///
/// Components create their counters once and bump them on hot paths without
/// any locking; the registry lock is only taken when a new name is first
/// registered or when a report is produced.
#[derive(Default, Clone)]
pub struct StatsRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    obs: Obs,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The observability control block (timing gate, trace sampler,
    /// slow-op ring) shared by everything holding this registry.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.counters.lock().expect("stats registry poisoned");
        g.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Returns the histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self
            .inner
            .histograms
            .lock()
            .expect("stats registry poisoned");
        g.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        let g = self.inner.counters.lock().expect("stats registry poisoned");
        g.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all histogram summaries, sorted by name.
    pub fn histogram_snapshot(&self) -> BTreeMap<String, HistogramSummary> {
        let g = self
            .inner
            .histograms
            .lock()
            .expect("stats registry poisoned");
        g.iter().map(|(k, v)| (k.clone(), v.summary())).collect()
    }

    /// Point-in-time snapshot of everything: counters, histogram summaries.
    /// Pair with [`StatsSnapshot::counter_delta`] for windowed readings
    /// without resetting, or use [`StatsRegistry::reset`] between windows.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self.counter_snapshot(),
            histograms: self.histogram_snapshot(),
        }
    }

    /// Resets every counter to zero (histograms and the slow-op ring are
    /// left untouched).  Prefer [`StatsRegistry::reset`] for a full wipe;
    /// this narrower variant exists for callers that deliberately keep
    /// latency distributions across the reset.
    pub fn reset_counters(&self) {
        let g = self.inner.counters.lock().expect("stats registry poisoned");
        for c in g.values() {
            c.reset();
        }
    }

    /// Resets **everything**: counters to zero, histograms to empty, and
    /// the slow-op ring to empty.  This is what a measurement harness calls
    /// between cells so each window's distributions start clean.
    pub fn reset(&self) {
        self.reset_counters();
        let g = self
            .inner
            .histograms
            .lock()
            .expect("stats registry poisoned");
        for h in g.values() {
            h.reset();
        }
        drop(g);
        self.inner.obs.slow_ring().clear();
    }

    /// Renders all counters as a compact single-line report, useful in test
    /// failure messages.
    pub fn render_counters(&self) -> String {
        self.counter_snapshot()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Renders the full registry — counters plus histograms with their
    /// non-empty buckets — as one JSON object.  This is the snapshot-export
    /// format the load harness embeds per cell and CI smoke-dumps:
    ///
    /// ```json
    /// {
    ///   "counters": {"dbt.lookups": 12, ...},
    ///   "histograms": {
    ///     "sql.stmt_us.select": {
    ///       "count": 12, "mean": 18.3, "p50": 17, "p99": 40,
    ///       "p999": 40, "max": 41,
    ///       "buckets": [[16, 16, 7], [17, 17, 3], [40, 41, 2]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// Each bucket triple is `[low, high, count]` over the inclusive value
    /// range, so a consumer can recompute any quantile.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"counters\": {{");
        let counters = self.counter_snapshot();
        let n = counters.len();
        for (i, (k, v)) in counters.into_iter().enumerate() {
            let comma = if i + 1 == n { "" } else { "," };
            let _ = writeln!(out, "    \"{k}\": {v}{comma}");
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"histograms\": {{");
        let hists: Vec<(String, Arc<Histogram>)> = {
            let g = self
                .inner
                .histograms
                .lock()
                .expect("stats registry poisoned");
            g.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        let n = hists.len();
        for (i, (k, h)) in hists.into_iter().enumerate() {
            let s = h.summary();
            let comma = if i + 1 == n { "" } else { "," };
            let _ = write!(
                out,
                "    \"{k}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"p999\": {}, \"max\": {}, \"buckets\": [",
                s.count, s.mean, s.p50, s.p90, s.p99, s.p999, s.max
            );
            let buckets = h.nonzero_buckets();
            for (j, (lo, hi, c)) in buckets.iter().enumerate() {
                let comma = if j + 1 == buckets.len() { "" } else { ", " };
                let _ = write!(out, "[{lo}, {hi}, {c}]{comma}");
            }
            let _ = writeln!(out, "]}}{comma}");
        }
        let _ = writeln!(out, "  }}");
        let _ = write!(out, "}}");
        out
    }
}

/// A point-in-time snapshot of a registry, for windowed (delta) readings.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Counter values at snapshot time, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries at snapshot time, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl StatsSnapshot {
    /// Per-counter increase since `earlier` (counters that moved backwards
    /// — reset in between — are reported from zero).  Histogram summaries
    /// are not delta-able; use [`StatsRegistry::reset`] between windows
    /// when windowed distributions are needed.
    pub fn counter_delta(&self, earlier: &StatsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_concurrent() {
        let reg = StatsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let c = reg.counter("ops");
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("ops").get(), 8000);
    }

    #[test]
    fn histogram_quantiles_are_exact_from_buckets() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        // Bucket-exact: ≤ 1.6% relative error at 32 sub-buckets per octave.
        assert!(
            (s.p50 as f64 - 5_000.0).abs() / 5_000.0 <= 0.016,
            "p50={}",
            s.p50
        );
        assert!(
            (s.p99 as f64 - 9_900.0).abs() / 9_900.0 <= 0.016,
            "p99={}",
            s.p99
        );
        assert_eq!(s.max, 10_000);
        assert!((s.mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.01), 0);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn registry_snapshot_sorted() {
        let reg = StatsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.histogram("lat").record(10);
        let snap = reg.counter_snapshot();
        let keys: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.histogram_snapshot()["lat"].count, 1);
        assert!(reg.render_counters().contains("a=1"));
        reg.reset_counters();
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn reset_counters_leaves_histograms_but_reset_wipes_them() {
        let reg = StatsRegistry::new();
        reg.counter("ops").add(7);
        reg.histogram("lat").record(123);
        reg.reset_counters();
        assert_eq!(reg.counter("ops").get(), 0);
        assert_eq!(
            reg.histogram("lat").count(),
            1,
            "reset_counters keeps distributions"
        );
        reg.counter("ops").add(3);
        reg.reset();
        assert_eq!(reg.counter("ops").get(), 0);
        assert_eq!(reg.histogram("lat").count(), 0, "reset() wipes histograms");
    }

    #[test]
    fn windowed_counter_delta() {
        let reg = StatsRegistry::new();
        reg.counter("ops").add(10);
        let t0 = reg.snapshot();
        reg.counter("ops").add(5);
        reg.counter("new").add(2);
        let t1 = reg.snapshot();
        let delta = t1.counter_delta(&t0);
        assert_eq!(delta["ops"], 5);
        assert_eq!(delta["new"], 2);
    }

    #[test]
    fn render_json_contains_buckets() {
        let reg = StatsRegistry::new();
        reg.counter("ops").add(2);
        for v in [10u64, 10, 500] {
            reg.histogram("lat").record(v);
        }
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ops\": 2"));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("[10, 10, 2]"), "exact small bucket: {json}");
        assert!(!json.contains("},\n  }"), "no trailing comma: {json}");
    }

    #[test]
    fn same_name_shares_counter() {
        let reg = StatsRegistry::new();
        let c1 = reg.counter("x");
        let c2 = reg.counter("x");
        c1.inc();
        assert_eq!(c2.get(), 1);
    }

    #[test]
    fn registry_carries_obs_knobs() {
        let reg = StatsRegistry::new();
        assert!(!reg.obs().timing_on());
        reg.obs().set_timing(true);
        assert!(reg.clone().obs().timing_on(), "clones share the knobs");
    }
}
