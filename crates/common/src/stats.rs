//! Statistics primitives: counters, gauges and latency histograms.
//!
//! Every layer exposes its counters through a [`StatsRegistry`] so that the
//! benchmark harness can report, per experiment, the number of RPCs, cache
//! hits, splits, aborts, etc.  The histogram is a fixed-bucket log-scale
//! histogram good enough for the latency tables in the evaluation (it
//! reports p50/p90/p99/max within ~2% relative error).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// The registry mutex is only taken when a stat is first registered or when a
// report is produced, never on hot paths, so the std mutex is sufficient and
// keeps this leaf crate's dependency graph minimal.
use std::sync::Mutex;

/// A monotonically increasing counter, safe to update from many threads.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Number of buckets in [`Histogram`]: values are bucketed by
/// `floor(log2(v))` with 4 sub-buckets per power of two.
const HIST_BUCKETS: usize = 64 * 4;

/// A lock-free fixed-bucket histogram for latency-like values
/// (non-negative integers, typically microseconds or RPC counts).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(HIST_BUCKETS);
        for _ in 0..HIST_BUCKETS {
            buckets.push(AtomicU64::new(0));
        }
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < 4 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros() as usize; // >= 2
        let sub = ((v >> (exp - 2)) & 0b11) as usize; // top 2 bits below the leading one
        let idx = exp * 4 + sub;
        idx.min(HIST_BUCKETS - 1)
    }

    /// Representative (upper-bound) value of bucket `idx`.
    fn bucket_value(idx: usize) -> u64 {
        if idx < 4 {
            return idx as u64;
        }
        let exp = idx / 4;
        let sub = (idx % 4) as u64;
        (1u64 << exp) + (sub + 1) * (1u64 << (exp - 2)) - 1
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * total as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of the usual reporting quantiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(f, "Histogram({s:?})")
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Median (approximate).
    pub p50: u64,
    /// 90th percentile (approximate).
    pub p90: u64,
    /// 99th percentile (approximate).
    pub p99: u64,
    /// Maximum (exact).
    pub max: u64,
}

/// A named collection of counters and histograms shared by reference across
/// threads.
///
/// Components create their counters once and bump them on hot paths without
/// any locking; the registry lock is only taken when a new name is first
/// registered or when a report is produced.
#[derive(Default, Clone)]
pub struct StatsRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.counters.lock().expect("stats registry poisoned");
        g.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Returns the histogram named `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self
            .inner
            .histograms
            .lock()
            .expect("stats registry poisoned");
        g.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        let g = self.inner.counters.lock().expect("stats registry poisoned");
        g.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all histogram summaries, sorted by name.
    pub fn histogram_snapshot(&self) -> BTreeMap<String, HistogramSummary> {
        let g = self
            .inner
            .histograms
            .lock()
            .expect("stats registry poisoned");
        g.iter().map(|(k, v)| (k.clone(), v.summary())).collect()
    }

    /// Resets every counter to zero (histograms are left untouched; create a
    /// fresh registry to reset them).
    pub fn reset_counters(&self) {
        let g = self.inner.counters.lock().expect("stats registry poisoned");
        for c in g.values() {
            c.reset();
        }
    }

    /// Renders all counters as a compact single-line report, useful in test
    /// failure messages.
    pub fn render_counters(&self) -> String {
        self.counter_snapshot()
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_concurrent() {
        let reg = StatsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let c = reg.counter("ops");
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("ops").get(), 8000);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_close() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // Log-bucket error is bounded by ~25% of the value; in practice much
        // less.  Check p50 is in the right ballpark.
        assert!(s.p50 >= 4_000 && s.p50 <= 6_500, "p50={}", s.p50);
        assert_eq!(s.max, 10_000);
        assert!((s.mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.01), 0);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn registry_snapshot_sorted() {
        let reg = StatsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.histogram("lat").record(10);
        let snap = reg.counter_snapshot();
        let keys: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.histogram_snapshot()["lat"].count, 1);
        assert!(reg.render_counters().contains("a=1"));
        reg.reset_counters();
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn same_name_shares_counter() {
        let reg = StatsRegistry::new();
        let c1 = reg.counter("x");
        let c2 = reg.counter("x");
        c1.inc();
        assert_eq!(c2.get(), 1);
    }
}
