//! Random-distribution generators used by the workload generators.
//!
//! The evaluation's workloads draw keys from either a uniform distribution
//! or a Zipfian distribution (to model skewed popularity, as in the
//! Wikipedia workload and the hot-spot experiments).  The Zipfian generator
//! follows the standard rejection-free algorithm from Gray et al. ("Quickly
//! generating billion-record synthetic databases"), the same one YCSB uses,
//! plus a scrambled variant that spreads the popular items across the key
//! space so that popularity skew is not correlated with key order.

use crate::ids::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from an experiment seed and a stream id, so
/// that concurrent worker threads get independent but reproducible streams.
pub fn seeded_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream.wrapping_add(1))))
}

/// Zipfian generator over `0..n` with skew parameter `theta`.
///
/// `theta = 0.99` reproduces the YCSB default ("zipfian constant").  Item 0
/// is the most popular; use [`ScrambledZipfian`] if popular items should be
/// spread over the key space.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n` (n must be at least 1) with skew
    /// `theta` in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// YCSB's default skew (theta = 0.99).
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For the sizes used in the benchmarks (<= a few million) the direct
        // sum is fast enough and exact.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next item (0 is the most popular).
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// The `zeta(2, theta)` constant, exposed for tests.
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// Zipfian generator whose popular items are scattered uniformly over the
/// item space by hashing, as in YCSB's "scrambled zipfian".
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled Zipfian over `0..n` with YCSB's default skew.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Draws the next item in `0..n`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let raw = self.inner.next(rng);
        splitmix64(raw) % self.inner.n()
    }
}

/// Key-choice distributions available to the workloads.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given theta; popular keys scattered by hashing.
    Zipfian(f64),
    /// All requests target the first `hot_fraction` of the key space (used
    /// by the hot-spot experiment F8).
    HotRange {
        /// Fraction of the key space (0,1] that receives all requests.
        hot_fraction: f64,
    },
    /// Keys drawn in strictly increasing order (used to model append-heavy
    /// insert workloads).
    Sequential,
}

/// Stateful sampler for a [`KeyDistribution`] over `0..n`.
pub struct KeyChooser {
    n: u64,
    dist: KeyDistribution,
    zipf: Option<ScrambledZipfian>,
    seq: u64,
}

impl KeyChooser {
    /// Creates a chooser over `0..n`.
    pub fn new(n: u64, dist: KeyDistribution) -> Self {
        let zipf = match &dist {
            KeyDistribution::Zipfian(theta) => Some(ScrambledZipfian::new(n, *theta)),
            _ => None,
        };
        KeyChooser {
            n,
            dist,
            zipf,
            seq: 0,
        }
    }

    /// Draws the next key in `0..n`.
    pub fn next<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match &self.dist {
            KeyDistribution::Uniform => rng.gen_range(0..self.n),
            KeyDistribution::Zipfian(_) => self.zipf.as_ref().expect("zipf").next(rng),
            KeyDistribution::HotRange { hot_fraction } => {
                let span = ((self.n as f64) * hot_fraction).ceil().max(1.0) as u64;
                rng.gen_range(0..span.min(self.n))
            }
            KeyDistribution::Sequential => {
                let k = self.seq % self.n;
                self.seq += 1;
                k
            }
        }
    }

    /// Number of items in the key space.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_reproducible_and_stream_independent() {
        let mut a = seeded_rng(7, 0);
        let mut b = seeded_rng(7, 0);
        let mut c = seeded_rng(7, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        let xc: u64 = c.gen();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn zipfian_in_range_and_skewed() {
        let z = Zipfian::ycsb(1000);
        let mut rng = seeded_rng(1, 0);
        let mut zero_count = 0u64;
        for _ in 0..20_000 {
            let v = z.next(&mut rng);
            assert!(v < 1000);
            if v == 0 {
                zero_count += 1;
            }
        }
        // Item 0 should receive far more than the uniform share (20 hits).
        assert!(zero_count > 500, "zipfian not skewed: {zero_count}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_items() {
        let z = ScrambledZipfian::new(1000, 0.99);
        let mut rng = seeded_rng(2, 0);
        let mut first_decile = 0u64;
        let total = 20_000;
        for _ in 0..total {
            if z.next(&mut rng) < 100 {
                first_decile += 1;
            }
        }
        // After scrambling, the first 10% of the key space should no longer
        // absorb the majority of the traffic.
        assert!(
            (first_decile as f64) < total as f64 * 0.5,
            "scramble failed: {first_decile}/{total}"
        );
    }

    #[test]
    fn uniform_covers_space() {
        let mut kc = KeyChooser::new(10, KeyDistribution::Uniform);
        let mut rng = seeded_rng(3, 0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[kc.next(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hot_range_restricts_keys() {
        let mut kc = KeyChooser::new(1000, KeyDistribution::HotRange { hot_fraction: 0.01 });
        let mut rng = seeded_rng(4, 0);
        for _ in 0..1000 {
            assert!(kc.next(&mut rng) < 10);
        }
    }

    #[test]
    fn sequential_wraps() {
        let mut kc = KeyChooser::new(3, KeyDistribution::Sequential);
        let mut rng = seeded_rng(5, 0);
        let seq: Vec<u64> = (0..7).map(|_| kc.next(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic]
    fn zipfian_requires_items() {
        let _ = Zipfian::new(0, 0.9);
    }
}
